//! Property tests of the hostile-telemetry path: ingestion normalization
//! is idempotent, lossless chaos (duplicates + bounded reorder) never
//! changes the online alarm sequence, crash/restore from a binary
//! checkpoint is bit-identical to an uninterrupted run, and the sharded
//! serving engine (`mfp_mlops::serve`) reproduces the sequential
//! predictor — alarms and scores — at any shard count, including across
//! its own sharded checkpoint format.

use mfp_dram::address::{CellAddr, DimmId};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::event::{CeEvent, MemEvent};
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_sim::chaos::{inject_chaos, ChaosConfig};
use proptest::prelude::*;

const NDIMMS: u32 = 3;

fn lake_with_dimms() -> DataLake {
    let lake = DataLake::new();
    for k in 0..NDIMMS {
        lake.register_dimm(DimmId::new(k, 0), Platform::IntelPurley, DimmSpec::default());
    }
    lake
}

/// Registers + promotes the deterministic risky-CE production model, as
/// the online unit tests do.
fn registry_with_model() -> ModelRegistry {
    let registry = ModelRegistry::new();
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);
    registry
}

/// A CE on a valid address; `flip` carries the Purley risky signature.
fn ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
    let bits: Vec<(u8, u8)> = if flip {
        vec![(1, 20), (5, 21)]
    } else {
        vec![(1, 20)]
    };
    MemEvent::Ce(CeEvent {
        time: SimTime::from_secs(t),
        dimm,
        addr: CellAddr::new(0, (t % 16) as u8, (t % 1000) as u32, (t % 512) as u16),
        transfer: ErrorTransfer::from_bits(bits),
    })
}

/// Strictly time-increasing multi-DIMM CE streams (distinct timestamps,
/// so re-sequenced delivery order is unique).
fn stream_strategy() -> impl Strategy<Value = Vec<MemEvent>> {
    proptest::collection::vec((0..NDIMMS, proptest::bool::ANY, 60u64..7_200), 10..60).prop_map(
        |raw| {
            let mut t = 1_000u64;
            raw.into_iter()
                .map(|(d, flip, gap)| {
                    t += gap;
                    ce(t, DimmId::new(d, 0), flip)
                })
                .collect()
        },
    )
}

/// Delivery-ordered stream -> hardened ingestion -> sharded serving;
/// the sharded twin of [`run_hardened`], returning the merged alarm and
/// score logs plus the scored count.
fn run_sharded(
    lake: &DataLake,
    registry: &ModelRegistry,
    delivery: &[MemEvent],
    end: SimTime,
    shards: usize,
) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
    let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
    let mut engine = ShardedOnline::new(
        lake,
        &stores,
        registry,
        Platform::IntelPurley,
        OnlineConfig::default(),
    );
    engine.set_score_trace(true);
    let mut ingestor = Ingestor::new(
        lake,
        IngestConfig {
            lateness: SimDuration::hours(1),
            ..IngestConfig::default()
        },
    );
    for e in delivery {
        for released in ingestor.push(e) {
            engine.observe(&released);
        }
    }
    for released in ingestor.flush() {
        engine.observe(&released);
    }
    engine.finish(end);
    (engine.alarms(), engine.scores(), engine.scored())
}

/// Delivery-ordered stream -> hardened ingestion -> online prediction;
/// returns the alarm sequence, the score trace and the scored count.
fn run_hardened(
    lake: &DataLake,
    registry: &ModelRegistry,
    delivery: &[MemEvent],
    end: SimTime,
) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut predictor = OnlinePredictor::new(
        lake,
        &store,
        registry,
        Platform::IntelPurley,
        OnlineConfig::default(),
    );
    predictor.set_score_trace(true);
    let mut ingestor = Ingestor::new(
        lake,
        IngestConfig {
            lateness: SimDuration::hours(1),
            ..IngestConfig::default()
        },
    );
    for e in delivery {
        for released in ingestor.push(e) {
            predictor.observe(&released);
        }
    }
    for released in ingestor.flush() {
        predictor.observe(&released);
    }
    predictor.finish(end);
    (
        predictor.alarms().to_vec(),
        predictor.score_trace().to_vec(),
        predictor.scored(),
    )
}

fn assert_alarms_bit_identical(
    a: &[Alarm],
    b: &[Alarm],
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "alarm counts differ");
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.dimm, y.dimm);
        prop_assert_eq!(x.time, y.time);
        prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    Ok(())
}

fn assert_scores_bit_identical(
    a: &[ScoreRecord],
    b: &[ScoreRecord],
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "score counts differ");
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.dimm, y.dimm);
        prop_assert_eq!(x.time, y.time);
        prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    Ok(())
}

proptest! {
    /// `normalize` is idempotent: a second pass over an already
    /// normalized stream changes nothing and rejects nothing.
    #[test]
    fn normalize_is_idempotent(
        events in stream_strategy(),
        seed in 0u64..1_000,
        rate in 0.0f64..=1.0,
    ) {
        let lake = lake_with_dimms();
        let (hostile, _) = inject_chaos(&events, &ChaosConfig::hostile_at(seed, rate));
        let cfg = IngestConfig {
            lateness: SimDuration::hours(2),
            ..IngestConfig::default()
        };
        let (once, _) = normalize(&lake, cfg, &hostile);
        let (twice, stats) = normalize(&lake, cfg, &once);
        prop_assert_eq!(&once, &twice, "normalization must be a fixpoint");
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.duplicates, 0);
        prop_assert_eq!(stats.quarantined, 0);
        // And the output is time-ordered.
        prop_assert!(once.windows(2).all(|w| w[0].time() <= w[1].time()));
    }

    /// Lossless chaos — duplicates plus reorder bounded by the ingestor's
    /// lateness — leaves the online alarm sequence bit-identical.
    #[test]
    fn lossless_chaos_preserves_alarms(events in stream_strategy(), seed in 0u64..1_000) {
        let lake = lake_with_dimms();
        let registry = registry_with_model();
        let end = SimTime::from_secs(events.last().map_or(0, |e| e.time().as_secs()))
            + SimDuration::days(2);

        let (clean_alarms, clean_scores, clean_scored) =
            run_hardened(&lake, &registry, &events, end);
        let (chaotic, stats) = inject_chaos(&events, &ChaosConfig::lossless(seed));
        prop_assert_eq!(stats.dropped, 0);
        let (chaos_alarms, chaos_scores, chaos_scored) =
            run_hardened(&lake, &registry, &chaotic, end);

        assert_alarms_bit_identical(&clean_alarms, &chaos_alarms)?;
        assert_scores_bit_identical(&clean_scores, &chaos_scores)?;
        prop_assert_eq!(clean_scored, chaos_scored);
    }

    /// Sharding is invisible: the same hardened delivery through the
    /// DIMM-hash partitioned engine yields the sequential predictor's
    /// alarm *and score* logs bit for bit, at any shard count — even
    /// under lossless chaotic delivery.
    #[test]
    fn sharded_serving_matches_sequential(
        events in stream_strategy(),
        seed in 0u64..1_000,
        shards in proptest::sample::select(vec![1usize, 2, 4]),
    ) {
        let lake = lake_with_dimms();
        let registry = registry_with_model();
        let end = SimTime::from_secs(events.last().map_or(0, |e| e.time().as_secs()))
            + SimDuration::days(2);
        let (delivery, stats) = inject_chaos(&events, &ChaosConfig::lossless(seed));
        prop_assert_eq!(stats.dropped, 0);

        let (seq_alarms, seq_scores, seq_scored) =
            run_hardened(&lake, &registry, &delivery, end);
        let (sh_alarms, sh_scores, sh_scored) =
            run_sharded(&lake, &registry, &delivery, end, shards);

        assert_alarms_bit_identical(&seq_alarms, &sh_alarms)?;
        assert_scores_bit_identical(&seq_scores, &sh_scores)?;
        prop_assert_eq!(seq_scored, sh_scored);
    }

    /// Crash the sharded engine at any prefix, round-trip the sharded
    /// checkpoint through its wire format, replay the suffix: alarms and
    /// scored counts match the uninterrupted sequential run bit for bit.
    /// (Time-ordered delivery: the serving contract — per-shard
    /// watermarks only match the global one when no event is stale.)
    #[test]
    fn sharded_crash_restore_is_bit_identical(
        events in stream_strategy(),
        crash_frac in 0.0f64..=1.0,
        shards in proptest::sample::select(vec![1usize, 2, 4]),
    ) {
        let lake = lake_with_dimms();
        let registry = registry_with_model();
        let cfg = OnlineConfig::default();
        let end = SimTime::from_secs(events.last().map_or(0, |e| e.time().as_secs()))
            + SimDuration::days(2);

        // Reference: one uninterrupted sequential predictor.
        let ref_store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut reference =
            OnlinePredictor::new(&lake, &ref_store, &registry, Platform::IntelPurley, cfg);
        for e in &events {
            reference.observe(e);
        }
        reference.finish(end);

        // Crashed sharded run: stop mid-stream, capture every shard,
        // serialize, restore into fresh stores, replay the suffix.
        let crash_at = ((events.len() as f64) * crash_frac) as usize;
        let stores_a = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let mut first =
            ShardedOnline::new(&lake, &stores_a, &registry, Platform::IntelPurley, cfg);
        for e in &events[..crash_at] {
            first.observe(e);
        }
        let wire = ServeCheckpoint::capture(&first, &stores_a).encode();
        drop(first);

        let decoded = ServeCheckpoint::decode(&wire).expect("sharded checkpoint round-trip");
        let stores_b = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let mut resumed = decoded.restore(&lake, &stores_b, &registry);
        for e in &events[crash_at..] {
            resumed.observe(e);
        }
        resumed.finish(end);

        assert_alarms_bit_identical(reference.alarms(), &resumed.alarms())?;
        prop_assert_eq!(reference.scored(), resumed.scored());
        prop_assert_eq!(reference.stale_rejected(), resumed.stale_rejected());
    }

    /// Crash anywhere, restore from the binary checkpoint, replay the
    /// suffix: alarms and scored counts match the uninterrupted run bit
    /// for bit.
    #[test]
    fn crash_restore_is_bit_identical(
        events in stream_strategy(),
        crash_frac in 0.0f64..=1.0,
        seed in 0u64..1_000,
    ) {
        let lake = lake_with_dimms();
        let registry = registry_with_model();
        let cfg = OnlineConfig {
            degraded_grace: SimDuration::hours(30),
            ..OnlineConfig::default()
        };
        // Hostile but lossless delivery so the crash point lands inside a
        // realistic (reordered, duplicated) sequence.
        let (delivery, _) = inject_chaos(&events, &ChaosConfig::lossless(seed));
        let end = SimTime::from_secs(events.last().map_or(0, |e| e.time().as_secs()))
            + SimDuration::days(2);

        // Reference: one uninterrupted run (no ingestor here — the
        // checkpoint contract is about the predictor + feature store).
        let ref_store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut reference =
            OnlinePredictor::new(&lake, &ref_store, &registry, Platform::IntelPurley, cfg);
        for e in &delivery {
            reference.observe(e);
        }
        reference.finish(end);

        // Crashed run: stop mid-stream, checkpoint, serialize, restore.
        let crash_at = ((delivery.len() as f64) * crash_frac) as usize;
        let store_a = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut first =
            OnlinePredictor::new(&lake, &store_a, &registry, Platform::IntelPurley, cfg);
        for e in &delivery[..crash_at] {
            first.observe(e);
        }
        let wire = OnlineCheckpoint::capture(&first, &store_a).encode();
        drop(first);

        let decoded = OnlineCheckpoint::decode(&wire).expect("checkpoint must round-trip");
        let store_b = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut resumed = decoded.restore(&lake, &store_b, &registry);
        for e in &delivery[crash_at..] {
            resumed.observe(e);
        }
        resumed.finish(end);

        assert_alarms_bit_identical(reference.alarms(), resumed.alarms())?;
        prop_assert_eq!(reference.scored(), resumed.scored());
        prop_assert_eq!(reference.stale_rejected(), resumed.stale_rejected());
        prop_assert_eq!(reference.watermark(), resumed.watermark());
    }
}
