//! Property tests of the hostile-telemetry path: ingestion normalization
//! is idempotent, lossless chaos (duplicates + bounded reorder) never
//! changes the online alarm sequence, and crash/restore from a binary
//! checkpoint is bit-identical to an uninterrupted run.

use mfp_dram::address::{CellAddr, DimmId};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::event::{CeEvent, MemEvent};
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_sim::chaos::{inject_chaos, ChaosConfig};
use proptest::prelude::*;

const NDIMMS: u32 = 3;

fn lake_with_dimms() -> DataLake {
    let lake = DataLake::new();
    for k in 0..NDIMMS {
        lake.register_dimm(DimmId::new(k, 0), Platform::IntelPurley, DimmSpec::default());
    }
    lake
}

/// Registers + promotes the deterministic risky-CE production model, as
/// the online unit tests do.
fn registry_with_model() -> ModelRegistry {
    let registry = ModelRegistry::new();
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);
    registry
}

/// A CE on a valid address; `flip` carries the Purley risky signature.
fn ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
    let bits: Vec<(u8, u8)> = if flip {
        vec![(1, 20), (5, 21)]
    } else {
        vec![(1, 20)]
    };
    MemEvent::Ce(CeEvent {
        time: SimTime::from_secs(t),
        dimm,
        addr: CellAddr::new(0, (t % 16) as u8, (t % 1000) as u32, (t % 512) as u16),
        transfer: ErrorTransfer::from_bits(bits),
    })
}

/// Strictly time-increasing multi-DIMM CE streams (distinct timestamps,
/// so re-sequenced delivery order is unique).
fn stream_strategy() -> impl Strategy<Value = Vec<MemEvent>> {
    proptest::collection::vec((0..NDIMMS, proptest::bool::ANY, 60u64..7_200), 10..60).prop_map(
        |raw| {
            let mut t = 1_000u64;
            raw.into_iter()
                .map(|(d, flip, gap)| {
                    t += gap;
                    ce(t, DimmId::new(d, 0), flip)
                })
                .collect()
        },
    )
}

/// Delivery-ordered stream -> hardened ingestion -> online prediction;
/// returns the alarm sequence and the scored count.
fn run_hardened(
    lake: &DataLake,
    registry: &ModelRegistry,
    delivery: &[MemEvent],
    end: SimTime,
) -> (Vec<Alarm>, u64) {
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut predictor = OnlinePredictor::new(
        lake,
        &store,
        registry,
        Platform::IntelPurley,
        OnlineConfig::default(),
    );
    let mut ingestor = Ingestor::new(
        lake,
        IngestConfig {
            lateness: SimDuration::hours(1),
            ..IngestConfig::default()
        },
    );
    for e in delivery {
        for released in ingestor.push(e) {
            predictor.observe(&released);
        }
    }
    for released in ingestor.flush() {
        predictor.observe(&released);
    }
    predictor.finish(end);
    (predictor.alarms().to_vec(), predictor.scored())
}

fn assert_alarms_bit_identical(
    a: &[Alarm],
    b: &[Alarm],
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "alarm counts differ");
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.dimm, y.dimm);
        prop_assert_eq!(x.time, y.time);
        prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    Ok(())
}

proptest! {
    /// `normalize` is idempotent: a second pass over an already
    /// normalized stream changes nothing and rejects nothing.
    #[test]
    fn normalize_is_idempotent(
        events in stream_strategy(),
        seed in 0u64..1_000,
        rate in 0.0f64..=1.0,
    ) {
        let lake = lake_with_dimms();
        let (hostile, _) = inject_chaos(&events, &ChaosConfig::hostile_at(seed, rate));
        let cfg = IngestConfig {
            lateness: SimDuration::hours(2),
            ..IngestConfig::default()
        };
        let (once, _) = normalize(&lake, cfg, &hostile);
        let (twice, stats) = normalize(&lake, cfg, &once);
        prop_assert_eq!(&once, &twice, "normalization must be a fixpoint");
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.duplicates, 0);
        prop_assert_eq!(stats.quarantined, 0);
        // And the output is time-ordered.
        prop_assert!(once.windows(2).all(|w| w[0].time() <= w[1].time()));
    }

    /// Lossless chaos — duplicates plus reorder bounded by the ingestor's
    /// lateness — leaves the online alarm sequence bit-identical.
    #[test]
    fn lossless_chaos_preserves_alarms(events in stream_strategy(), seed in 0u64..1_000) {
        let lake = lake_with_dimms();
        let registry = registry_with_model();
        let end = SimTime::from_secs(events.last().map_or(0, |e| e.time().as_secs()))
            + SimDuration::days(2);

        let (clean_alarms, clean_scored) = run_hardened(&lake, &registry, &events, end);
        let (chaotic, stats) = inject_chaos(&events, &ChaosConfig::lossless(seed));
        prop_assert_eq!(stats.dropped, 0);
        let (chaos_alarms, chaos_scored) = run_hardened(&lake, &registry, &chaotic, end);

        assert_alarms_bit_identical(&clean_alarms, &chaos_alarms)?;
        prop_assert_eq!(clean_scored, chaos_scored);
    }

    /// Crash anywhere, restore from the binary checkpoint, replay the
    /// suffix: alarms and scored counts match the uninterrupted run bit
    /// for bit.
    #[test]
    fn crash_restore_is_bit_identical(
        events in stream_strategy(),
        crash_frac in 0.0f64..=1.0,
        seed in 0u64..1_000,
    ) {
        let lake = lake_with_dimms();
        let registry = registry_with_model();
        let cfg = OnlineConfig {
            degraded_grace: SimDuration::hours(30),
            ..OnlineConfig::default()
        };
        // Hostile but lossless delivery so the crash point lands inside a
        // realistic (reordered, duplicated) sequence.
        let (delivery, _) = inject_chaos(&events, &ChaosConfig::lossless(seed));
        let end = SimTime::from_secs(events.last().map_or(0, |e| e.time().as_secs()))
            + SimDuration::days(2);

        // Reference: one uninterrupted run (no ingestor here — the
        // checkpoint contract is about the predictor + feature store).
        let ref_store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut reference =
            OnlinePredictor::new(&lake, &ref_store, &registry, Platform::IntelPurley, cfg);
        for e in &delivery {
            reference.observe(e);
        }
        reference.finish(end);

        // Crashed run: stop mid-stream, checkpoint, serialize, restore.
        let crash_at = ((delivery.len() as f64) * crash_frac) as usize;
        let store_a = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut first =
            OnlinePredictor::new(&lake, &store_a, &registry, Platform::IntelPurley, cfg);
        for e in &delivery[..crash_at] {
            first.observe(e);
        }
        let wire = OnlineCheckpoint::capture(&first, &store_a).encode();
        drop(first);

        let decoded = OnlineCheckpoint::decode(&wire).expect("checkpoint must round-trip");
        let store_b = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut resumed = decoded.restore(&lake, &store_b, &registry);
        for e in &delivery[crash_at..] {
            resumed.observe(e);
        }
        resumed.finish(end);

        assert_alarms_bit_identical(reference.alarms(), resumed.alarms())?;
        prop_assert_eq!(reference.scored(), resumed.scored());
        prop_assert_eq!(reference.stale_rejected(), resumed.stale_rejected());
        prop_assert_eq!(reference.watermark(), resumed.watermark());
    }
}
