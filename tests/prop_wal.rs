//! Property tests of the durability layer (`mfp_mlops::wal`): for
//! randomized event streams, shard counts, batch sizes and compaction
//! budgets, a crash at an arbitrary WAL byte offset recovers to a state
//! that — after resuming the remainder of the stream — is bit-identical
//! to an uncrashed sequential run. Also checks the `MFW1` record format
//! round-trips and that a truncated image never yields phantom records.

use mfp_dram::address::{CellAddr, DimmId};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::event::{CeEvent, MemEvent};
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::SimTime;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_mlops::wal::{encode_record, scan, WalPayload, WalRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test invocation (parallel-safe).
fn test_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "mfp_prop_wal_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// SplitMix64: the repo's dependency-free PRNG for derived quantities.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
    let bits: Vec<(u8, u8)> = if flip {
        vec![(1, 20), (5, 21)]
    } else {
        vec![(1, 20)]
    };
    MemEvent::Ce(CeEvent {
        time: SimTime::from_secs(t),
        dimm,
        addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
        transfer: ErrorTransfer::from_bits(bits),
    })
}

/// Registers a small fleet plus a deployed pattern model; returns the
/// catalog so streams can address it.
fn setup(lake: &DataLake, registry: &ModelRegistry, n_dimms: usize) -> Vec<DimmId> {
    let dimms: Vec<DimmId> = (0..n_dimms as u32)
        .map(|k| DimmId::new(k, (k % 2) as u8))
        .collect();
    for &id in &dimms {
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
    }
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);
    dimms
}

/// A seed-derived canonical ingest-output stream: time-ordered released
/// events over the fleet with pseudo-random collection gaps sprinkled in.
fn stream(dimms: &[DimmId], seed: u64, events: usize) -> Vec<IngestOutput> {
    let mut rng = seed;
    let mut out = Vec::with_capacity(events + events / 8);
    for k in 0..events as u64 {
        let d = dimms[(splitmix(&mut rng) % dimms.len() as u64) as usize];
        let risky = splitmix(&mut rng) % 2 == 0;
        out.push(IngestOutput::Released(risky_ce(1_000 + k * 1_800, d, risky)));
        if splitmix(&mut rng) % 11 == 0 {
            let g = dimms[(splitmix(&mut rng) % dimms.len() as u64) as usize];
            out.push(IngestOutput::Gap(GapRecord {
                dimm: g,
                from: SimTime::from_secs(1_000 + k * 1_800),
                to: SimTime::from_secs(2_000 + k * 1_800),
            }));
        }
    }
    out
}

/// The uncrashed sequential oracle over the same stream.
fn oracle(
    lake: &DataLake,
    registry: &ModelRegistry,
    outs: &[IngestOutput],
    end: SimTime,
) -> (Vec<Alarm>, u64) {
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut p = OnlinePredictor::new(
        lake,
        &store,
        registry,
        Platform::IntelPurley,
        OnlineConfig::default(),
    );
    for out in outs {
        p.apply(out);
    }
    p.finish(end);
    (p.alarms().to_vec(), p.scored())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `MFW1` records round-trip through encode/scan, and truncating the
    /// image at an arbitrary byte yields exactly the record prefix that
    /// fits — never a phantom or corrupted record.
    #[test]
    fn wal_image_scan_is_a_prefix_decoder(
        seed in 0u64..1_000_000,
        records in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut rng = seed;
        let dimms: Vec<DimmId> = (0..4u32).map(|k| DimmId::new(k, 0)).collect();
        let mut image = b"MFW1\x01".to_vec();
        let mut encoded: Vec<WalRecord> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..records {
            let record = if splitmix(&mut rng) % 3 == 0 {
                WalRecord {
                    seq,
                    payload: WalPayload::Gap(GapRecord {
                        dimm: dimms[(splitmix(&mut rng) % 4) as usize],
                        from: SimTime::from_secs(splitmix(&mut rng) % 1_000_000),
                        to: SimTime::from_secs(splitmix(&mut rng) % 1_000_000),
                    }),
                }
            } else {
                let n = 1 + (splitmix(&mut rng) % 6) as usize;
                let events: Vec<MemEvent> = (0..n as u64)
                    .map(|i| risky_ce(seq * 1_800 + i * 7, dimms[(i % 4) as usize], i % 2 == 0))
                    .collect();
                WalRecord { seq, payload: WalPayload::Events(events) }
            };
            seq += record.outputs();
            image.extend_from_slice(&encode_record(&record));
            encoded.push(record);
        }

        // Full image: every record comes back byte-exact.
        let full = scan(&image).expect("full image scans");
        prop_assert_eq!(&full.records, &encoded);
        prop_assert_eq!(full.torn_bytes, 0);

        // Arbitrary truncation: a (possibly empty) strict prefix of the
        // encoded records, plus a measured torn tail covering the rest.
        let cut = 5 + ((image.len() - 5) as f64 * cut_frac) as usize;
        let torn = scan(&image[..cut]).expect("truncated image still scans");
        prop_assert!(torn.records.len() <= encoded.len());
        prop_assert_eq!(&torn.records[..], &encoded[..torn.records.len()]);
        prop_assert_eq!(torn.valid_bytes + torn.torn_bytes, cut as u64);
    }

    /// Crash anywhere, recover, resume: alarms and model-invocation
    /// counts match the uncrashed oracle for arbitrary streams, shard
    /// counts, batch sizes and compaction budgets.
    #[test]
    fn crash_recovery_resumes_bit_identically(
        seed in 0u64..1_000_000,
        shards in 1usize..=4,
        batch in 1usize..=16,
        compact_every in prop_oneof![Just(u64::MAX), (2u64..32)],
        cut_frac in 0.0f64..1.0,
    ) {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry, 6);
        let outs = stream(&dimms, seed, 60);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scored) = oracle(&lake, &registry, &outs, end);

        // Run the full stream durably, then crash by truncating the WAL
        // at an arbitrary byte offset.
        let dir = test_dir("crash");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let cfg = DurableConfig { batch, compact_every, ..DurableConfig::default() };
        let (mut writer, fresh) = DurableOnline::open(
            &dir, &lake, &stores, &registry,
            Platform::IntelPurley, OnlineConfig::default(), cfg,
        ).unwrap();
        prop_assert_eq!(fresh, RecoveryReport::default());
        for out in &outs {
            writer.push(*out).unwrap();
        }
        writer.flush().unwrap();
        drop(writer);

        let wal_path = dir.join("wal.log");
        let image = std::fs::read(&wal_path).unwrap();
        let cut = (image.len() as f64 * cut_frac) as usize;
        std::fs::write(&wal_path, &image[..cut]).unwrap();

        // Recover and resume the suffix the crash lost.
        let restore_stores =
            make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let (mut resumed, report) = DurableOnline::open(
            &dir, &lake, &restore_stores, &registry,
            Platform::IntelPurley, OnlineConfig::default(), cfg,
        ).unwrap();
        let covered = resumed.applied();
        prop_assert!(covered <= outs.len() as u64);
        prop_assert!(covered >= report.checkpoint_applied);
        for out in &outs[covered as usize..] {
            resumed.push(*out).unwrap();
        }
        resumed.finish(end).unwrap();

        prop_assert_eq!(resumed.alarms(), ref_alarms, "alarms after recovery");
        prop_assert_eq!(resumed.scored(), ref_scored, "model invocations after recovery");
        prop_assert_eq!(resumed.applied(), outs.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
