//! Property tests of the `MFP1` IPC framing (`mfp_mlops::procserve`):
//! for randomized frame streams, truncation at an arbitrary byte offset
//! and single bit flips must never forge a frame — [`scan_frames`] and
//! the incremental [`FrameReader`] decode exactly a valid prefix and
//! classify the rest as torn/corrupt. Also a process-level smoke: the
//! real `memfault --shard-worker` binary speaks the protocol over a
//! pipe and exits cleanly on EOF.

use mfp_mlops::procserve::{
    encode_frame, scan_frames, stream_header, FrameReader, FrameStep, ProcError, RawFrame,
    WORKER_ENV,
};
use proptest::prelude::*;

/// SplitMix64: the repo's dependency-free PRNG for derived quantities.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded stream: the 5-byte header plus `n` random frames.
fn build_stream(seed: u64, n: usize) -> (Vec<u8>, Vec<RawFrame>) {
    let mut s = seed;
    let mut bytes = stream_header().to_vec();
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = (splitmix(&mut s) % 20) as u8 + 1;
        let seq = splitmix(&mut s);
        let plen = (splitmix(&mut s) % 200) as usize;
        let payload: Vec<u8> = (0..plen).map(|_| splitmix(&mut s) as u8).collect();
        bytes.extend_from_slice(&encode_frame(kind, seq, &payload));
        frames.push(RawFrame { kind, seq, payload });
    }
    (bytes, frames)
}

/// Frames whose encodings fit entirely within `cut` bytes of stream.
fn complete_within(frames: &[RawFrame], cut: usize) -> usize {
    let mut pos = stream_header().len();
    let mut k = 0;
    for f in frames {
        pos += 13 + f.payload.len() + 4;
        if pos > cut {
            break;
        }
        k += 1;
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the stream at any byte offset yields exactly the
    /// frames that are complete before the cut; the remainder is torn,
    /// never misparsed. In particular a torn *final* frame is detected.
    #[test]
    fn truncation_decodes_exactly_the_complete_prefix(
        seed in any::<u64>(),
        n in 1usize..12,
        frac in 0.0f64..1.0,
    ) {
        let (bytes, frames) = build_stream(seed, n);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let scan = scan_frames(&bytes[..cut]).expect("truncation is torn, not malformed");
        let k = complete_within(&frames, cut);
        prop_assert_eq!(&scan.frames[..], &frames[..k]);
        // Byte accounting is exact: everything past the decodable
        // prefix — including a torn final frame — is reported torn.
        prop_assert_eq!(scan.valid_bytes + scan.torn_bytes, cut as u64);
        // Re-scanning only the valid prefix is clean and idempotent.
        let again = scan_frames(&bytes[..scan.valid_bytes as usize])
            .expect("valid prefix rescans");
        prop_assert_eq!(again.frames, scan.frames);
        prop_assert_eq!(again.torn_bytes, 0);
    }

    /// A single bit flip anywhere past the header can corrupt or end
    /// the stream but never forges a frame: every decoded frame is one
    /// of the originals, in order, as a strict prefix.
    #[test]
    fn bit_flips_never_forge_frames(
        seed in any::<u64>(),
        n in 1usize..10,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut bytes, frames) = build_stream(seed, n);
        let lo = stream_header().len();
        let pos = lo + (((bytes.len() - lo - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let scan = scan_frames(&bytes).expect("header is intact");
        prop_assert!(scan.frames.len() < frames.len());
        prop_assert_eq!(&scan.frames[..], &frames[..scan.frames.len()]);
    }

    /// A flipped header is rejected outright, not resynchronized into
    /// phantom frames.
    #[test]
    fn header_flips_are_bad_header(seed in any::<u64>(), pos in 0usize..5, bit in 0u8..8) {
        let (mut bytes, _) = build_stream(seed, 3);
        bytes[pos] ^= 1 << bit;
        prop_assert!(matches!(scan_frames(&bytes), Err(ProcError::BadHeader)));
    }

    /// The incremental reader recovers the full frame sequence no
    /// matter how the bytes are chopped into reads, even with a
    /// printable-ASCII banner (a test harness preamble) ahead of the
    /// header.
    #[test]
    fn driblet_reads_with_leading_banner_recover_everything(
        seed in any::<u64>(),
        n in 1usize..8,
        banner_len in 0usize..40,
        chunk_seed in any::<u64>(),
    ) {
        let (stream, frames) = build_stream(seed, n);
        let mut s = seed ^ 0xABCD;
        // Printable ASCII can never contain the 0x01 version byte, so
        // the banner cannot alias the header.
        let mut bytes: Vec<u8> =
            (0..banner_len).map(|_| b' ' + (splitmix(&mut s) % 95) as u8).collect();
        bytes.extend_from_slice(&stream);
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut cs = chunk_seed;
        let mut pos = 0;
        while pos < bytes.len() {
            let take = 1 + (splitmix(&mut cs) % 37) as usize;
            let hi = (pos + take).min(bytes.len());
            reader.push(&bytes[pos..hi]);
            pos = hi;
            loop {
                match reader.next() {
                    FrameStep::Frame(f) => got.push(f),
                    FrameStep::NeedMore => break,
                    FrameStep::Corrupt => prop_assert!(false, "clean stream read as corrupt"),
                }
            }
        }
        prop_assert_eq!(got, frames);
    }
}

/// The real worker binary comes up, writes its stream header to the
/// pipe, and exits 0 when the supervisor side closes stdin before the
/// handshake — the supervisor relies on this for graceful teardown of
/// half-started workers.
#[test]
fn worker_binary_writes_header_and_exits_cleanly_on_eof() {
    use std::io::Read;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_memfault"))
        .arg("--shard-worker")
        .env(WORKER_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker");
    drop(child.stdin.take());
    let mut out = Vec::new();
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_end(&mut out)
        .expect("read worker stdout");
    let status = child.wait().expect("wait for worker");
    assert!(status.success(), "worker exited {status:?}");
    assert_eq!(&out[..], &stream_header()[..], "worker must open with the MFP1 header");
}
