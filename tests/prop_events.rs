//! Cross-engine identity tests for the event-driven simulator core: for
//! a matrix of plan seeds, shard counts and worker counts, the event
//! engine's merged stream and ground truth must be bit-identical to the
//! sequential tick simulator, including on the planning edge cases the
//! event core must honor (zero-DIMM fleets, fleets smaller than the
//! shard count).
//!
//! Deliberately proptest-free: the seed/shard/worker matrix is a plain
//! nested loop, so this file also compiles inside the dependency-free
//! offline harness (scripts/offline-test.sh) and gets its own row in
//! the per-crate summary there.

use mfp_dram::time::SimDuration;
use mfp_sim::prelude::*;

/// A tiny calibrated fleet (~150 DIMMs, 45-day horizon): large enough to
/// exercise all three platforms, RAS-free fault diversity and
/// multi-shard merging, small enough to simulate dozens of times.
fn tiny_fleet(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1500.0, seed);
    cfg.horizon = SimDuration::days(45);
    cfg
}

#[test]
fn event_engine_equals_tick_across_seeds_shards_and_workers() {
    for seed in [11u64, 23, 77] {
        let cfg = tiny_fleet(seed);
        let oracle = simulate_fleet(&cfg);
        for shards in [1usize, 3, 8] {
            for workers in [1usize, 4] {
                let got = simulate_fleet_events(&cfg, &ShardConfig::new(shards, workers));
                assert_eq!(
                    got.log.events(),
                    oracle.log.events(),
                    "event stream must be invariant to (seed={seed}, shards={shards}, workers={workers})"
                );
                assert_eq!(
                    got.dimms, oracle.dimms,
                    "ground-truth order must be invariant (seed={seed}, shards={shards}, workers={workers})"
                );
            }
        }
    }
}

#[test]
fn event_engine_equals_tick_under_ras_policy() {
    // RAS actions mutate fault activity mid-stream (page offlining can
    // kill a fault's remaining hits), which is exactly the state the
    // event engine must thread through its per-DIMM replay.
    let mut cfg = tiny_fleet(23);
    cfg.ras = Some(RasPolicy::default());
    let oracle = simulate_fleet(&cfg);
    for shards in [1usize, 4] {
        let got = simulate_fleet_events(&cfg, &ShardConfig::new(shards, 2));
        assert_eq!(got.log.events(), oracle.log.events());
        assert_eq!(got.dimms, oracle.dimms);
    }
}

#[test]
fn zero_dimm_fleet_is_identical_and_empty_on_both_engines() {
    let mut cfg = tiny_fleet(5);
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = 0;
        pc.sudden_only_dimms = 0;
    }
    let oracle = simulate_fleet(&cfg);
    let got = simulate_fleet_events(&cfg, &ShardConfig::new(4, 2));
    assert!(oracle.log.is_empty(), "zero DIMMs must produce no events");
    assert_eq!(got.log.events(), oracle.log.events());
    assert_eq!(got.dimms, oracle.dimms);
    assert!(got.dimms.is_empty());
}

#[test]
fn fleet_smaller_than_shard_count_is_identical() {
    // 3 platforms x (1 CE DIMM + 1 sudden DIMM) = 6 DIMMs over 32
    // shards: most shards own nothing and must contribute nothing.
    let mut cfg = tiny_fleet(7);
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = 1;
        pc.sudden_only_dimms = 1;
    }
    let oracle = simulate_fleet(&cfg);
    for scfg in [ShardConfig::new(32, 1), ShardConfig::new(32, 4)] {
        let got = simulate_fleet_events(&cfg, &scfg);
        assert_eq!(got.log.events(), oracle.log.events());
        assert_eq!(got.dimms, oracle.dimms);
    }
}
