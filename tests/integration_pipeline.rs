//! Cross-crate integration: fleet simulation → feature engineering → ML →
//! evaluation, exercising the full prediction pipeline end to end.

use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::prelude::*;
use mfp_ml::model::Algorithm;
use mfp_sim::config::{DimmCategory, FleetConfig};
use mfp_sim::fleet::simulate_fleet;

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig {
        fit_until: SimTime::ZERO + SimDuration::days(50),
        validate_until: SimTime::ZERO + SimDuration::days(80),
        ..Default::default()
    }
}

#[test]
fn fleet_logs_are_consistent_with_truth() {
    let fleet = simulate_fleet(&FleetConfig::smoke(31));
    let by_dimm = fleet.log.by_dimm();
    for truth in &fleet.dimms {
        let events = by_dimm.get(&truth.id);
        match truth.first_ue() {
            Some(ue) => {
                // The log contains exactly one UE for this DIMM, at the
                // truth time, and it terminates the DIMM's event stream.
                let events = events.expect("failed DIMM must have events");
                let ues: Vec<_> = events.iter().filter(|e| e.is_ue()).collect();
                assert_eq!(ues.len(), 1, "{}", truth.id);
                assert_eq!(ues[0].time(), ue);
                assert_eq!(events.last().unwrap().time(), ue);
            }
            None => {
                if let Some(events) = events {
                    assert!(events.iter().all(|e| !e.is_ue()), "{}", truth.id);
                }
            }
        }
        // Logged CE count in the log matches the outcome counter.
        if let Some(events) = events {
            let ces = events.iter().filter(|e| e.as_ce().is_some()).count();
            assert_eq!(ces as u32, truth.outcome.logged_ces, "{}", truth.id);
        }
    }
}

#[test]
fn samples_respect_ground_truth_labels() {
    let fleet = simulate_fleet(&FleetConfig::smoke(32));
    let problem = ProblemConfig::default();
    let set = build_samples(
        &fleet,
        Platform::IntelPurley,
        &problem,
        &FaultThresholds::default(),
    );
    let ue_of = |dimm| {
        fleet
            .dimms
            .iter()
            .find(|d| d.id == dimm)
            .and_then(|d| d.first_ue())
    };
    for i in 0..set.len() {
        let expected = problem.label_at(set.times[i], ue_of(set.dimms[i]));
        assert_eq!(Some(set.labels[i]), expected, "sample {i}");
    }
}

#[test]
fn positive_samples_come_only_from_failing_dimms() {
    let fleet = simulate_fleet(&FleetConfig::smoke(33));
    let set = build_samples(
        &fleet,
        Platform::K920,
        &ProblemConfig::default(),
        &FaultThresholds::default(),
    );
    for i in 0..set.len() {
        if set.labels[i] {
            let truth = fleet.dimms.iter().find(|d| d.id == set.dimms[i]).unwrap();
            assert!(truth.first_ue().is_some());
            assert_ne!(truth.category, DimmCategory::Benign);
        }
    }
}

#[test]
fn end_to_end_prediction_beats_chance() {
    let fleet = simulate_fleet(&FleetConfig::calibrated(100.0, 34));
    let cfg = ExperimentConfig::default();
    let splits = build_splits(&fleet, Platform::IntelPurley, &cfg);
    assert!(splits.fit.positives() > 0, "need positives to train");
    let res = evaluate_algorithm(
        Algorithm::RandomForest,
        &splits,
        Platform::IntelPurley,
        &cfg,
    );
    // On the easiest platform the model must clearly beat random alarms:
    // random would get precision ~ base rate (< 5%).
    assert!(
        res.evaluation.precision > 0.1 || res.evaluation.confusion.tp == 0,
        "precision {:.2}",
        res.evaluation.precision
    );
}

#[test]
fn study_facade_runs_all_analyses() {
    let study = Study::smoke(35);
    let table1 = study.dataset_summary();
    assert_eq!(table1.len(), 3);
    let fig4 = relative_ue_by_fault_mode(study.fleet(), &FaultThresholds::default());
    assert_eq!(fig4.len(), 3);
    let fig5 = error_bit_analysis(study.fleet(), Platform::IntelPurley);
    assert_eq!(fig5.len(), 4);
}

#[test]
fn bmc_wire_format_roundtrips_a_whole_fleet() {
    let fleet = simulate_fleet(&FleetConfig::smoke(36));
    let encoded = fleet.log.encode();
    let decoded = mfp_dram::bmc::BmcLog::decode(&encoded).expect("decode");
    assert_eq!(decoded.events(), fleet.log.events());
}

#[test]
fn experiment_is_reproducible() {
    let cfg = small_cfg();
    let fleet_a = simulate_fleet(&FleetConfig::smoke(37));
    let fleet_b = simulate_fleet(&FleetConfig::smoke(37));
    let a = build_splits(&fleet_a, Platform::IntelPurley, &cfg);
    let b = build_splits(&fleet_b, Platform::IntelPurley, &cfg);
    assert_eq!(a.fit.features, b.fit.features);
    let ra = evaluate_algorithm(Algorithm::LightGbm, &a, Platform::IntelPurley, &cfg);
    let rb = evaluate_algorithm(Algorithm::LightGbm, &b, Platform::IntelPurley, &cfg);
    assert_eq!(ra.evaluation.f1, rb.evaluation.f1);
}
