//! Property-based tests of the ML layer: metric laws, binning, and model
//! output validity on random tabular data.

use mfp_dram::address::DimmId;
use mfp_dram::time::SimTime;
use mfp_features::dataset::SampleSet;
use mfp_ml::binning::Binner;
use mfp_ml::metrics::{best_f1_threshold, best_vote_threshold, dimm_level_vote, Confusion};
use mfp_ml::model::{Algorithm, Model};
use proptest::prelude::*;

fn labels_and_scores() -> impl Strategy<Value = (Vec<bool>, Vec<f32>)> {
    proptest::collection::vec((any::<bool>(), 0.0f32..1.0), 2..200)
        .prop_map(|v| v.into_iter().unzip())
}

fn small_set() -> impl Strategy<Value = SampleSet> {
    proptest::collection::vec(
        (proptest::collection::vec(-10.0f32..10.0, 4), any::<bool>()),
        8..80,
    )
    .prop_map(|rows| {
        let mut s = SampleSet::new();
        s.schema = (0..4).map(|i| format!("f{i}")).collect();
        for (i, (row, y)) in rows.into_iter().enumerate() {
            s.push(
                row,
                y,
                DimmId::new((i / 4) as u32, 0),
                SimTime::from_secs(i as u64 * 3600),
            );
        }
        s
    })
}

proptest! {
    /// Confusion-derived metrics obey their defining bounds.
    #[test]
    fn metric_bounds((labels, scores) in labels_and_scores(), th in 0.0f32..1.0) {
        let preds: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        let c = Confusion::from_predictions(&labels, &preds);
        let n = c.tp + c.fp + c.fn_ + c.tn;
        prop_assert_eq!(n as usize, labels.len());
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
        prop_assert!((0.0..=1.0).contains(&c.f1()));
        // F1 between min and max of precision/recall (harmonic mean law),
        // whenever both are defined.
        if c.precision() > 0.0 && c.recall() > 0.0 {
            let lo = c.precision().min(c.recall());
            let hi = c.precision().max(c.recall());
            prop_assert!(c.f1() >= lo * 0.999_999 || c.f1() <= hi);
            prop_assert!(c.f1() <= hi + 1e-12);
        }
        // VIRR <= recall always (y_c > 0 only subtracts).
        prop_assert!(c.virr(0.1) <= c.recall() + 1e-12);
    }

    /// The swept threshold is at least as good as the 0.5 default.
    #[test]
    fn best_threshold_dominates_default((labels, scores) in labels_and_scores()) {
        let th = best_f1_threshold(&labels, &scores);
        let f1_at = |t: f32| {
            let preds: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
            Confusion::from_predictions(&labels, &preds).f1()
        };
        prop_assert!(f1_at(th) + 1e-9 >= f1_at(0.5));
    }

    /// Vote aggregation with more required votes never predicts more DIMMs.
    #[test]
    fn more_votes_never_fire_more(set in small_set(), th in 0.0f32..1.0) {
        let scores: Vec<f32> = (0..set.len()).map(|i| (i as f32 * 0.37) % 1.0).collect();
        let (_, pred1) = dimm_level_vote(&set, &scores, th, 1);
        let (_, pred3) = dimm_level_vote(&set, &scores, th, 3);
        for (a, b) in pred1.iter().zip(&pred3) {
            prop_assert!(!b || *a, "vote-3 fired where vote-1 did not");
        }
    }

    /// The vote threshold tuner returns a threshold within [0, 1].
    #[test]
    fn vote_threshold_in_range(set in small_set()) {
        let scores: Vec<f32> = (0..set.len()).map(|i| (i as f32 * 0.61) % 1.0).collect();
        let th = best_vote_threshold(&set, &scores, 2);
        prop_assert!((0.0..=1.0).contains(&th));
    }

    /// Binning maps every value to a valid bin, monotonically.
    #[test]
    fn binner_is_monotone(set in small_set(), probe in proptest::collection::vec(-20.0f32..20.0, 10)) {
        let binner = Binner::fit(&set, 16);
        for f in 0..set.dim() {
            let mut sorted = probe.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let bins: Vec<u8> = sorted.iter().map(|&v| binner.bin_value(f, v)).collect();
            prop_assert!(bins.windows(2).all(|w| w[0] <= w[1]));
            for &b in &bins {
                prop_assert!((b as usize) < binner.bins(f).max(1));
            }
        }
    }

    /// Trained tree models always emit probabilities in [0, 1] — even on
    /// inputs far outside the training distribution.
    #[test]
    fn models_emit_probabilities(set in small_set(), probe in proptest::collection::vec(-1e6f32..1e6, 4)) {
        prop_assume!(set.positives() > 0 && set.positives() < set.len());
        for algo in [Algorithm::RandomForest, Algorithm::LightGbm] {
            let model = Model::train(algo, &set);
            let p = model.predict_proba(&probe);
            prop_assert!((0.0..=1.0).contains(&p), "{algo}: {p}");
            prop_assert!(!p.is_nan());
        }
    }
}
