//! Cross-crate integration of the MLOps layer against simulated fleet
//! data: ingestion, materialization, deployment and online prediction.

use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::model::Algorithm;
use mfp_mlops::prelude::*;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use std::collections::BTreeMap;

fn setup() -> (mfp_sim::fleet::FleetResult, DataLake) {
    let fleet = simulate_fleet(&FleetConfig::smoke(41));
    let lake = DataLake::new();
    for t in &fleet.dimms {
        lake.register_dimm(t.id, t.platform, t.spec);
    }
    (fleet, lake)
}

#[test]
fn lake_roundtrips_fleet_logs() {
    let (fleet, lake) = setup();
    let rejected = lake.ingest_encoded(&fleet.log.encode()).expect("decode");
    assert_eq!(rejected, 0, "catalog covers every simulated DIMM");
    assert_eq!(lake.len(), fleet.log.len());
    // Per-platform query returns only that platform's events.
    for p in Platform::ALL {
        let events = lake.query(p, SimTime::ZERO, SimTime::ZERO + SimDuration::days(365));
        for e in &events {
            assert_eq!(lake.dimm_info(e.dimm()).unwrap().0, p);
        }
    }
}

#[test]
fn materialized_features_match_direct_extraction() {
    let (fleet, lake) = setup();
    lake.ingest(fleet.log.events());
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let horizon = SimTime::ZERO + fleet.config.horizon;
    let set = store.materialize(&lake, Platform::IntelPurley, SimTime::ZERO, horizon);
    let direct = mfp_features::dataset::build_samples(
        &fleet,
        Platform::IntelPurley,
        store.problem(),
        &FaultThresholds::default(),
    );
    assert_eq!(set.len(), direct.len(), "sample counts must agree");
    assert_eq!(set.features, direct.features, "feature values must agree");
    assert_eq!(set.labels, direct.labels);
}

#[test]
fn full_mlops_loop_on_simulated_data() {
    let (fleet, lake) = setup();
    let split = SimTime::ZERO + SimDuration::days(80);
    let historical: Vec<_> = fleet
        .log
        .events()
        .iter()
        .filter(|e| e.time() < split)
        .copied()
        .collect();
    lake.ingest(&historical);

    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let train = store
        .materialize(&lake, Platform::IntelPurley, SimTime::ZERO, SimTime::ZERO + SimDuration::days(50))
        .downsample_negatives(6);
    let bench = store.materialize(
        &lake,
        Platform::IntelPurley,
        SimTime::ZERO + SimDuration::days(50),
        split,
    );
    if train.positives() == 0 {
        // A tiny smoke fleet may lack early positives; nothing to assert.
        return;
    }

    let registry = ModelRegistry::new();
    let run = run_pipeline(
        &registry,
        &PipelineConfig::default(),
        Algorithm::RandomForest,
        Platform::IntelPurley,
        split,
        &train,
        &bench,
        &bench,
    );
    assert!(run.deployed, "{:?}", run.stages);

    // Stream the remainder and check alarms behave.
    let mut predictor = OnlinePredictor::new(
        &lake,
        &store,
        &registry,
        Platform::IntelPurley,
        OnlineConfig::default(),
    );
    let mut ue_times: BTreeMap<mfp_dram::address::DimmId, SimTime> = BTreeMap::new();
    for e in fleet.log.events().iter().filter(|e| e.time() >= split) {
        if lake.dimm_info(e.dimm()).map(|(p, _)| p) == Some(Platform::IntelPurley) {
            predictor.observe(e);
            if e.is_ue() {
                ue_times.entry(e.dimm()).or_insert(e.time());
            }
        }
    }
    predictor.finish(SimTime::ZERO + fleet.config.horizon);

    let report = evaluate_mitigation(
        predictor.alarms(),
        &ue_times,
        &MitigationConfig::default(),
    );
    // Consistency: counted outcomes cover all alarmed + failed DIMMs.
    assert_eq!(
        report.tp + report.fn_,
        ue_times.len() as u32,
        "every failure is a TP or FN"
    );
    assert!(report.virr_measured <= 1.0);
}

#[test]
fn drift_between_disjoint_periods_is_finite() {
    let (fleet, lake) = setup();
    lake.ingest(fleet.log.events());
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let early = store.materialize(
        &lake,
        Platform::IntelPurley,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::days(60),
    );
    let late = store.materialize(
        &lake,
        Platform::IntelPurley,
        SimTime::ZERO + SimDuration::days(60),
        SimTime::ZERO + SimDuration::days(120),
    );
    if early.is_empty() || late.is_empty() {
        return;
    }
    let report = psi_report(&early, &late, 10);
    assert!(report.max_psi().is_finite());
    // A stationary simulator should not show catastrophic drift.
    assert!(report.mean_psi() < 1.0, "mean PSI {}", report.mean_psi());
}
