//! Integration coverage for the extension subsystems: feature importance,
//! AutoML grid search, the RAS policies, the lifecycle orchestrator and
//! the address map.

use mfp_dram::addrmap::AddressMap;
use mfp_dram::geometry::{DeviceGeometry, Platform};
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::extract::feature_names;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::tuning::{default_gbdt_grid, grid_search};
use mfp_mlops::prelude::*;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use mfp_sim::ras::RasPolicy;

#[test]
fn gbdt_importance_ranks_error_bit_features_on_purley() {
    let fleet = simulate_fleet(&FleetConfig::calibrated(50.0, 61));
    let cfg = mfp_core::experiment::ExperimentConfig::default();
    let splits = mfp_core::experiment::build_splits(&fleet, Platform::IntelPurley, &cfg);
    let model = Model::train_seeded(Algorithm::LightGbm, &splits.fit, 61);
    let imp = model.feature_importance().expect("gbdt importance");
    assert_eq!(imp.len(), feature_names().len());
    let total: f64 = imp.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "importance normalized: {total}");
    // The dominant feature must come from the error-bit family.
    let names = feature_names();
    let (top_idx, _) = imp
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    assert!(
        names[top_idx].starts_with("eb") || names[top_idx].starts_with("trend_"),
        "top feature {} should be an error-bit feature",
        names[top_idx]
    );
}

#[test]
fn automl_grid_beats_or_matches_its_median_candidate() {
    let fleet = simulate_fleet(&FleetConfig::calibrated(100.0, 62));
    let cfg = mfp_core::experiment::ExperimentConfig::default();
    let splits = mfp_core::experiment::build_splits(&fleet, Platform::IntelPurley, &cfg);
    let results = grid_search(&default_gbdt_grid(62), &splits.fit, &splits.validation, 2);
    assert_eq!(results.len(), 6);
    let best = results.first().unwrap().evaluation.f1;
    let worst = results.last().unwrap().evaluation.f1;
    assert!(best >= worst);
}

#[test]
fn ras_reduces_ce_volume_without_creating_ues() {
    let mut base = FleetConfig::smoke(63);
    let fleet_plain = simulate_fleet(&base);
    base.ras = Some(RasPolicy::default());
    let fleet_ras = simulate_fleet(&base);
    let (ce0, ue0, _) = fleet_plain.log.counts();
    let (ce1, ue1, _) = fleet_ras.log.counts();
    assert!(ce1 < ce0, "mitigation must reduce CE volume: {ce0} -> {ce1}");
    assert!(ue1 <= ue0, "mitigation must never add UEs: {ue0} -> {ue1}");
}

#[test]
fn lifecycle_over_real_fleet_tracks_production() {
    let fleet = simulate_fleet(&FleetConfig::calibrated(100.0, 64));
    let lake = DataLake::new();
    for t in &fleet.dimms {
        lake.register_dimm(t.id, t.platform, t.spec);
    }
    lake.ingest(fleet.log.events());
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let registry = ModelRegistry::new();
    let feedback = FeedbackLoop::new();
    let checkpoints = run_lifecycle(
        &lake,
        &store,
        &registry,
        &feedback,
        Platform::IntelPurley,
        &LifecycleConfig::default(),
        SimTime::ZERO + SimDuration::days(150),
        SimTime::ZERO + SimDuration::days(240),
    );
    assert!(!checkpoints.is_empty());
    assert!(
        checkpoints.iter().any(|c| c.deployed),
        "{checkpoints:#?}"
    );
    assert!(registry.production(Platform::IntelPurley).is_some());
}

#[test]
fn addrmap_roundtrips_fleet_event_addresses() {
    let fleet = simulate_fleet(&FleetConfig::smoke(65));
    let map = AddressMap::new(DeviceGeometry::default(), 2);
    for e in fleet.log.events().iter().take(2_000) {
        let addr = match e {
            mfp_dram::event::MemEvent::Ce(ce) => ce.addr,
            mfp_dram::event::MemEvent::Ue(ue) => ue.addr,
            mfp_dram::event::MemEvent::Storm(_) => continue,
        };
        let phys = map.encode(&addr);
        assert_eq!(map.decode(phys), addr, "{addr}");
    }
}
