//! Property tests of the self-healing serving path (`mfp_mlops::wal`
//! per-shard `MFW2` durability + `mfp_mlops::supervise`): for randomized
//! event streams, shard counts and seeded crash-chaos schedules (kills,
//! hangs, torn WAL tails, transient panics), the supervised fleet's
//! merged alarms and scores are bit-identical to an uncrashed sequential
//! oracle. Also checks that each shard's on-disk WAL is a prefix decoder
//! at arbitrary cuts, and that recovering one shard never reads a
//! sibling's files (garbage injected into siblings changes nothing).

use mfp_dram::address::{CellAddr, DimmId};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::event::{CeEvent, MemEvent};
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::SimTime;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_mlops::supervise::ChaosPlan;
use mfp_mlops::wal::{scan, shard_dir};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test invocation (parallel-safe).
fn test_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "mfp_prop_failover_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// SplitMix64: the repo's dependency-free PRNG for derived quantities.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
    let bits: Vec<(u8, u8)> = if flip {
        vec![(1, 20), (5, 21)]
    } else {
        vec![(1, 20)]
    };
    MemEvent::Ce(CeEvent {
        time: SimTime::from_secs(t),
        dimm,
        addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
        transfer: ErrorTransfer::from_bits(bits),
    })
}

/// Registers a small fleet plus a deployed pattern model; returns the
/// catalog so streams can address it.
fn setup(lake: &DataLake, registry: &ModelRegistry, n_dimms: usize) -> Vec<DimmId> {
    let dimms: Vec<DimmId> = (0..n_dimms as u32)
        .map(|k| DimmId::new(k, (k % 2) as u8))
        .collect();
    for &id in &dimms {
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
    }
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);
    dimms
}

/// A seed-derived canonical ingest-output stream: time-ordered released
/// events over the fleet with pseudo-random collection gaps sprinkled in.
fn stream(dimms: &[DimmId], seed: u64, events: usize) -> Vec<IngestOutput> {
    let mut rng = seed;
    let mut out = Vec::with_capacity(events + events / 8);
    for k in 0..events as u64 {
        let d = dimms[(splitmix(&mut rng) % dimms.len() as u64) as usize];
        let risky = splitmix(&mut rng) % 2 == 0;
        out.push(IngestOutput::Released(risky_ce(
            1_000 + k * 1_800,
            d,
            risky,
        )));
        if splitmix(&mut rng) % 11 == 0 {
            let g = dimms[(splitmix(&mut rng) % dimms.len() as u64) as usize];
            out.push(IngestOutput::Gap(GapRecord {
                dimm: g,
                from: SimTime::from_secs(1_000 + k * 1_800),
                to: SimTime::from_secs(2_000 + k * 1_800),
            }));
        }
    }
    out
}

/// The uncrashed sequential oracle over the same stream.
fn oracle(
    lake: &DataLake,
    registry: &ModelRegistry,
    outs: &[IngestOutput],
    end: SimTime,
) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut p = OnlinePredictor::new(
        lake,
        &store,
        registry,
        Platform::IntelPurley,
        OnlineConfig::default(),
    );
    p.set_score_trace(true);
    for out in outs {
        p.apply(out);
    }
    p.finish(end);
    (p.alarms().to_vec(), p.score_trace().to_vec(), p.scored())
}

/// Per-shard durable config with score tracing and no compaction, so
/// score traces survive recovery and can be compared bit-for-bit.
fn traced() -> DurableConfig {
    DurableConfig {
        batch: 4,
        compact_every: u64::MAX,
        record_scores: true,
        ..DurableConfig::default()
    }
}

/// The default apply guard for direct `DurableShard` access.
fn unguarded<'a>() -> impl FnMut(&mut OnlinePredictor<'a>, &IngestOutput, u64) -> ApplyVerdict {
    |p, out, _seq| {
        p.apply(out);
        ApplyVerdict::Applied
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The crash-chaos gate, randomized: any seeded schedule of kills,
    /// hangs, torn tails and transient panics over any shard count
    /// recovers to merged alarms and scores bit-identical to the
    /// uncrashed sequential oracle.
    #[test]
    fn supervised_chaos_recovery_is_bit_identical(
        seed in 0u64..1_000_000,
        shards in 1usize..=4,
        chaos_events in 0usize..8,
    ) {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry, 6);
        let outs = stream(&dimms, seed, 60);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, end);

        let dir = test_dir("chaos");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let sup = Supervisor::new(
            &dir, &lake, &stores, &registry,
            Platform::IntelPurley, OnlineConfig::default(), traced(),
            SuperviseConfig::default(),
        ).unwrap();
        let plan = ChaosPlan::seeded(seed ^ 0xDEAD, shards, outs.len(), chaos_events, 2);
        let out = sup.run(&outs, end, &plan).unwrap();

        prop_assert_eq!(out.alarms, ref_alarms, "alarms under chaos");
        prop_assert_eq!(out.scores, ref_scores, "scores under chaos");
        prop_assert_eq!(out.scored, ref_scored, "invocations under chaos");
        prop_assert_eq!(out.live_shards, shards);
        prop_assert!(out.report.quarantined.is_empty(), "seeded plans are transient");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every shard's on-disk log under `MFW2` is an independent prefix
    /// decoder: cut each shard's WAL at an arbitrary byte and the scan
    /// returns exactly the records that fit; re-opening the root and
    /// re-feeding the canonical stream recovers bit-identically even
    /// though every shard was cut at a different offset.
    #[test]
    fn per_shard_wal_scan_is_a_prefix_decoder_at_arbitrary_cuts(
        seed in 0u64..1_000_000,
        shards in 1usize..=4,
        cut_fracs in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry, 6);
        let outs = stream(&dimms, seed, 60);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, end);

        let dir = test_dir("cuts");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let (mut sd, _) = ShardedDurable::open(
            &dir, &lake, &stores, &registry,
            Platform::IntelPurley, OnlineConfig::default(), traced(),
        ).unwrap();
        for out in &outs {
            sd.push(*out).unwrap();
        }
        sd.flush().unwrap();
        drop(sd);

        for s in 0..shards {
            let path = shard_dir(&dir, s).join("wal.log");
            let image = std::fs::read(&path).unwrap();
            let full = scan(&image).expect("full shard image scans");
            prop_assert_eq!(full.torn_bytes, 0);

            // Prefix-decoder property on this shard's image.
            let cut = 5 + (((image.len() - 5) as f64) * cut_fracs[s % cut_fracs.len()]) as usize;
            let torn = scan(&image[..cut]).expect("cut shard image still scans");
            prop_assert!(torn.records.len() <= full.records.len());
            prop_assert_eq!(&torn.records[..], &full.records[..torn.records.len()]);
            prop_assert_eq!(torn.valid_bytes + torn.torn_bytes, cut as u64);

            // Leave the shard actually cut for the recovery check below.
            std::fs::write(&path, &image[..cut]).unwrap();
        }

        let restore = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let (mut resumed, reports) = ShardedDurable::open(
            &dir, &lake, &restore, &registry,
            Platform::IntelPurley, OnlineConfig::default(), traced(),
        ).unwrap();
        prop_assert_eq!(reports.len(), shards);
        for out in &outs {
            resumed.push(*out).unwrap();
        }
        resumed.finish(end).unwrap();
        prop_assert_eq!(resumed.alarms(), ref_alarms, "alarms after per-shard cuts");
        prop_assert_eq!(resumed.scores(), ref_scores, "scores after per-shard cuts");
        prop_assert_eq!(resumed.scored(), ref_scored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Recovering one shard reads only its own directory: arbitrary
    /// garbage written over every sibling's files changes neither the
    /// recovery report nor the recovered state.
    #[test]
    fn single_shard_recovery_ignores_sibling_garbage(
        seed in 0u64..1_000_000,
        shards in 2usize..=4,
        victim_garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry, 6);
        let outs = stream(&dimms, seed, 40);

        let dir = test_dir("isolation");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let (mut sd, _) = ShardedDurable::open(
            &dir, &lake, &stores, &registry,
            Platform::IntelPurley, OnlineConfig::default(), traced(),
        ).unwrap();
        for out in &outs {
            sd.push(*out).unwrap();
        }
        sd.flush().unwrap();
        drop(sd);

        let keeper = (seed % shards as u64) as usize;
        let probe = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut guard = unguarded();
        let (unit, baseline) = DurableShard::open(
            shard_dir(&dir, keeper), &lake, &probe, &registry,
            Platform::IntelPurley, OnlineConfig::default(), traced(), keeper, &mut guard,
        ).unwrap();
        let baseline_alarms = unit.alarms().to_vec();
        let baseline_fed = unit.fed();
        drop(unit);

        for s in 0..shards {
            if s == keeper {
                continue;
            }
            let sib = shard_dir(&dir, s);
            std::fs::write(sib.join("wal.log"), &victim_garbage).unwrap();
            std::fs::write(sib.join("checkpoint.bin"), &victim_garbage).unwrap();
            std::fs::write(sib.join("quarantine.log"), &victim_garbage).unwrap();
        }

        let probe2 = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut guard2 = unguarded();
        let (unit2, after) = DurableShard::open(
            shard_dir(&dir, keeper), &lake, &probe2, &registry,
            Platform::IntelPurley, OnlineConfig::default(), traced(), keeper, &mut guard2,
        ).unwrap();
        prop_assert_eq!(after, baseline, "sibling garbage leaked into recovery");
        prop_assert_eq!(unit2.alarms(), &baseline_alarms[..]);
        prop_assert_eq!(unit2.fed(), baseline_fed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
