//! Property-based tests of the ECC substrate: the correction guarantees
//! that define each code, exercised with random error patterns.

use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, Platform};
use mfp_ecc::gf::{GF16, GF256};
use mfp_ecc::prelude::*;
use proptest::prelude::*;

/// Strategy: a random error pattern confined to one x4 device.
fn single_device_pattern() -> impl Strategy<Value = ErrorTransfer> {
    (0u8..18, proptest::collection::vec((0u8..8, 0u8..4), 1..16)).prop_map(|(dev, bits)| {
        ErrorTransfer::from_bits(bits.into_iter().map(|(beat, dq)| (beat, dev * 4 + dq)))
    })
}

/// Strategy: an arbitrary non-empty error pattern.
fn any_pattern() -> impl Strategy<Value = ErrorTransfer> {
    proptest::collection::vec((0u8..8, 0u8..72), 1..24)
        .prop_map(ErrorTransfer::from_bits)
}

proptest! {
    /// Whitley and K920 (full SDDC) correct EVERY single-device pattern —
    /// the defining capability of device-level correction.
    #[test]
    fn sddc_platforms_correct_any_single_device_fault(t in single_device_pattern()) {
        for p in [Platform::IntelWhitley, Platform::K920] {
            let ecc = PlatformEcc::for_platform(p);
            prop_assert_eq!(
                ecc.decode(&t, DataWidth::X4),
                DecodeOutcome::Corrected,
                "{} must correct all single-device patterns", p
            );
        }
    }

    /// A single erroneous bit is corrected by every platform and width.
    #[test]
    fn single_bits_always_corrected(beat in 0u8..8, dq in 0u8..72) {
        let t = ErrorTransfer::from_bits([(beat, dq)]);
        for p in Platform::ALL {
            let ecc = PlatformEcc::for_platform(p);
            for w in [DataWidth::X4, DataWidth::X8] {
                prop_assert_eq!(ecc.decode(&t, w), DecodeOutcome::Corrected);
            }
        }
    }

    /// Decoding is deterministic: same input, same outcome.
    #[test]
    fn decoding_is_deterministic(t in any_pattern()) {
        for p in Platform::ALL {
            let ecc = PlatformEcc::for_platform(p);
            let a = ecc.decode(&t, DataWidth::X4);
            let b = ecc.decode(&t, DataWidth::X4);
            prop_assert_eq!(a, b);
        }
    }

    /// A clean transfer is never flagged.
    #[test]
    fn clean_is_clean(_x in 0u8..1) {
        let t = ErrorTransfer::new();
        for p in Platform::ALL {
            let ecc = PlatformEcc::for_platform(p);
            prop_assert_eq!(ecc.decode(&t, DataWidth::X4), DecodeOutcome::Clean);
        }
    }

    /// Hsiao SEC-DED: random double-bit errors are always detected, never
    /// miscorrected (the DED guarantee).
    #[test]
    fn hsiao_detects_all_doubles(i in 0usize..72, j in 0usize..72) {
        prop_assume!(i != j);
        let code = Hsiao7264::new();
        let e = (1u128 << i) | (1u128 << j);
        prop_assert_eq!(code.decode_error(e), WordOutcome::Detected);
    }

    /// RS over GF(256): every single-symbol error is corrected exactly.
    #[test]
    fn rs256_corrects_single_symbols(pos in 0usize..18, mag in 1u8..=255) {
        let code = RsCode::new(&GF256, 18, 16);
        let mut e = [0u8; 18];
        e[pos] = mag;
        prop_assert_eq!(code.decode_error(&e), RsOutcome::Corrected);
    }

    /// RS t=2 over GF(256): every double-symbol error is corrected.
    #[test]
    fn rs256_t2_corrects_doubles(
        p1 in 0usize..18,
        p2 in 0usize..18,
        m1 in 1u8..=255,
        m2 in 1u8..=255,
    ) {
        prop_assume!(p1 != p2);
        let code = RsCode::new(&GF256, 18, 14);
        let mut e = [0u8; 18];
        e[p1] = m1;
        e[p2] = m2;
        prop_assert_eq!(code.decode_error(&e), RsOutcome::Corrected);
    }

    /// GF(16) field laws on random elements.
    #[test]
    fn gf16_field_laws(a in 0u8..16, b in 0u8..16, c in 0u8..16) {
        prop_assert_eq!(GF16.mul(a, b), GF16.mul(b, a));
        prop_assert_eq!(
            GF16.mul(a, GF16.mul(b, c)),
            GF16.mul(GF16.mul(a, b), c)
        );
        prop_assert_eq!(GF16.mul(a, b ^ c), GF16.mul(a, b) ^ GF16.mul(a, c));
        if a != 0 {
            prop_assert_eq!(GF16.mul(a, GF16.inv(a)), 1);
        }
    }

    /// GF(256): division inverts multiplication.
    #[test]
    fn gf256_div_inverts_mul(a in 0u8..=255, b in 1u8..=255) {
        prop_assert_eq!(GF256.div(GF256.mul(a, b), b), a);
    }
}
