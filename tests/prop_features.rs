//! Property-based tests of the feature layer: bus-statistics invariants,
//! labeling-window laws, and no-future-leakage of feature extraction.

use mfp_dram::address::{CellAddr, DimmId};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::event::{CeEvent, MemEvent};
use mfp_dram::geometry::DataWidth;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::prelude::*;
use proptest::prelude::*;

/// Bit-level equality between two sample sets (f32 rows compared by bits,
/// so this is stricter than `==` and NaN-safe).
fn assert_bit_identical(
    a: &mfp_features::dataset::SampleSet,
    b: &mfp_features::dataset::SampleSet,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(&a.schema, &b.schema);
    prop_assert_eq!(&a.labels, &b.labels);
    prop_assert_eq!(&a.dimms, &b.dimms);
    prop_assert_eq!(&a.times, &b.times);
    prop_assert_eq!(a.features.len(), b.features.len());
    for (i, (x, y)) in a.features.iter().zip(&b.features).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "feature {} differs", i);
    }
    Ok(())
}

fn bits_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..8, 0u8..72), 1..20)
}

/// Random time-ordered CE events.
fn events_strategy() -> impl Strategy<Value = Vec<MemEvent>> {
    proptest::collection::vec(
        (0u64..2_000_000, 0u8..16, 0u32..500, 0u16..100, bits_strategy()),
        1..40,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        raw.into_iter()
            .map(|(t, bank, row, col, bits)| {
                MemEvent::Ce(CeEvent {
                    time: SimTime::from_secs(t),
                    dimm: DimmId::new(1, 0),
                    addr: CellAddr::new(0, bank, row, col),
                    transfer: ErrorTransfer::from_bits(bits),
                })
            })
            .collect()
    })
}

proptest! {
    /// Bus statistics are internally consistent for any pattern.
    #[test]
    fn transfer_stats_invariants(bits in bits_strategy()) {
        let t = ErrorTransfer::from_bits(bits);
        prop_assert!(t.dq_count() >= 1);
        prop_assert!(t.beat_count() >= 1 && t.beat_count() <= 8);
        prop_assert!(t.bit_count() >= t.dq_count().max(t.beat_count()));
        prop_assert!(t.dq_interval().unwrap() <= 71);
        prop_assert!(t.beat_interval().unwrap() <= 7);
        // Union of device slices reconstructs the bit count.
        let total: u32 = (0..18u8)
            .map(|d| {
                t.device_slice(d, DataWidth::X4)
                    .iter()
                    .map(|b| b.count_ones())
                    .sum::<u32>()
            })
            .sum();
        prop_assert_eq!(total, t.bit_count());
    }

    /// Error-bit aggregates never exceed per-event bounds.
    #[test]
    fn errorbit_stats_bounds(events in events_strategy()) {
        let ces: Vec<&CeEvent> = events.iter().filter_map(|e| e.as_ce()).collect();
        let s = ErrorBitStats::from_ces(ces.iter().copied(), DataWidth::X4);
        prop_assert_eq!(s.events as usize, ces.len());
        prop_assert!(s.mean_dq_count <= s.max_dq_count as f32 + 1e-6);
        prop_assert!(s.mean_beat_count <= s.max_beat_count as f32 + 1e-6);
        prop_assert!(s.union_dev_dq <= 4, "x4 device has 4 lanes");
        prop_assert!(s.union_dev_beats <= 8);
        prop_assert!(s.complex_events <= s.events);
        prop_assert!(s.max_devices <= s.total_devices);
    }

    /// Labeling laws: the three regimes partition the timeline.
    #[test]
    fn label_partitions_time(
        t_secs in 0u64..10_000_000,
        ue_offset in 0i64..5_000_000,
    ) {
        let cfg = ProblemConfig::default();
        let t = SimTime::from_secs(t_secs);
        let ue = SimTime::from_secs((t_secs as i64 + ue_offset) as u64);
        let label = cfg.label_at(t, Some(ue));
        let lead_end = t + cfg.lead;
        let window_end = t + cfg.lead + cfg.prediction;
        if ue < lead_end {
            prop_assert_eq!(label, None);
        } else if ue <= window_end {
            prop_assert_eq!(label, Some(true));
        } else {
            prop_assert_eq!(label, Some(false));
        }
    }

    /// Feature extraction never sees the future: appending later events
    /// leaves the vector at time `t` unchanged.
    #[test]
    fn extraction_is_causal(events in events_strategy(), cut in 1u64..2_000_000) {
        let t = SimTime::from_secs(cut);
        let spec = DimmSpec::default();
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();

        let past: Vec<&MemEvent> = events.iter().filter(|e| e.time() < t).collect();
        let all: Vec<&MemEvent> = events.iter().collect();

        let v_past = extract_features(&DimmHistory::new(&past), &spec, t, &cfg, &th);
        let v_all = extract_features(&DimmHistory::new(&all), &spec, t, &cfg, &th);
        prop_assert_eq!(v_past, v_all);
    }

    /// Sample times always look back on at least one CE and never pass the
    /// failure point.
    #[test]
    fn sample_times_are_valid(events in events_strategy()) {
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let cfg = ProblemConfig::default();
        for t in cfg.sample_times(&h, SimDuration::days(60)) {
            prop_assert!(h.ce_count_in_window(t, cfg.observation) > 0);
            prop_assert!(cfg.label_at(t, h.first_ue()).is_some());
        }
    }

    /// The streaming extractor is bit-identical to the batch oracle at every
    /// point of a monotone evaluation grid, for random histories and both
    /// device widths.
    #[test]
    fn streaming_matches_batch(
        events in events_strategy(),
        start in 0u64..2_000_000,
        step in 1u64..200_000,
        x8 in proptest::bool::ANY,
    ) {
        let spec = DimmSpec {
            width: if x8 { DataWidth::X8 } else { DataWidth::X4 },
            ..Default::default()
        };
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let mut stream = FeatureStream::new(h.clone(), &spec, &cfg, &th);
        for k in 0..12u64 {
            let t = SimTime::from_secs(start + k * step);
            prop_assert_eq!(
                stream.features_at(t),
                extract_features(&h, &spec, t, &cfg, &th),
                "diverged at t = {}", t
            );
        }
    }

    /// Out-of-order queries rewind transparently: a stream queried at an
    /// earlier time agrees with the batch oracle there too.
    #[test]
    fn streaming_rewind_matches_batch(
        events in events_strategy(),
        t_fwd in 1_000_000u64..3_000_000,
        t_back in 0u64..1_000_000,
    ) {
        let spec = DimmSpec::default();
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let mut stream = FeatureStream::new(h.clone(), &spec, &cfg, &th);
        for t in [SimTime::from_secs(t_fwd), SimTime::from_secs(t_back)] {
            prop_assert_eq!(
                stream.features_at(t),
                extract_features(&h, &spec, t, &cfg, &th),
                "diverged at t = {}", t
            );
        }
    }

    /// Fault classification is monotone in evidence: adding events can only
    /// turn flags on, never off.
    #[test]
    fn classification_is_monotone(events in events_strategy(), split in 1usize..39) {
        let ces: Vec<&CeEvent> = events.iter().filter_map(|e| e.as_ce()).collect();
        prop_assume!(split < ces.len());
        let th = FaultThresholds::default();
        let partial = classify_ces(ces[..split].iter().copied(), DataWidth::X4, &th);
        let full = classify_ces(ces.iter().copied(), DataWidth::X4, &th);
        for (a, b) in partial.flags().iter().zip(full.flags()) {
            // single_device can flip to multi_device, so only check the
            // spatial flags (first four).
            let _ = b;
            let _ = a;
        }
        let spatial = |f: &ObservedFaults| [f.cell, f.row, f.column, f.bank];
        for (a, b) in spatial(&partial).iter().zip(spatial(&full)) {
            prop_assert!(!a || b, "spatial flags must be monotone");
        }
    }
}

proptest! {
    // Whole-fleet simulation per case: keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Telemetry is observation-only: sample assembly with instrumentation
    /// recording is bit-identical to the uninstrumented oracle (telemetry
    /// disabled) at every worker count.
    #[test]
    fn instrumented_assembly_matches_uninstrumented_oracle(seed in 0u64..1_000) {
        use mfp_dram::geometry::Platform;
        use mfp_sim::config::FleetConfig;
        use mfp_sim::fleet::simulate_fleet_with_workers;

        let fleet = simulate_fleet_with_workers(&FleetConfig::smoke(seed), 2);
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();

        mfp_obs::set_enabled(false);
        let oracle = build_samples_with_workers(
            &fleet, Platform::IntelPurley, &cfg, &th, 1,
        );
        mfp_obs::set_enabled(true);
        for workers in [1usize, 2, 4] {
            let instrumented = build_samples_with_workers(
                &fleet, Platform::IntelPurley, &cfg, &th, workers,
            );
            assert_bit_identical(&instrumented, &oracle)?;
        }
    }
}
