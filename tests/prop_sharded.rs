//! Property tests of the sharded fleet simulator: for arbitrary seeds,
//! shard counts and worker counts the merged event stream and ground
//! truth are bit-identical to the sequential simulator, and a clean
//! sharded stream passes through the hardened ingestor without tripping
//! any watermark defence (no quarantines, no rejects, no dedup hits).

use mfp_dram::time::SimDuration;
use mfp_mlops::prelude::*;
use mfp_sim::prelude::*;
use proptest::prelude::*;

/// A tiny calibrated fleet (~150 DIMMs, 45-day horizon): large enough to
/// exercise all three platforms and multi-shard merging, small enough to
/// simulate dozens of times under proptest.
fn tiny_fleet(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1500.0, seed);
    cfg.horizon = SimDuration::days(45);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharded simulator is a pure execution detail: any (shards,
    /// workers) choice reproduces the sequential oracle bit for bit.
    #[test]
    fn sharded_equals_sequential(
        seed in 0u64..1_000_000,
        shards in 1usize..=8,
        workers in 1usize..=4,
    ) {
        let cfg = tiny_fleet(seed);
        let oracle = simulate_fleet(&cfg);
        let got = simulate_fleet_sharded(&cfg, &ShardConfig::new(shards, workers));
        prop_assert_eq!(
            got.log.events(),
            oracle.log.events(),
            "event stream must be invariant to (shards={}, workers={})",
            shards,
            workers
        );
        prop_assert_eq!(got.dimms, oracle.dimms, "ground-truth order must be invariant");
    }

    /// A clean sharded stream fed through the bounded ingest bridge never
    /// trips the watermark defences: the k-way merge delivers events in
    /// timestamp order, so nothing is quarantined, rejected or deduped,
    /// and every event is released in non-decreasing time order.
    #[test]
    fn clean_sharded_stream_preserves_watermark_invariants(
        seed in 0u64..1_000_000,
        shards in 1usize..=8,
        workers in 1usize..=4,
        batch in 1usize..=512,
    ) {
        let cfg = tiny_fleet(seed);
        let fleet = ShardedFleet::plan(&cfg);
        let lake = DataLake::new();
        for (id, platform, spec) in fleet.catalog() {
            lake.register_dimm(id, platform, spec);
        }

        let mut released = 0u64;
        let mut gaps = 0u64;
        let mut last_time = None;
        let mut merged = 0u64;
        let stats = ingest_bounded(
            &lake,
            IngestConfig::default(),
            2,
            batch,
            |emit| {
                let outcome = fleet.run_stream(&ShardConfig::new(shards, workers), |e| emit(e));
                merged = outcome.stats.merged_events;
            },
            |out| match out {
                IngestOutput::Released(e) => {
                    if let Some(t) = last_time {
                        assert!(t <= e.time(), "release order must be non-decreasing");
                    }
                    last_time = Some(e.time());
                    released += 1;
                }
                IngestOutput::Gap(_) => gaps += 1,
            },
        );

        prop_assert_eq!(stats.quarantined, 0, "clean stream must not be quarantined");
        prop_assert_eq!(stats.rejected, 0, "clean stream must not be rejected");
        prop_assert_eq!(stats.duplicates, 0, "clean stream has no duplicates");
        prop_assert_eq!(stats.received, merged, "every merged event reaches the ingestor");
        prop_assert_eq!(stats.released, released, "stats agree with the observed releases");
        prop_assert_eq!(released, merged, "every event is released exactly once");
        prop_assert_eq!(gaps, 0, "a clean run detects no collection holes");
    }
}
