//! The ECC-scheme abstraction: from a raw burst error pattern to the
//! system-visible outcome (CE, UE, or silent corruption).
//!
//! A scheme partitions the 8x72 burst error grid into code words (per beat,
//! per beat-pair, ...), runs the real decoder of each code word, and
//! combines the word outcomes into one burst-level [`DecodeOutcome`]. This
//! is the mechanism the paper identifies as the source of cross-platform
//! differences: the *same* DRAM fault produces different CE/UE behaviour
//! under different schemes.

use crate::rs::{RsCode, RsOutcome};
use crate::secded::{Hsiao7264, WordOutcome};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, BURST_BEATS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// System-visible outcome of one memory access under a given ECC scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No erroneous bits reached the controller.
    Clean,
    /// All errors corrected: logged as a CE.
    Corrected,
    /// Detected uncorrectable error: logged as a UE (machine check).
    Ue,
    /// Miscorrected or undetected error: silent data corruption.
    Sdc,
}

impl DecodeOutcome {
    /// Combines word-level outcomes: a detected UE dominates, then SDC,
    /// then correction.
    pub fn combine(self, other: DecodeOutcome) -> DecodeOutcome {
        use DecodeOutcome::*;
        match (self, other) {
            (Ue, _) | (_, Ue) => Ue,
            (Sdc, _) | (_, Sdc) => Sdc,
            (Corrected, _) | (_, Corrected) => Corrected,
            _ => Clean,
        }
    }
}

impl From<WordOutcome> for DecodeOutcome {
    fn from(w: WordOutcome) -> Self {
        match w {
            WordOutcome::Clean => DecodeOutcome::Clean,
            WordOutcome::Corrected(_) => DecodeOutcome::Corrected,
            WordOutcome::Detected => DecodeOutcome::Ue,
            WordOutcome::Miscorrected | WordOutcome::Undetected => DecodeOutcome::Sdc,
        }
    }
}

impl From<RsOutcome> for DecodeOutcome {
    fn from(r: RsOutcome) -> Self {
        match r {
            RsOutcome::Clean => DecodeOutcome::Clean,
            RsOutcome::Corrected => DecodeOutcome::Corrected,
            RsOutcome::Detected => DecodeOutcome::Ue,
            RsOutcome::Miscorrected | RsOutcome::Undetected => DecodeOutcome::Sdc,
        }
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeOutcome::Clean => write!(f, "clean"),
            DecodeOutcome::Corrected => write!(f, "CE"),
            DecodeOutcome::Ue => write!(f, "UE"),
            DecodeOutcome::Sdc => write!(f, "SDC"),
        }
    }
}

/// An error-correcting-code scheme applied by a memory controller.
///
/// Implementations run real decoders on the burst's error pattern. The
/// trait is object-safe so platforms can be selected at run time.
pub trait EccScheme: Send + Sync {
    /// Human-readable scheme name.
    fn name(&self) -> &'static str;

    /// Decodes a burst error pattern for a rank of the given device width.
    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome;
}

/// Plain SEC-DED: one Hsiao (72,64) word per beat — the baseline protection
/// on platforms (or widths) without device-level correction.
#[derive(Debug, Clone, Default)]
pub struct SecDedPerBeat {
    code: Hsiao7264,
}

impl SecDedPerBeat {
    /// Creates the scheme.
    pub fn new() -> Self {
        SecDedPerBeat {
            code: Hsiao7264::new(),
        }
    }
}

impl EccScheme for SecDedPerBeat {
    fn name(&self) -> &'static str {
        "SEC-DED(72,64)/beat"
    }

    fn decode(&self, transfer: &ErrorTransfer, _width: DataWidth) -> DecodeOutcome {
        let mut out = DecodeOutcome::Clean;
        for &beat in transfer.beats() {
            out = out.combine(self.code.decode_error(beat).into());
        }
        out
    }
}

/// Per-beat x4 SDDC: RS(18,16), one symbol per device per beat (4-bit
/// device contributions zero-extended into GF(256) symbols; block length 18
/// exceeds GF(16)'s limit of 15, so — as in real interleaved Chipkill
/// designs — a larger field carries the narrow symbols).
///
/// Corrects any error confined to one device in each beat (including a
/// whole-device failure). Two devices erring in the same beat exceed `t=1`.
/// For x8 parts the symbol mapping does not apply and the scheme falls back
/// to SEC-DED, mirroring real platforms where x8 SDDC requires lockstep.
#[derive(Debug, Clone)]
pub struct SddcPerBeat {
    rs: RsCode<256>,
    fallback: Hsiao7264,
}

impl SddcPerBeat {
    /// Creates the scheme.
    pub fn new() -> Self {
        SddcPerBeat {
            rs: RsCode::new(&crate::gf::GF256, 18, 16),
            fallback: Hsiao7264::new(),
        }
    }

    fn decode_beat(&self, lanes: u128) -> DecodeOutcome {
        let mut symbols = [0u8; 18];
        for (d, sym) in symbols.iter_mut().enumerate() {
            *sym = ((lanes >> (d * 4)) & 0xF) as u8;
        }
        self.rs.decode_error(&symbols).into()
    }
}

impl Default for SddcPerBeat {
    fn default() -> Self {
        SddcPerBeat::new()
    }
}

impl EccScheme for SddcPerBeat {
    fn name(&self) -> &'static str {
        "SDDC RS(18,16)/beat"
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        let mut out = DecodeOutcome::Clean;
        for &beat in transfer.beats() {
            let word = match width {
                DataWidth::X4 => self.decode_beat(beat),
                DataWidth::X8 => self.fallback.decode_error(beat).into(),
            };
            out = out.combine(word);
        }
        out
    }
}

/// Beat-pair SDDC over GF(256): each device's 4 DQ x 2 beat contribution is
/// one 8-bit symbol; RS(18,16) per beat pair.
///
/// Strictly stronger than [`SddcPerBeat`] against single-device faults (a
/// device erring in both beats of a pair is *one* symbol error here but two
/// separate constraints there is no difference — the gain is that errors
/// across many beats of one device never accumulate across code words
/// within the pair) and, by construction, all single-device bursts are
/// correctable. This models the K920's device-correction ("K920-SDDC").
#[derive(Debug, Clone)]
pub struct SddcBeatPair {
    rs: RsCode<256>,
    fallback: Hsiao7264,
}

impl SddcBeatPair {
    /// Creates the scheme.
    pub fn new() -> Self {
        SddcBeatPair {
            rs: RsCode::new(&crate::gf::GF256, 18, 16),
            fallback: Hsiao7264::new(),
        }
    }

    fn decode_pair(&self, even: u128, odd: u128) -> DecodeOutcome {
        let mut symbols = [0u8; 18];
        for (d, sym) in symbols.iter_mut().enumerate() {
            let lo = ((even >> (d * 4)) & 0xF) as u8;
            let hi = ((odd >> (d * 4)) & 0xF) as u8;
            *sym = lo | (hi << 4);
        }
        self.rs.decode_error(&symbols).into()
    }
}

impl Default for SddcBeatPair {
    fn default() -> Self {
        SddcBeatPair::new()
    }
}

impl EccScheme for SddcBeatPair {
    fn name(&self) -> &'static str {
        "SDDC RS(18,16)/GF256/beat-pair"
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        let beats = transfer.beats();
        let mut out = DecodeOutcome::Clean;
        match width {
            DataWidth::X4 => {
                for p in 0..(BURST_BEATS as usize / 2) {
                    out = out.combine(self.decode_pair(beats[2 * p], beats[2 * p + 1]));
                }
            }
            DataWidth::X8 => {
                for &beat in beats {
                    out = out.combine(self.fallback.decode_error(beat).into());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_burst(dev: u8, beats: &[u8], bits_per_beat: u8) -> ErrorTransfer {
        // All errors confined to device `dev` (x4): set `bits_per_beat` DQ
        // bits in each listed beat.
        let mut t = ErrorTransfer::new();
        for &b in beats {
            for k in 0..bits_per_beat {
                t.set(b, dev * 4 + k);
            }
        }
        t
    }

    #[test]
    fn combine_orders_severity() {
        use DecodeOutcome::*;
        assert_eq!(Clean.combine(Corrected), Corrected);
        assert_eq!(Corrected.combine(Ue), Ue);
        assert_eq!(Sdc.combine(Corrected), Sdc);
        assert_eq!(Ue.combine(Sdc), Ue);
        assert_eq!(Clean.combine(Clean), Clean);
    }

    #[test]
    fn secded_corrects_single_bits_per_beat() {
        let s = SecDedPerBeat::new();
        let t = ErrorTransfer::from_bits([(0, 5), (3, 60)]);
        assert_eq!(t.bit_count(), 2);
        // One bit per beat: each word independently correctable.
        assert_eq!(s.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn secded_flags_double_in_one_beat() {
        let s = SecDedPerBeat::new();
        let t = ErrorTransfer::from_bits([(0, 5), (0, 60)]);
        assert_eq!(s.decode(&t, DataWidth::X4), DecodeOutcome::Ue);
    }

    #[test]
    fn sddc_per_beat_corrects_whole_device() {
        let s = SddcPerBeat::new();
        // Device 3 fails completely: 4 bits in all 8 beats.
        let t = device_burst(3, &[0, 1, 2, 3, 4, 5, 6, 7], 4);
        assert_eq!(s.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn sddc_per_beat_flags_two_devices_same_beat() {
        let s = SddcPerBeat::new();
        let mut t = device_burst(3, &[2], 2);
        t.set(2, 7 * 4); // second device in the same beat
        let out = s.decode(&t, DataWidth::X4);
        assert!(
            matches!(out, DecodeOutcome::Ue | DecodeOutcome::Sdc),
            "two symbols in one beat must exceed t=1, got {out:?}"
        );
    }

    #[test]
    fn sddc_per_beat_corrects_two_devices_different_beats() {
        let s = SddcPerBeat::new();
        let mut t = device_burst(3, &[0], 2);
        t.set(5, 7 * 4); // different device in a different beat
        assert_eq!(s.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn beat_pair_corrects_whole_device() {
        let s = SddcBeatPair::new();
        let t = device_burst(9, &[0, 1, 2, 3, 4, 5, 6, 7], 4);
        assert_eq!(s.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn beat_pair_flags_two_devices_same_pair() {
        let s = SddcBeatPair::new();
        let mut t = device_burst(9, &[0], 1);
        t.set(1, 2 * 4); // other device, same beat pair (0,1)
        let out = s.decode(&t, DataWidth::X4);
        assert!(matches!(out, DecodeOutcome::Ue | DecodeOutcome::Sdc));
    }

    #[test]
    fn beat_pair_corrects_two_devices_distinct_pairs() {
        let s = SddcBeatPair::new();
        let mut t = device_burst(9, &[0, 1], 4);
        t.set(6, 2 * 4);
        t.set(7, 2 * 4 + 1);
        assert_eq!(s.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn x8_falls_back_to_secded() {
        let sddc = SddcPerBeat::new();
        let pair = SddcBeatPair::new();
        // Two bits in one beat within the same x8 device: SEC-DED detects.
        let t = ErrorTransfer::from_bits([(0, 0), (0, 1)]);
        assert_eq!(sddc.decode(&t, DataWidth::X8), DecodeOutcome::Ue);
        assert_eq!(pair.decode(&t, DataWidth::X8), DecodeOutcome::Ue);
        // Under x4 SDDC both bits are one symbol: corrected.
        assert_eq!(sddc.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn clean_transfer_decodes_clean() {
        let t = ErrorTransfer::new();
        assert_eq!(
            SecDedPerBeat::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Clean
        );
        assert_eq!(
            SddcPerBeat::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Clean
        );
        assert_eq!(
            SddcBeatPair::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Clean
        );
    }
}
