//! Galois-field arithmetic over GF(2^m).
//!
//! Reed–Solomon codes — the mathematical backbone of Chipkill / SDDC class
//! ECC — operate on symbols drawn from a finite field. DDR4 x4 devices
//! contribute 4-bit symbols per beat (GF(16)); treating a device's two-beat
//! contribution as one symbol gives 8-bit symbols (GF(256)).
//!
//! Tables are generated at compile time with `const fn`, so field operations
//! are single lookups at run time.

/// GF(2^4) with primitive polynomial x^4 + x + 1 (0x13).
pub const GF16: GfTables<16> = GfTables::new(0x13);

/// GF(2^8) with primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
pub const GF256: GfTables<256> = GfTables::new(0x11D);

/// Log/antilog tables for a GF(2^m) field with `Q` = 2^m elements.
///
/// # Examples
///
/// ```
/// use mfp_ecc::gf::GF16;
///
/// let a = 7u8;
/// let inv = GF16.inv(a);
/// assert_eq!(GF16.mul(a, inv), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GfTables<const Q: usize> {
    /// `exp[i] = alpha^i`, doubled to avoid modulo in `mul`.
    exp: [u8; 512],
    /// `log[x]` for `x != 0`; `log\[0\]` is unused.
    log: [u16; Q],
}

impl<const Q: usize> GfTables<Q> {
    /// Number of non-zero elements (the multiplicative group order).
    pub const ORDER: usize = Q - 1;

    /// Builds the tables for the given primitive polynomial.
    ///
    /// `poly` must include the top (x^m) term, e.g. `0x13` for GF(16).
    pub const fn new(poly: u16) -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u16; Q];
        let mut x: u16 = 1;
        let mut i = 0;
        while i < Q - 1 {
            exp[i] = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (Q as u16) != 0 {
                x ^= poly;
            }
            i += 1;
        }
        // Duplicate so exp[i + ORDER] == exp[i]; avoids a mod in mul().
        let mut j = 0;
        while j < Q - 1 {
            exp[Q - 1 + j] = exp[j];
            j += 1;
        }
        GfTables { exp, log }
    }

    /// alpha^i for 0 <= i < 2*(Q-1).
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u8 {
        self.exp[i % (Q - 1)]
    }

    /// Field addition (= subtraction = XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF({Q})");
        if a == 0 {
            0
        } else {
            let la = self.log[a as usize] as usize;
            let lb = self.log[b as usize] as usize;
            self.exp[la + (Q - 1) - lb]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        self.div(1, a)
    }

    /// `a` raised to integer power `e`.
    pub fn pow(&self, a: u8, e: u32) -> u8 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let la = self.log[a as usize] as u64;
        let idx = (la * e as u64) % (Q as u64 - 1);
        self.exp[idx as usize]
    }

    /// Discrete logarithm base alpha.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn log(&self, a: u8) -> u16 {
        assert!(a != 0, "log of zero in GF({Q})");
        self.log[a as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf16_is_a_field() {
        // Every non-zero element has an inverse; mul is commutative/associative
        // (spot-checked exhaustively for GF(16)).
        for a in 1..16u8 {
            assert_eq!(GF16.mul(a, GF16.inv(a)), 1, "a={a}");
            for b in 0..16u8 {
                assert_eq!(GF16.mul(a, b), GF16.mul(b, a));
                for c in 0..16u8 {
                    assert_eq!(
                        GF16.mul(GF16.mul(a, b), c),
                        GF16.mul(a, GF16.mul(b, c)),
                        "assoc {a} {b} {c}"
                    );
                    // Distributivity over XOR.
                    assert_eq!(
                        GF16.mul(a, b ^ c),
                        GF16.mul(a, b) ^ GF16.mul(a, c),
                        "dist {a} {b} {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn gf256_inverses() {
        for a in 1..=255u8 {
            assert_eq!(GF256.mul(a, GF256.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn gf256_generator_has_full_order() {
        // alpha generates the whole multiplicative group.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = GF256.alpha_pow(i);
            assert!(!seen[v as usize], "alpha^{i} repeats");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn mul_by_zero_and_one() {
        for a in 0..16u8 {
            assert_eq!(GF16.mul(a, 0), 0);
            assert_eq!(GF16.mul(a, 1), a);
        }
        for a in [0u8, 1, 2, 77, 255] {
            assert_eq!(GF256.mul(a, 0), 0);
            assert_eq!(GF256.mul(a, 1), a);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in 1..16u8 {
            let mut acc = 1u8;
            for e in 0..10u32 {
                assert_eq!(GF16.pow(a, e), acc, "a={a} e={e}");
                acc = GF16.mul(acc, a);
            }
        }
        assert_eq!(GF16.pow(0, 0), 1);
        assert_eq!(GF16.pow(0, 5), 0);
    }

    #[test]
    fn div_inverts_mul() {
        for a in 0..16u8 {
            for b in 1..16u8 {
                assert_eq!(GF16.div(GF16.mul(a, b), b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        GF16.div(3, 0);
    }

    #[test]
    fn log_alpha_pow_roundtrip() {
        for i in 0..255u16 {
            assert_eq!(GF256.log(GF256.alpha_pow(i as usize)), i);
        }
    }
}
