//! # mfp-ecc
//!
//! Error-correction-code substrate for the `memfault` workspace.
//!
//! The paper's central observation is that memory-failure patterns are
//! architecture dependent *because each platform ships a different ECC*.
//! This crate implements the codes for real:
//!
//! * [`gf`] — compile-time GF(2^4) / GF(2^8) arithmetic tables.
//! * [`secded`] — the Hsiao (72,64) SEC-DED code with exhaustive
//!   single/double-error guarantees.
//! * [`rs`] — a complete Reed–Solomon decoder (syndromes,
//!   Berlekamp–Massey, Chien search, Forney) that classifies injected
//!   error patterns as corrected / detected / miscorrected / undetected.
//! * [`scheme`] — burst-level ECC schemes mapping the 8x72 error grid onto
//!   code words ([`scheme::SecDedPerBeat`], [`scheme::SddcPerBeat`],
//!   [`scheme::SddcBeatPair`]).
//! * [`platforms`] — the Purley / Whitley / K920 models with their
//!   documented correction envelopes.
//!
//! # Examples
//!
//! ```
//! use mfp_ecc::prelude::*;
//! use mfp_dram::bus::ErrorTransfer;
//! use mfp_dram::geometry::{DataWidth, Platform};
//!
//! // A 2-bit error within one chip, landing in an odd (weakened) beat:
//! let t = ErrorTransfer::from_bits([(1, 20), (1, 21)]);
//!
//! let purley = PlatformEcc::for_platform(Platform::IntelPurley);
//! let k920 = PlatformEcc::for_platform(Platform::K920);
//! assert_eq!(purley.decode(&t, DataWidth::X4), DecodeOutcome::Ue);
//! assert_eq!(k920.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf;
pub mod platforms;
pub mod rs;
pub mod scheme;
pub mod secded;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::platforms::{CachedPlatformEcc, K920Ecc, PlatformEcc, PurleyEcc, WhitleyEcc};
    pub use crate::rs::{RsCode, RsOutcome};
    pub use crate::scheme::{DecodeOutcome, EccScheme, SddcBeatPair, SddcPerBeat, SecDedPerBeat};
    pub use crate::secded::{Hsiao7264, WordOutcome};
}
