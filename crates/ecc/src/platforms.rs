//! Per-platform ECC models.
//!
//! The exact production ECC algorithms are confidential (paper, §II-B); what
//! is public is their *correction envelope*:
//!
//! * **Intel Purley** — SDDC-class but *weaker than Chipkill*: some check
//!   bits are repurposed for metadata (ownership/security/failed-region
//!   marking, per Li et al. \[7\]), leaving parts of the burst with only
//!   SEC-DED-grade protection. Certain single-chip error patterns are
//!   therefore uncorrectable — the paper's Finding 2.
//! * **Intel Whitley** — per-beat x4 SDDC: every beat carries full RS
//!   symbol correction, so all single-device faults are corrected and UEs
//!   require multi-device coincidence.
//! * **K920** — "K920-SDDC": device-level correction over beat pairs,
//!   likewise correcting all single-device faults.
//!
//! [`PurleyEcc`] realizes the repurposing by protecting even beats with the
//! real RS(18,16)/GF(16) code and odd beats with Hsiao SEC-DED only. This
//! is a *model*, not Intel's circuit — but the envelope it produces matches
//! the published facts: single-device multi-bit patterns that collide in a
//! weakened beat become UEs, while the same patterns are CEs on Whitley and
//! K920.

use crate::gf::GF256;
use crate::rs::RsCode;
use crate::scheme::{DecodeOutcome, EccScheme, SddcBeatPair, SddcPerBeat};
use crate::secded::Hsiao7264;
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, Platform, BURST_BEATS};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The Purley ECC model: full SDDC on even beats, SEC-DED on odd beats
/// (check bits repurposed for metadata, per \[7\]).
#[derive(Debug, Clone)]
pub struct PurleyEcc {
    rs: RsCode<256>,
    secded: Hsiao7264,
}

impl PurleyEcc {
    /// Creates the Purley model.
    pub fn new() -> Self {
        PurleyEcc {
            rs: RsCode::new(&GF256, 18, 16),
            secded: Hsiao7264::new(),
        }
    }

    /// True when this beat retains its full RS check symbols.
    pub fn beat_is_strong(beat: u8) -> bool {
        beat.is_multiple_of(2)
    }
}

impl Default for PurleyEcc {
    fn default() -> Self {
        PurleyEcc::new()
    }
}

impl EccScheme for PurleyEcc {
    fn name(&self) -> &'static str {
        "Purley SDDC (repurposed check bits)"
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        let mut out = DecodeOutcome::Clean;
        for beat in 0..BURST_BEATS {
            let lanes = transfer.beats()[beat as usize];
            let word = if width == DataWidth::X4 && Self::beat_is_strong(beat) {
                let mut symbols = [0u8; 18];
                for (d, sym) in symbols.iter_mut().enumerate() {
                    *sym = ((lanes >> (d * 4)) & 0xF) as u8;
                }
                self.rs.decode_error(&symbols).into()
            } else {
                self.secded.decode_error(lanes).into()
            };
            out = out.combine(word);
        }
        out
    }
}

/// The Whitley ECC model: full per-beat x4 SDDC on every beat.
pub type WhitleyEcc = SddcPerBeat;

/// The K920 ECC model: device-symbol correction over beat pairs
/// ("K920-SDDC").
pub type K920Ecc = SddcBeatPair;

/// ECC scheme of a studied platform, dispatching to the concrete model.
#[derive(Debug, Clone)]
pub enum PlatformEcc {
    /// Intel Purley model.
    Purley(PurleyEcc),
    /// Intel Whitley model.
    Whitley(WhitleyEcc),
    /// K920 model.
    K920(K920Ecc),
}

impl PlatformEcc {
    /// The ECC model shipped by `platform`.
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            Platform::IntelPurley => PlatformEcc::Purley(PurleyEcc::new()),
            Platform::IntelWhitley => PlatformEcc::Whitley(WhitleyEcc::new()),
            Platform::K920 => PlatformEcc::K920(K920Ecc::new()),
        }
    }

    /// Reference to the K920 code used for GF(256) beat-pair decoding —
    /// exposed for benchmarking.
    pub fn inner(&self) -> &dyn EccScheme {
        match self {
            PlatformEcc::Purley(s) => s,
            PlatformEcc::Whitley(s) => s,
            PlatformEcc::K920(s) => s,
        }
    }
}

impl EccScheme for PlatformEcc {
    fn name(&self) -> &'static str {
        self.inner().name()
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        self.inner().decode(transfer, width)
    }
}

/// A memoizing wrapper around [`PlatformEcc`].
///
/// Fault processes replay the same few error patterns (a stuck cell emits
/// one transfer signature on every hit), so full syndrome decoding is
/// mostly redundant work. This wrapper caches `(transfer, width) ->`
/// [`DecodeOutcome`] in a bounded table; decoding is pure, so a hit is
/// exactly the uncached result. When the table fills it is cleared rather
/// than evicted piecemeal — the working set per DIMM is tiny, so a rare
/// full rebuild beats per-lookup bookkeeping.
///
/// Implements [`EccScheme`], so it drops into any `&dyn EccScheme` call
/// site. Interior mutability keeps `decode(&self)`; the decode itself runs
/// outside the lock.
#[derive(Debug)]
pub struct CachedPlatformEcc {
    ecc: PlatformEcc,
    cache: Mutex<HashMap<(ErrorTransfer, DataWidth), DecodeOutcome>>,
    capacity: usize,
    // Telemetry, accumulated locally (plain atomics, no cross-instance
    // contention) and flushed to the global registry on drop.
    hits: AtomicU64,
    misses: AtomicU64,
    outcomes: [AtomicU64; 4],
}

impl CachedPlatformEcc {
    /// Default cache bound — far above any per-DIMM fault working set.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Wraps `ecc` with a memo table of [`Self::DEFAULT_CAPACITY`].
    pub fn new(ecc: PlatformEcc) -> Self {
        Self::with_capacity(ecc, Self::DEFAULT_CAPACITY)
    }

    /// The cached scheme shipped by `platform`.
    pub fn for_platform(platform: Platform) -> Self {
        Self::new(PlatformEcc::for_platform(platform))
    }

    /// Wraps `ecc` with an explicit cache bound (`capacity >= 1`).
    pub fn with_capacity(ecc: PlatformEcc, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        CachedPlatformEcc {
            ecc,
            cache: Mutex::new(HashMap::with_capacity(capacity.min(Self::DEFAULT_CAPACITY))),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            outcomes: [const { AtomicU64::new(0) }; 4],
        }
    }

    /// The wrapped, uncached scheme.
    pub fn uncached(&self) -> &PlatformEcc {
        &self.ecc
    }

    /// Number of memoized outcomes currently held.
    pub fn cached_entries(&self) -> usize {
        self.cache.lock().expect("ecc cache lock").len()
    }
}

impl EccScheme for CachedPlatformEcc {
    fn name(&self) -> &'static str {
        self.ecc.name()
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        let key = (*transfer, width);
        if let Some(&out) = self.cache.lock().expect("ecc cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.outcomes[outcome_slot(out)].fetch_add(1, Ordering::Relaxed);
            return out;
        }
        let out = self.ecc.decode(transfer, width);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.outcomes[outcome_slot(out)].fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock().expect("ecc cache lock");
        if cache.len() >= self.capacity {
            cache.clear();
        }
        cache.insert(key, out);
        out
    }
}

/// A fast multiply-fold hasher for the beat-memo tables.
///
/// Beat-memo keys are one or two `u128` lane words; SipHash (the `HashMap`
/// default) costs more than the RS decode it would save on small patterns.
/// This hasher folds each 64-bit half through a multiply + rotate — not
/// collision-resistant against adversaries, which is fine for a cache whose
/// worst case on collision is a redundant pure decode.
#[derive(Debug, Clone, Default)]
pub struct FoldHasher {
    state: u64,
}

const FOLD_K: u64 = 0x2545_F491_4F6C_DD1D;

impl Hasher for FoldHasher {
    fn finish(&self) -> u64 {
        let mut x = self.state;
        x ^= x >> 32;
        x = x.wrapping_mul(FOLD_K);
        x ^ (x >> 29)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FOLD_K).rotate_left(5);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(FOLD_K).rotate_left(23);
    }

    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
}

type FoldState = BuildHasherDefault<FoldHasher>;

/// A beat-level decode memo shared across every platform scheme.
///
/// [`CachedPlatformEcc`] memoizes whole `(transfer, width)` bursts, one
/// table per platform instance, behind a mutex. The event-driven simulator
/// wants something stronger: all platform decoders are *per-beat*
/// compositional — each beat (or beat pair) decodes independently and the
/// results meet in the order-free [`DecodeOutcome::combine`] monoid, with
/// all-zero beats decoding `Clean` — so memoizing at the code-word level
/// makes every stuck-pattern beat a shared hit regardless of which burst,
/// platform, or DIMM it appears in:
///
/// * `rs_beat` — RS(18,16)/GF(256) per-beat words. Purley's strong (even)
///   beats, Whitley, and ADDDC lockstep all run the *same* nibble→symbol
///   decode, so one table serves all three.
/// * `secded_beat` — Hsiao (72,64) words: Purley's weak (odd) beats and
///   every x8 fallback.
/// * `pair` — K920 beat-pair symbols, keyed on the `(even, odd)` lane pair.
///
/// `decode` takes `&mut self` — the event engine owns one memo per worker,
/// so there is no lock and no shared cacheline. Tables are bounded and
/// cleared when full (same policy as [`CachedPlatformEcc`]); telemetry is
/// accumulated locally and flushed on drop as `ecc_beat_memo_hits` /
/// `ecc_beat_memo_misses`.
#[derive(Debug)]
pub struct BeatMemoEcc {
    rs: RsCode<256>,
    secded: Hsiao7264,
    rs_beat: HashMap<u128, DecodeOutcome, FoldState>,
    secded_beat: HashMap<u128, DecodeOutcome, FoldState>,
    pair: HashMap<(u128, u128), DecodeOutcome, FoldState>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl BeatMemoEcc {
    /// Default per-table bound — sized for a whole shard's fault working
    /// set, not a single DIMM's.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a memo with [`Self::DEFAULT_CAPACITY`] per table.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a memo with an explicit per-table bound (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "memo capacity must be positive");
        BeatMemoEcc {
            rs: RsCode::new(&GF256, 18, 16),
            secded: Hsiao7264::new(),
            rs_beat: HashMap::with_capacity_and_hasher(256, FoldState::default()),
            secded_beat: HashMap::with_capacity_and_hasher(256, FoldState::default()),
            pair: HashMap::with_capacity_and_hasher(256, FoldState::default()),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Total memoized code words across the three tables.
    pub fn cached_entries(&self) -> usize {
        self.rs_beat.len() + self.secded_beat.len() + self.pair.len()
    }

    /// (hits, misses) accumulated so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn rs_word(&mut self, lanes: u128) -> DecodeOutcome {
        if let Some(&out) = self.rs_beat.get(&lanes) {
            self.hits += 1;
            return out;
        }
        let mut symbols = [0u8; 18];
        for (d, sym) in symbols.iter_mut().enumerate() {
            *sym = ((lanes >> (d * 4)) & 0xF) as u8;
        }
        let out: DecodeOutcome = self.rs.decode_error(&symbols).into();
        self.misses += 1;
        if self.rs_beat.len() >= self.capacity {
            self.rs_beat.clear();
        }
        self.rs_beat.insert(lanes, out);
        out
    }

    fn secded_word(&mut self, lanes: u128) -> DecodeOutcome {
        if let Some(&out) = self.secded_beat.get(&lanes) {
            self.hits += 1;
            return out;
        }
        let out: DecodeOutcome = self.secded.decode_error(lanes).into();
        self.misses += 1;
        if self.secded_beat.len() >= self.capacity {
            self.secded_beat.clear();
        }
        self.secded_beat.insert(lanes, out);
        out
    }

    fn pair_word(&mut self, even: u128, odd: u128) -> DecodeOutcome {
        if let Some(&out) = self.pair.get(&(even, odd)) {
            self.hits += 1;
            return out;
        }
        let mut symbols = [0u8; 18];
        for (d, sym) in symbols.iter_mut().enumerate() {
            let lo = ((even >> (d * 4)) & 0xF) as u8;
            let hi = ((odd >> (d * 4)) & 0xF) as u8;
            *sym = lo | (hi << 4);
        }
        let out: DecodeOutcome = self.rs.decode_error(&symbols).into();
        self.misses += 1;
        if self.pair.len() >= self.capacity {
            self.pair.clear();
        }
        self.pair.insert((even, odd), out);
        out
    }

    /// Decodes a burst under `platform`'s scheme; equal to
    /// `PlatformEcc::for_platform(platform).decode(transfer, width)`.
    ///
    /// Zero beats are skipped (they decode `Clean`, the combine identity)
    /// and the scan stops at the first `Ue` (`combine(Ue, _) = Ue`), so the
    /// shortcuts are exact, not approximate.
    pub fn decode(
        &mut self,
        platform: Platform,
        transfer: &ErrorTransfer,
        width: DataWidth,
    ) -> DecodeOutcome {
        let beats = *transfer.beats();
        let mut out = DecodeOutcome::Clean;
        match (width, platform) {
            (DataWidth::X4, Platform::IntelPurley) => {
                for (beat, &lanes) in beats.iter().enumerate() {
                    if lanes == 0 {
                        continue;
                    }
                    let word = if PurleyEcc::beat_is_strong(beat as u8) {
                        self.rs_word(lanes)
                    } else {
                        self.secded_word(lanes)
                    };
                    out = out.combine(word);
                    if out == DecodeOutcome::Ue {
                        break;
                    }
                }
            }
            (DataWidth::X4, Platform::IntelWhitley) => {
                for &lanes in &beats {
                    if lanes == 0 {
                        continue;
                    }
                    out = out.combine(self.rs_word(lanes));
                    if out == DecodeOutcome::Ue {
                        break;
                    }
                }
            }
            (DataWidth::X4, Platform::K920) => {
                for p in 0..(BURST_BEATS as usize / 2) {
                    let (even, odd) = (beats[2 * p], beats[2 * p + 1]);
                    if even == 0 && odd == 0 {
                        continue;
                    }
                    out = out.combine(self.pair_word(even, odd));
                    if out == DecodeOutcome::Ue {
                        break;
                    }
                }
            }
            (DataWidth::X8, _) => {
                for &lanes in &beats {
                    if lanes == 0 {
                        continue;
                    }
                    out = out.combine(self.secded_word(lanes));
                    if out == DecodeOutcome::Ue {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Decodes a burst under the ADDDC lockstep scheme; equal to
    /// `SddcPerBeat::new().decode(transfer, width)`.
    pub fn decode_lockstep(&mut self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        // Lockstep x4 runs the identical RS(18,16) nibble→symbol word as
        // Whitley, so it shares the same memo table.
        match width {
            DataWidth::X4 => self.decode(Platform::IntelWhitley, transfer, width),
            DataWidth::X8 => self.decode(Platform::IntelPurley, transfer, width),
        }
    }
}

impl Default for BeatMemoEcc {
    fn default() -> Self {
        BeatMemoEcc::new()
    }
}

impl Drop for BeatMemoEcc {
    /// Flushes hit/miss telemetry once per instance, like
    /// [`CachedPlatformEcc`].
    fn drop(&mut self) {
        if self.hits > 0 {
            mfp_obs::counter("ecc_beat_memo_hits", &[]).add(self.hits);
        }
        if self.misses > 0 {
            mfp_obs::counter("ecc_beat_memo_misses", &[]).add(self.misses);
        }
    }
}

/// Index of an outcome in the per-instance telemetry array.
fn outcome_slot(out: DecodeOutcome) -> usize {
    match out {
        DecodeOutcome::Clean => 0,
        DecodeOutcome::Corrected => 1,
        DecodeOutcome::Ue => 2,
        DecodeOutcome::Sdc => 3,
    }
}

const OUTCOME_NAMES: [&str; 4] = ["clean", "corrected", "ue", "sdc"];

impl Drop for CachedPlatformEcc {
    /// Flushes the instance's decode telemetry into the global registry as
    /// `ecc_cache_hits{scheme}`, `ecc_cache_misses{scheme}` and
    /// `ecc_decodes{scheme,outcome}`. Flushing once per instance keeps the
    /// decode hot path free of shared-cacheline traffic between workers.
    fn drop(&mut self) {
        let scheme = self.ecc.name();
        let labels: &[(&str, &str)] = &[("scheme", scheme)];
        let hits = *self.hits.get_mut();
        let misses = *self.misses.get_mut();
        if hits > 0 {
            mfp_obs::counter("ecc_cache_hits", labels).add(hits);
        }
        if misses > 0 {
            mfp_obs::counter("ecc_cache_misses", labels).add(misses);
        }
        for (slot, name) in OUTCOME_NAMES.iter().enumerate() {
            let n = *self.outcomes[slot].get_mut();
            if n > 0 {
                mfp_obs::counter("ecc_decodes", &[("scheme", scheme), ("outcome", name)]).add(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Errors confined to one x4 device.
    fn device_bits(dev: u8, bits: &[(u8, u8)]) -> ErrorTransfer {
        ErrorTransfer::from_bits(bits.iter().map(|&(beat, dq)| (beat, dev * 4 + dq)))
    }

    #[test]
    fn purley_corrects_single_bit_anywhere() {
        let ecc = PurleyEcc::new();
        for beat in 0..8 {
            let t = device_bits(5, &[(beat, 2)]);
            assert_eq!(
                ecc.decode(&t, DataWidth::X4),
                DecodeOutcome::Corrected,
                "beat {beat}"
            );
        }
    }

    #[test]
    fn purley_corrects_multibit_in_strong_beat() {
        let ecc = PurleyEcc::new();
        // 3 bits of one device in beat 0 (strong): one RS symbol error.
        let t = device_bits(5, &[(0, 0), (0, 1), (0, 3)]);
        assert_eq!(ecc.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn purley_flags_multibit_in_weak_beat() {
        // The paper's "weaker than Chipkill" envelope: the same single-chip
        // pattern that Whitley corrects is a UE on Purley when it lands in
        // a repurposed (odd) beat.
        let purley = PurleyEcc::new();
        let whitley = WhitleyEcc::new();
        let t = device_bits(5, &[(1, 0), (1, 1)]);
        assert_eq!(purley.decode(&t, DataWidth::X4), DecodeOutcome::Ue);
        assert_eq!(whitley.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn purley_risky_interval4_pattern_escalates() {
        let ecc = PurleyEcc::new();
        // Fig 5 signature: 2 DQs / 2 beats / 4-beat interval on odd beats.
        // One bit per weak beat still corrects...
        let warning = device_bits(5, &[(1, 0), (5, 1)]);
        assert_eq!(ecc.decode(&warning, DataWidth::X4), DecodeOutcome::Corrected);
        // ...until both DQs err within one weak beat.
        let escalated = device_bits(5, &[(1, 0), (1, 1), (5, 1)]);
        assert_eq!(ecc.decode(&escalated, DataWidth::X4), DecodeOutcome::Ue);
    }

    #[test]
    fn whitley_and_k920_correct_whole_device_failure() {
        let mut bits = Vec::new();
        for beat in 0..8 {
            for dq in 0..4 {
                bits.push((beat, dq));
            }
        }
        let t = device_bits(11, &bits);
        assert_eq!(
            WhitleyEcc::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Corrected
        );
        assert_eq!(
            K920Ecc::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Corrected
        );
        // Purley, by contrast, cannot: weak beats see 4-bit errors.
        assert_eq!(
            PurleyEcc::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Ue
        );
    }

    #[test]
    fn multi_device_same_beat_exceeds_all_platforms() {
        let mut t = device_bits(3, &[(0, 0), (0, 1)]);
        t.set(0, 9 * 4);
        t.set(0, 9 * 4 + 2);
        for p in Platform::ALL {
            let ecc = PlatformEcc::for_platform(p);
            let out = ecc.decode(&t, DataWidth::X4);
            assert!(
                matches!(out, DecodeOutcome::Ue | DecodeOutcome::Sdc),
                "{p}: {out:?}"
            );
        }
    }

    #[test]
    fn cached_decode_agrees_with_uncached() {
        // Sweep a grid of patterns — single-bit, device-confined multi-bit,
        // cross-device — through each platform twice, so the second pass is
        // served from the cache, and demand equality throughout.
        let mut patterns = Vec::new();
        for beat in 0..8u8 {
            for dq in [0u8, 3, 21, 70] {
                patterns.push(ErrorTransfer::from_bits([(beat, dq)]));
            }
            patterns.push(device_bits(5, &[(beat, 0), (beat, 1)]));
            patterns.push(device_bits(2, &[(beat, 0), ((beat + 1) % 8, 3)]));
            let mut t = device_bits(3, &[(beat, 0), (beat, 1)]);
            t.set(beat, 9 * 4);
            patterns.push(t);
        }
        for p in Platform::ALL {
            let cached = CachedPlatformEcc::for_platform(p);
            for width in [DataWidth::X4, DataWidth::X8] {
                for _pass in 0..2 {
                    for t in &patterns {
                        assert_eq!(
                            cached.decode(t, width),
                            cached.uncached().decode(t, width),
                            "{p} {width:?} {t:?}"
                        );
                    }
                }
            }
            assert!(cached.cached_entries() > 0, "cache must be populated");
        }
    }

    #[test]
    fn cache_telemetry_flushes_on_drop() {
        // Counters are global and monotone, so concurrent tests can only
        // push the deltas higher — the lower bounds stay valid.
        let snap = mfp_obs::global().snapshot();
        let (hits0, misses0, decodes0) = (
            snap.counter("ecc_cache_hits"),
            snap.counter("ecc_cache_misses"),
            snap.counter("ecc_decodes"),
        );
        let scheme = {
            let ecc = CachedPlatformEcc::for_platform(Platform::IntelWhitley);
            let t = device_bits(3, &[(0, 1)]);
            for _ in 0..3 {
                assert_eq!(ecc.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
            }
            ecc.name()
        };
        let snap = mfp_obs::global().snapshot();
        assert!(snap.counter("ecc_cache_hits") - hits0 >= 2);
        assert!(snap.counter("ecc_cache_misses") - misses0 >= 1);
        assert!(snap.counter("ecc_decodes") - decodes0 >= 3);
        // The flush labels the series by scheme name.
        assert!(snap.counter_labeled("ecc_cache_hits", &[("scheme", scheme)]).unwrap_or(0) >= 2);
    }

    #[test]
    fn cache_clears_at_capacity_and_stays_correct() {
        let cached =
            CachedPlatformEcc::with_capacity(PlatformEcc::for_platform(Platform::IntelWhitley), 4);
        for dq in 0..32u8 {
            let t = ErrorTransfer::from_bits([(0, dq)]);
            assert_eq!(
                cached.decode(&t, DataWidth::X4),
                cached.uncached().decode(&t, DataWidth::X4)
            );
        }
        assert!(cached.cached_entries() <= 4, "bound must hold after churn");
    }

    /// The pattern grid used by the memo-equality tests: single-bit,
    /// device-confined multi-bit, cross-beat, cross-device, and empty.
    fn pattern_grid() -> Vec<ErrorTransfer> {
        let mut patterns = vec![ErrorTransfer::new()];
        for beat in 0..8u8 {
            for dq in [0u8, 3, 21, 70] {
                patterns.push(ErrorTransfer::from_bits([(beat, dq)]));
            }
            patterns.push(device_bits(5, &[(beat, 0), (beat, 1)]));
            patterns.push(device_bits(2, &[(beat, 0), ((beat + 1) % 8, 3)]));
            patterns.push(device_bits(7, &[(beat, 0), (beat, 1), (beat, 2), (beat, 3)]));
            let mut t = device_bits(3, &[(beat, 0), (beat, 1)]);
            t.set(beat, 9 * 4);
            patterns.push(t);
        }
        patterns
    }

    #[test]
    fn beat_memo_agrees_with_platform_decoders() {
        let patterns = pattern_grid();
        let mut memo = BeatMemoEcc::new();
        for p in Platform::ALL {
            let oracle = PlatformEcc::for_platform(p);
            for width in [DataWidth::X4, DataWidth::X8] {
                for _pass in 0..2 {
                    for t in &patterns {
                        assert_eq!(
                            memo.decode(p, t, width),
                            oracle.decode(t, width),
                            "{p} {width:?} {t:?}"
                        );
                    }
                }
            }
        }
        let (hits, misses) = memo.stats();
        assert!(hits > 0 && misses > 0, "second pass must hit the memo");
        assert!(memo.cached_entries() > 0);
    }

    #[test]
    fn beat_memo_lockstep_agrees_with_sddc_per_beat() {
        let patterns = pattern_grid();
        let oracle = SddcPerBeat::new();
        let mut memo = BeatMemoEcc::new();
        for width in [DataWidth::X4, DataWidth::X8] {
            for t in &patterns {
                assert_eq!(
                    memo.decode_lockstep(t, width),
                    oracle.decode(t, width),
                    "lockstep {width:?} {t:?}"
                );
            }
        }
    }

    #[test]
    fn beat_memo_clears_at_capacity_and_stays_correct() {
        let mut memo = BeatMemoEcc::with_capacity(4);
        let oracle = PlatformEcc::for_platform(Platform::IntelWhitley);
        for dq in 0..32u8 {
            let t = ErrorTransfer::from_bits([(0, dq)]);
            assert_eq!(
                memo.decode(Platform::IntelWhitley, &t, DataWidth::X4),
                oracle.decode(&t, DataWidth::X4)
            );
        }
        assert!(memo.rs_beat.len() <= 4, "bound must hold after churn");
    }

    #[test]
    fn beat_memo_telemetry_flushes_on_drop() {
        let snap = mfp_obs::global().snapshot();
        let (hits0, misses0) = (
            snap.counter("ecc_beat_memo_hits"),
            snap.counter("ecc_beat_memo_misses"),
        );
        {
            let mut memo = BeatMemoEcc::new();
            let t = device_bits(3, &[(0, 1)]);
            for _ in 0..3 {
                assert_eq!(
                    memo.decode(Platform::IntelWhitley, &t, DataWidth::X4),
                    DecodeOutcome::Corrected
                );
            }
        }
        let snap = mfp_obs::global().snapshot();
        assert!(snap.counter("ecc_beat_memo_hits") - hits0 >= 2);
        assert!(snap.counter("ecc_beat_memo_misses") - misses0 >= 1);
    }

    #[test]
    fn platform_dispatch_names() {
        assert!(PlatformEcc::for_platform(Platform::IntelPurley)
            .name()
            .contains("Purley"));
        assert!(PlatformEcc::for_platform(Platform::IntelWhitley)
            .name()
            .contains("beat"));
        assert!(PlatformEcc::for_platform(Platform::K920)
            .name()
            .contains("beat-pair"));
    }
}
