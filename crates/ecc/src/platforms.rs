//! Per-platform ECC models.
//!
//! The exact production ECC algorithms are confidential (paper, §II-B); what
//! is public is their *correction envelope*:
//!
//! * **Intel Purley** — SDDC-class but *weaker than Chipkill*: some check
//!   bits are repurposed for metadata (ownership/security/failed-region
//!   marking, per Li et al. \[7\]), leaving parts of the burst with only
//!   SEC-DED-grade protection. Certain single-chip error patterns are
//!   therefore uncorrectable — the paper's Finding 2.
//! * **Intel Whitley** — per-beat x4 SDDC: every beat carries full RS
//!   symbol correction, so all single-device faults are corrected and UEs
//!   require multi-device coincidence.
//! * **K920** — "K920-SDDC": device-level correction over beat pairs,
//!   likewise correcting all single-device faults.
//!
//! [`PurleyEcc`] realizes the repurposing by protecting even beats with the
//! real RS(18,16)/GF(16) code and odd beats with Hsiao SEC-DED only. This
//! is a *model*, not Intel's circuit — but the envelope it produces matches
//! the published facts: single-device multi-bit patterns that collide in a
//! weakened beat become UEs, while the same patterns are CEs on Whitley and
//! K920.

use crate::gf::GF256;
use crate::rs::RsCode;
use crate::scheme::{DecodeOutcome, EccScheme, SddcBeatPair, SddcPerBeat};
use crate::secded::Hsiao7264;
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, Platform, BURST_BEATS};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The Purley ECC model: full SDDC on even beats, SEC-DED on odd beats
/// (check bits repurposed for metadata, per \[7\]).
#[derive(Debug, Clone)]
pub struct PurleyEcc {
    rs: RsCode<256>,
    secded: Hsiao7264,
}

impl PurleyEcc {
    /// Creates the Purley model.
    pub fn new() -> Self {
        PurleyEcc {
            rs: RsCode::new(&GF256, 18, 16),
            secded: Hsiao7264::new(),
        }
    }

    /// True when this beat retains its full RS check symbols.
    pub fn beat_is_strong(beat: u8) -> bool {
        beat.is_multiple_of(2)
    }
}

impl Default for PurleyEcc {
    fn default() -> Self {
        PurleyEcc::new()
    }
}

impl EccScheme for PurleyEcc {
    fn name(&self) -> &'static str {
        "Purley SDDC (repurposed check bits)"
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        let mut out = DecodeOutcome::Clean;
        for beat in 0..BURST_BEATS {
            let lanes = transfer.beats()[beat as usize];
            let word = if width == DataWidth::X4 && Self::beat_is_strong(beat) {
                let mut symbols = [0u8; 18];
                for (d, sym) in symbols.iter_mut().enumerate() {
                    *sym = ((lanes >> (d * 4)) & 0xF) as u8;
                }
                self.rs.decode_error(&symbols).into()
            } else {
                self.secded.decode_error(lanes).into()
            };
            out = out.combine(word);
        }
        out
    }
}

/// The Whitley ECC model: full per-beat x4 SDDC on every beat.
pub type WhitleyEcc = SddcPerBeat;

/// The K920 ECC model: device-symbol correction over beat pairs
/// ("K920-SDDC").
pub type K920Ecc = SddcBeatPair;

/// ECC scheme of a studied platform, dispatching to the concrete model.
#[derive(Debug, Clone)]
pub enum PlatformEcc {
    /// Intel Purley model.
    Purley(PurleyEcc),
    /// Intel Whitley model.
    Whitley(WhitleyEcc),
    /// K920 model.
    K920(K920Ecc),
}

impl PlatformEcc {
    /// The ECC model shipped by `platform`.
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            Platform::IntelPurley => PlatformEcc::Purley(PurleyEcc::new()),
            Platform::IntelWhitley => PlatformEcc::Whitley(WhitleyEcc::new()),
            Platform::K920 => PlatformEcc::K920(K920Ecc::new()),
        }
    }

    /// Reference to the K920 code used for GF(256) beat-pair decoding —
    /// exposed for benchmarking.
    pub fn inner(&self) -> &dyn EccScheme {
        match self {
            PlatformEcc::Purley(s) => s,
            PlatformEcc::Whitley(s) => s,
            PlatformEcc::K920(s) => s,
        }
    }
}

impl EccScheme for PlatformEcc {
    fn name(&self) -> &'static str {
        self.inner().name()
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        self.inner().decode(transfer, width)
    }
}

/// A memoizing wrapper around [`PlatformEcc`].
///
/// Fault processes replay the same few error patterns (a stuck cell emits
/// one transfer signature on every hit), so full syndrome decoding is
/// mostly redundant work. This wrapper caches `(transfer, width) ->`
/// [`DecodeOutcome`] in a bounded table; decoding is pure, so a hit is
/// exactly the uncached result. When the table fills it is cleared rather
/// than evicted piecemeal — the working set per DIMM is tiny, so a rare
/// full rebuild beats per-lookup bookkeeping.
///
/// Implements [`EccScheme`], so it drops into any `&dyn EccScheme` call
/// site. Interior mutability keeps `decode(&self)`; the decode itself runs
/// outside the lock.
#[derive(Debug)]
pub struct CachedPlatformEcc {
    ecc: PlatformEcc,
    cache: Mutex<HashMap<(ErrorTransfer, DataWidth), DecodeOutcome>>,
    capacity: usize,
    // Telemetry, accumulated locally (plain atomics, no cross-instance
    // contention) and flushed to the global registry on drop.
    hits: AtomicU64,
    misses: AtomicU64,
    outcomes: [AtomicU64; 4],
}

impl CachedPlatformEcc {
    /// Default cache bound — far above any per-DIMM fault working set.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Wraps `ecc` with a memo table of [`Self::DEFAULT_CAPACITY`].
    pub fn new(ecc: PlatformEcc) -> Self {
        Self::with_capacity(ecc, Self::DEFAULT_CAPACITY)
    }

    /// The cached scheme shipped by `platform`.
    pub fn for_platform(platform: Platform) -> Self {
        Self::new(PlatformEcc::for_platform(platform))
    }

    /// Wraps `ecc` with an explicit cache bound (`capacity >= 1`).
    pub fn with_capacity(ecc: PlatformEcc, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        CachedPlatformEcc {
            ecc,
            cache: Mutex::new(HashMap::with_capacity(capacity.min(Self::DEFAULT_CAPACITY))),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            outcomes: [const { AtomicU64::new(0) }; 4],
        }
    }

    /// The wrapped, uncached scheme.
    pub fn uncached(&self) -> &PlatformEcc {
        &self.ecc
    }

    /// Number of memoized outcomes currently held.
    pub fn cached_entries(&self) -> usize {
        self.cache.lock().expect("ecc cache lock").len()
    }
}

impl EccScheme for CachedPlatformEcc {
    fn name(&self) -> &'static str {
        self.ecc.name()
    }

    fn decode(&self, transfer: &ErrorTransfer, width: DataWidth) -> DecodeOutcome {
        let key = (*transfer, width);
        if let Some(&out) = self.cache.lock().expect("ecc cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.outcomes[outcome_slot(out)].fetch_add(1, Ordering::Relaxed);
            return out;
        }
        let out = self.ecc.decode(transfer, width);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.outcomes[outcome_slot(out)].fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock().expect("ecc cache lock");
        if cache.len() >= self.capacity {
            cache.clear();
        }
        cache.insert(key, out);
        out
    }
}

/// Index of an outcome in the per-instance telemetry array.
fn outcome_slot(out: DecodeOutcome) -> usize {
    match out {
        DecodeOutcome::Clean => 0,
        DecodeOutcome::Corrected => 1,
        DecodeOutcome::Ue => 2,
        DecodeOutcome::Sdc => 3,
    }
}

const OUTCOME_NAMES: [&str; 4] = ["clean", "corrected", "ue", "sdc"];

impl Drop for CachedPlatformEcc {
    /// Flushes the instance's decode telemetry into the global registry as
    /// `ecc_cache_hits{scheme}`, `ecc_cache_misses{scheme}` and
    /// `ecc_decodes{scheme,outcome}`. Flushing once per instance keeps the
    /// decode hot path free of shared-cacheline traffic between workers.
    fn drop(&mut self) {
        let scheme = self.ecc.name();
        let labels: &[(&str, &str)] = &[("scheme", scheme)];
        let hits = *self.hits.get_mut();
        let misses = *self.misses.get_mut();
        if hits > 0 {
            mfp_obs::counter("ecc_cache_hits", labels).add(hits);
        }
        if misses > 0 {
            mfp_obs::counter("ecc_cache_misses", labels).add(misses);
        }
        for (slot, name) in OUTCOME_NAMES.iter().enumerate() {
            let n = *self.outcomes[slot].get_mut();
            if n > 0 {
                mfp_obs::counter("ecc_decodes", &[("scheme", scheme), ("outcome", name)]).add(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Errors confined to one x4 device.
    fn device_bits(dev: u8, bits: &[(u8, u8)]) -> ErrorTransfer {
        ErrorTransfer::from_bits(bits.iter().map(|&(beat, dq)| (beat, dev * 4 + dq)))
    }

    #[test]
    fn purley_corrects_single_bit_anywhere() {
        let ecc = PurleyEcc::new();
        for beat in 0..8 {
            let t = device_bits(5, &[(beat, 2)]);
            assert_eq!(
                ecc.decode(&t, DataWidth::X4),
                DecodeOutcome::Corrected,
                "beat {beat}"
            );
        }
    }

    #[test]
    fn purley_corrects_multibit_in_strong_beat() {
        let ecc = PurleyEcc::new();
        // 3 bits of one device in beat 0 (strong): one RS symbol error.
        let t = device_bits(5, &[(0, 0), (0, 1), (0, 3)]);
        assert_eq!(ecc.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn purley_flags_multibit_in_weak_beat() {
        // The paper's "weaker than Chipkill" envelope: the same single-chip
        // pattern that Whitley corrects is a UE on Purley when it lands in
        // a repurposed (odd) beat.
        let purley = PurleyEcc::new();
        let whitley = WhitleyEcc::new();
        let t = device_bits(5, &[(1, 0), (1, 1)]);
        assert_eq!(purley.decode(&t, DataWidth::X4), DecodeOutcome::Ue);
        assert_eq!(whitley.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
    }

    #[test]
    fn purley_risky_interval4_pattern_escalates() {
        let ecc = PurleyEcc::new();
        // Fig 5 signature: 2 DQs / 2 beats / 4-beat interval on odd beats.
        // One bit per weak beat still corrects...
        let warning = device_bits(5, &[(1, 0), (5, 1)]);
        assert_eq!(ecc.decode(&warning, DataWidth::X4), DecodeOutcome::Corrected);
        // ...until both DQs err within one weak beat.
        let escalated = device_bits(5, &[(1, 0), (1, 1), (5, 1)]);
        assert_eq!(ecc.decode(&escalated, DataWidth::X4), DecodeOutcome::Ue);
    }

    #[test]
    fn whitley_and_k920_correct_whole_device_failure() {
        let mut bits = Vec::new();
        for beat in 0..8 {
            for dq in 0..4 {
                bits.push((beat, dq));
            }
        }
        let t = device_bits(11, &bits);
        assert_eq!(
            WhitleyEcc::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Corrected
        );
        assert_eq!(
            K920Ecc::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Corrected
        );
        // Purley, by contrast, cannot: weak beats see 4-bit errors.
        assert_eq!(
            PurleyEcc::new().decode(&t, DataWidth::X4),
            DecodeOutcome::Ue
        );
    }

    #[test]
    fn multi_device_same_beat_exceeds_all_platforms() {
        let mut t = device_bits(3, &[(0, 0), (0, 1)]);
        t.set(0, 9 * 4);
        t.set(0, 9 * 4 + 2);
        for p in Platform::ALL {
            let ecc = PlatformEcc::for_platform(p);
            let out = ecc.decode(&t, DataWidth::X4);
            assert!(
                matches!(out, DecodeOutcome::Ue | DecodeOutcome::Sdc),
                "{p}: {out:?}"
            );
        }
    }

    #[test]
    fn cached_decode_agrees_with_uncached() {
        // Sweep a grid of patterns — single-bit, device-confined multi-bit,
        // cross-device — through each platform twice, so the second pass is
        // served from the cache, and demand equality throughout.
        let mut patterns = Vec::new();
        for beat in 0..8u8 {
            for dq in [0u8, 3, 21, 70] {
                patterns.push(ErrorTransfer::from_bits([(beat, dq)]));
            }
            patterns.push(device_bits(5, &[(beat, 0), (beat, 1)]));
            patterns.push(device_bits(2, &[(beat, 0), ((beat + 1) % 8, 3)]));
            let mut t = device_bits(3, &[(beat, 0), (beat, 1)]);
            t.set(beat, 9 * 4);
            patterns.push(t);
        }
        for p in Platform::ALL {
            let cached = CachedPlatformEcc::for_platform(p);
            for width in [DataWidth::X4, DataWidth::X8] {
                for _pass in 0..2 {
                    for t in &patterns {
                        assert_eq!(
                            cached.decode(t, width),
                            cached.uncached().decode(t, width),
                            "{p} {width:?} {t:?}"
                        );
                    }
                }
            }
            assert!(cached.cached_entries() > 0, "cache must be populated");
        }
    }

    #[test]
    fn cache_telemetry_flushes_on_drop() {
        // Counters are global and monotone, so concurrent tests can only
        // push the deltas higher — the lower bounds stay valid.
        let snap = mfp_obs::global().snapshot();
        let (hits0, misses0, decodes0) = (
            snap.counter("ecc_cache_hits"),
            snap.counter("ecc_cache_misses"),
            snap.counter("ecc_decodes"),
        );
        let scheme = {
            let ecc = CachedPlatformEcc::for_platform(Platform::IntelWhitley);
            let t = device_bits(3, &[(0, 1)]);
            for _ in 0..3 {
                assert_eq!(ecc.decode(&t, DataWidth::X4), DecodeOutcome::Corrected);
            }
            ecc.name()
        };
        let snap = mfp_obs::global().snapshot();
        assert!(snap.counter("ecc_cache_hits") - hits0 >= 2);
        assert!(snap.counter("ecc_cache_misses") - misses0 >= 1);
        assert!(snap.counter("ecc_decodes") - decodes0 >= 3);
        // The flush labels the series by scheme name.
        assert!(snap.counter_labeled("ecc_cache_hits", &[("scheme", scheme)]).unwrap_or(0) >= 2);
    }

    #[test]
    fn cache_clears_at_capacity_and_stays_correct() {
        let cached =
            CachedPlatformEcc::with_capacity(PlatformEcc::for_platform(Platform::IntelWhitley), 4);
        for dq in 0..32u8 {
            let t = ErrorTransfer::from_bits([(0, dq)]);
            assert_eq!(
                cached.decode(&t, DataWidth::X4),
                cached.uncached().decode(&t, DataWidth::X4)
            );
        }
        assert!(cached.cached_entries() <= 4, "bound must hold after churn");
    }

    #[test]
    fn platform_dispatch_names() {
        assert!(PlatformEcc::for_platform(Platform::IntelPurley)
            .name()
            .contains("Purley"));
        assert!(PlatformEcc::for_platform(Platform::IntelWhitley)
            .name()
            .contains("beat"));
        assert!(PlatformEcc::for_platform(Platform::K920)
            .name()
            .contains("beat-pair"));
    }
}
