//! Reed–Solomon codes over GF(2^m) — the substrate of Chipkill / SDDC.
//!
//! An RS(n, k) code over GF(q) corrects up to `t = (n-k)/2` symbol errors
//! and is MDS (distance `n-k+1`). Chipkill-class memory ECC maps each DRAM
//! device to one code symbol so that a whole-device failure is a single
//! symbol error.
//!
//! The decoder is the standard pipeline — syndromes, Berlekamp–Massey,
//! Chien search, Forney — operating directly on *error patterns* (the code
//! is linear, so the decoder's behaviour is fully determined by the error
//! vector). [`RsCode::decode_error`] then compares the decoder's candidate
//! correction against the injected truth to classify the outcome, including
//! miscorrections: exactly what the fault simulator needs to decide whether
//! an access produces a CE, a UE, or silent corruption.

use crate::gf::GfTables;
use serde::{Deserialize, Serialize};

/// Outcome of decoding an injected symbol-error pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RsOutcome {
    /// No erroneous symbols.
    Clean,
    /// All erroneous symbols located and repaired.
    Corrected,
    /// Error detected but beyond correction capability: raises a UE.
    Detected,
    /// Decoder produced a *wrong* correction: silent data corruption.
    Miscorrected,
    /// The error vector is itself a code word: invisible to the decoder.
    Undetected,
}

impl RsOutcome {
    /// True when the memory controller would signal an uncorrectable error.
    pub fn is_ue(self) -> bool {
        matches!(self, RsOutcome::Detected)
    }

    /// True when data is silently wrong after decoding.
    pub fn is_sdc(self) -> bool {
        matches!(self, RsOutcome::Miscorrected | RsOutcome::Undetected)
    }
}

/// A Reed–Solomon code RS(n, k) over GF(Q) with first consecutive root
/// alpha^1.
///
/// # Examples
///
/// ```
/// use mfp_ecc::gf::GF256;
/// use mfp_ecc::rs::{RsCode, RsOutcome};
///
/// // The per-beat x4 SDDC code: 18 devices, 16 data + 2 check symbols
/// // (device nibbles zero-extended into GF(256) symbols).
/// let code = RsCode::new(&GF256, 18, 16);
/// assert_eq!(code.t(), 1);
///
/// let mut error = vec![0u8; 18];
/// error[7] = 0x5; // one device (symbol) in error
/// assert_eq!(code.decode_error(&error), RsOutcome::Corrected);
/// ```
#[derive(Debug, Clone)]
pub struct RsCode<const Q: usize> {
    gf: &'static GfTables<Q>,
    n: usize,
    k: usize,
}

impl<const Q: usize> RsCode<Q> {
    /// Creates an RS(n, k) code.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n <= Q - 1`.
    pub fn new(gf: &'static GfTables<Q>, n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "require 0 < k < n");
        assert!(n < Q, "block length exceeds field size");
        RsCode { gf, n, k }
    }

    /// Block length (symbols per code word).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data symbols per code word.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of check symbols.
    pub fn nroots(&self) -> usize {
        self.n - self.k
    }

    /// Guaranteed symbol-correction capability `t = (n-k)/2`.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Syndromes `S_j = E(alpha^(j+1))` of an error vector, `j = 0..n-k`.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != n`.
    pub fn syndromes(&self, error: &[u8]) -> Vec<u8> {
        assert_eq!(error.len(), self.n, "error vector length mismatch");
        let nroots = self.nroots();
        let mut syn = vec![0u8; nroots];
        for (j, s) in syn.iter_mut().enumerate() {
            let mut acc = 0u8;
            for (i, &e) in error.iter().enumerate() {
                if e != 0 {
                    acc ^= self.gf.mul(e, self.gf.alpha_pow(i * (j + 1)));
                }
            }
            *s = acc;
        }
        syn
    }

    /// Runs the full decoder against an injected error pattern and
    /// classifies the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != n`.
    pub fn decode_error(&self, error: &[u8]) -> RsOutcome {
        let weight = error.iter().filter(|&&e| e != 0).count();
        let syn = self.syndromes(error);
        let all_zero = syn.iter().all(|&s| s == 0);
        if all_zero {
            return if weight == 0 {
                RsOutcome::Clean
            } else {
                RsOutcome::Undetected
            };
        }
        match self.try_correct(&syn) {
            Some(candidate) => {
                // The decoder believes `candidate` is the error. It is right
                // exactly when it matches the injected truth.
                let matches = candidate.len() == weight
                    && candidate
                        .iter()
                        .all(|&(pos, mag)| pos < self.n && error[pos] == mag);
                if matches {
                    RsOutcome::Corrected
                } else {
                    RsOutcome::Miscorrected
                }
            }
            None => RsOutcome::Detected,
        }
    }

    /// Attempts to locate and evaluate up to `t` symbol errors from
    /// syndromes. Returns `(position, magnitude)` pairs, or `None` when the
    /// syndromes are inconsistent with any <=t-symbol error (detected).
    fn try_correct(&self, syn: &[u8]) -> Option<Vec<(usize, u8)>> {
        let nroots = self.nroots();
        let t = self.t();
        if t == 0 {
            // Pure detection code (n-k == 1).
            return None;
        }

        // Berlekamp–Massey: find the error-locator polynomial Lambda.
        let mut lambda = vec![0u8; nroots + 1];
        let mut b = vec![0u8; nroots + 1];
        lambda[0] = 1;
        b[0] = 1;
        let mut l = 0usize; // current register length
        let mut m = 1usize;
        let mut bb = 1u8; // last non-zero discrepancy

        for n_iter in 0..nroots {
            let mut delta = syn[n_iter];
            for i in 1..=l {
                delta ^= self.gf.mul(lambda[i], syn[n_iter - i]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= n_iter {
                let t_poly = lambda.clone();
                let coef = self.gf.div(delta, bb);
                for i in 0..=nroots {
                    if i >= m && b[i - m] != 0 {
                        lambda[i] ^= self.gf.mul(coef, b[i - m]);
                    }
                }
                b = t_poly;
                l = n_iter + 1 - l;
                bb = delta;
                m = 1;
            } else {
                let coef = self.gf.div(delta, bb);
                for i in 0..=nroots {
                    if i >= m && b[i - m] != 0 {
                        lambda[i] ^= self.gf.mul(coef, b[i - m]);
                    }
                }
                m += 1;
            }
        }

        let deg = lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
        if deg == 0 || deg > t || deg != l {
            return None;
        }

        // Chien search: positions i where Lambda(alpha^{-i}) == 0.
        let mut positions = Vec::with_capacity(deg);
        for i in 0..self.n {
            let x_inv = self.gf.alpha_pow((Q - 1 - i % (Q - 1)) % (Q - 1));
            if self.poly_eval(&lambda[..=deg], x_inv) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != deg {
            return None;
        }

        // Forney: Omega(x) = S(x) * Lambda(x) mod x^nroots.
        let mut omega = vec![0u8; nroots];
        for (i, om) in omega.iter_mut().enumerate() {
            let mut acc = 0u8;
            for j in 0..=i.min(deg) {
                if lambda[j] != 0 && i - j < nroots {
                    acc ^= self.gf.mul(lambda[j], syn[i - j]);
                }
            }
            *om = acc;
        }
        // Lambda'(x): formal derivative (odd-degree terms shift down).
        let mut dlambda = vec![0u8; deg.max(1)];
        for (i, dl) in dlambda.iter_mut().enumerate() {
            if i % 2 == 0 && i < deg {
                *dl = lambda[i + 1];
            }
        }

        let mut out = Vec::with_capacity(deg);
        for &pos in &positions {
            let x_inv = self.gf.alpha_pow((Q - 1 - pos % (Q - 1)) % (Q - 1));
            let num = self.poly_eval(&omega, x_inv);
            let den = self.poly_eval(&dlambda, x_inv);
            if den == 0 {
                return None;
            }
            // fcr = 1: magnitude = X * Omega(X^-1) / Lambda'(X^-1) with
            // X = alpha^pos ... for fcr=1 the X^{1-fcr} factor is X^0 = 1
            // after absorbing the convention S_j = E(alpha^{j+1}).
            let mag = self.gf.div(num, den);
            if mag == 0 {
                return None;
            }
            out.push((pos, mag));
        }
        Some(out)
    }

    fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &c in poly.iter().rev() {
            acc = self.gf.mul(acc, x) ^ c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf::{GF16, GF256};

    fn ssc18() -> RsCode<256> {
        RsCode::new(&GF256, 18, 16) // t = 1
    }

    fn dec256() -> RsCode<256> {
        RsCode::new(&GF256, 18, 14) // t = 2
    }

    #[test]
    fn clean_vector_is_clean() {
        assert_eq!(ssc18().decode_error(&[0; 18]), RsOutcome::Clean);
    }

    #[test]
    fn all_single_symbol_errors_corrected() {
        let code = ssc18();
        for pos in 0..18 {
            for mag in 1..16u8 {
                let mut e = [0u8; 18];
                e[pos] = mag;
                assert_eq!(
                    code.decode_error(&e),
                    RsOutcome::Corrected,
                    "pos={pos} mag={mag}"
                );
            }
        }
    }

    #[test]
    fn double_symbol_errors_never_corrupt_silently_without_notice() {
        // With t=1, double-symbol errors are either detected or miscorrected
        // (d=3 cannot guarantee detection) — but never "Corrected".
        let code = ssc18();
        let mut detected = 0;
        let mut miscorrected = 0;
        for p1 in 0..18 {
            for p2 in (p1 + 1)..18 {
                for m1 in [1u8, 7, 15] {
                    for m2 in [3u8, 9] {
                        let mut e = [0u8; 18];
                        e[p1] = m1;
                        e[p2] = m2;
                        match code.decode_error(&e) {
                            RsOutcome::Detected => detected += 1,
                            RsOutcome::Miscorrected => miscorrected += 1,
                            other => panic!("{p1},{p2}: unexpected {other:?}"),
                        }
                    }
                }
            }
        }
        assert!(detected > 0, "some doubles must be detected");
        assert!(miscorrected > 0, "d=3 implies some doubles miscorrect");
    }

    #[test]
    fn t2_code_corrects_doubles_gf256() {
        let code = dec256();
        assert_eq!(code.t(), 2);
        for (p1, p2) in [(0usize, 1usize), (3, 11), (16, 17), (5, 9)] {
            for (m1, m2) in [(1u8, 255u8), (170, 85), (7, 7)] {
                let mut e = [0u8; 18];
                e[p1] = m1;
                e[p2] = m2;
                assert_eq!(
                    code.decode_error(&e),
                    RsOutcome::Corrected,
                    "pos {p1},{p2} mags {m1},{m2}"
                );
            }
        }
    }

    #[test]
    fn t2_code_flags_triples() {
        let code = dec256();
        let mut silent_ok = 0;
        let mut flagged = 0;
        for (a, b, c) in [(0usize, 5usize, 9usize), (1, 2, 3), (10, 13, 17)] {
            let mut e = [0u8; 18];
            e[a] = 0x11;
            e[b] = 0x22;
            e[c] = 0x33;
            match code.decode_error(&e) {
                RsOutcome::Detected => flagged += 1,
                RsOutcome::Miscorrected | RsOutcome::Undetected => silent_ok += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(flagged + silent_ok == 3 && flagged > 0);
    }

    #[test]
    fn syndromes_of_clean_are_zero() {
        assert!(ssc18().syndromes(&[0; 18]).iter().all(|&s| s == 0));
    }

    #[test]
    fn detection_only_code_detects() {
        // n - k = 1: a parity-style RS code, t = 0.
        let code = RsCode::<256>::new(&GF256, 18, 17);
        let mut e = [0u8; 18];
        e[4] = 9;
        assert_eq!(code.decode_error(&e), RsOutcome::Detected);
    }

    #[test]
    #[should_panic(expected = "0 < k < n")]
    fn rejects_bad_dims() {
        let _ = RsCode::<16>::new(&GF16, 5, 5);
    }

    #[test]
    #[should_panic(expected = "block length exceeds")]
    fn rejects_block_too_long_for_field() {
        let _ = RsCode::<16>::new(&GF16, 18, 16);
    }

    #[test]
    fn gf16_code_within_limits_corrects_singles() {
        let code = RsCode::<16>::new(&GF16, 15, 13);
        for pos in 0..15 {
            let mut e = [0u8; 15];
            e[pos] = 0xA;
            assert_eq!(code.decode_error(&e), RsOutcome::Corrected, "pos={pos}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_vector_len() {
        let _ = ssc18().syndromes(&[0u8; 5]);
    }
}
