//! Hsiao (72,64) SEC-DED code.
//!
//! The classic single-error-correct / double-error-detect code used for a
//! 72-bit memory word (64 data + 8 check bits), built from odd-weight
//! columns as in Hsiao (1970) \[4\]. All 56 weight-3 columns plus 8 weight-5
//! columns cover the 64 data bits; check bits use the 8 weight-1 columns.
//!
//! Because the code is linear, the decoder's behaviour depends only on the
//! *error pattern*, so [`Hsiao7264::decode_error`] classifies a raw 72-bit
//! error mask directly: this is what the platform ECC models feed it.

use serde::{Deserialize, Serialize};

/// Number of bits in the code word.
pub const WORD_BITS: usize = 72;
/// Number of check bits.
pub const CHECK_BITS: usize = 8;
/// Number of data bits.
pub const DATA_BITS: usize = 64;

/// Per-word decode result for an injected error pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WordOutcome {
    /// No erroneous bits.
    Clean,
    /// A single-bit error, corrected; the payload is the bit position.
    Corrected(u8),
    /// The error was detected but is uncorrectable (raises a UE).
    Detected,
    /// The decoder "corrected" the wrong bit: silent data corruption.
    Miscorrected,
    /// The error is a code word: entirely invisible to the decoder.
    Undetected,
}

impl WordOutcome {
    /// True when the memory controller would signal an uncorrectable error.
    pub fn is_ue(self) -> bool {
        matches!(self, WordOutcome::Detected)
    }

    /// True when data is silently wrong after decoding.
    pub fn is_sdc(self) -> bool {
        matches!(self, WordOutcome::Miscorrected | WordOutcome::Undetected)
    }
}

/// The Hsiao (72,64) SEC-DED code.
///
/// # Examples
///
/// ```
/// use mfp_ecc::secded::{Hsiao7264, WordOutcome};
///
/// let code = Hsiao7264::new();
/// // single-bit errors are always corrected
/// assert_eq!(code.decode_error(1u128 << 17), WordOutcome::Corrected(17));
/// // double-bit errors are always detected
/// assert_eq!(code.decode_error(0b11u128), WordOutcome::Detected);
/// ```
#[derive(Debug, Clone)]
pub struct Hsiao7264 {
    /// `columns[i]` is the 8-bit parity-check column for code bit `i`.
    columns: [u8; WORD_BITS],
    /// Reverse map from syndrome to bit position (0xFF = not a column).
    position_of: [u8; 256],
}

impl Default for Hsiao7264 {
    fn default() -> Self {
        Hsiao7264::new()
    }
}

impl Hsiao7264 {
    /// Constructs the code's parity-check matrix.
    pub fn new() -> Self {
        let mut columns = [0u8; WORD_BITS];
        let mut idx = 0;
        // Data bits: all 56 weight-3 columns...
        for c in 0u16..=255 {
            if (c as u8).count_ones() == 3 {
                columns[idx] = c as u8;
                idx += 1;
            }
        }
        // ...plus the first 8 weight-5 columns.
        for c in 0u16..=255 {
            if idx == DATA_BITS {
                break;
            }
            if (c as u8).count_ones() == 5 {
                columns[idx] = c as u8;
                idx += 1;
            }
        }
        debug_assert_eq!(idx, DATA_BITS);
        // Check bits: weight-1 columns (identity block).
        for i in 0..CHECK_BITS {
            columns[DATA_BITS + i] = 1 << i;
        }
        let mut position_of = [0xFFu8; 256];
        for (i, &c) in columns.iter().enumerate() {
            position_of[c as usize] = i as u8;
        }
        Hsiao7264 {
            columns,
            position_of,
        }
    }

    /// Computes the 8 check bits for a 64-bit data word.
    pub fn encode(&self, data: u64) -> u8 {
        let mut check = 0u8;
        for (i, &col) in self.columns[..DATA_BITS].iter().enumerate() {
            if (data >> i) & 1 == 1 {
                check ^= col;
            }
        }
        check
    }

    /// Syndrome of a 72-bit error pattern (bit `i` of `error` = code bit `i`
    /// flipped).
    pub fn syndrome(&self, error: u128) -> u8 {
        let mut s = 0u8;
        let mut e = error & ((1u128 << WORD_BITS) - 1);
        while e != 0 {
            let i = e.trailing_zeros() as usize;
            s ^= self.columns[i];
            e &= e - 1;
        }
        s
    }

    /// Classifies how the decoder reacts to an injected error pattern.
    pub fn decode_error(&self, error: u128) -> WordOutcome {
        let error = error & ((1u128 << WORD_BITS) - 1);
        if error == 0 {
            return WordOutcome::Clean;
        }
        let s = self.syndrome(error);
        if s == 0 {
            return WordOutcome::Undetected;
        }
        // Odd-weight syndrome that matches a column: the decoder flips that
        // bit. Correct only when the true error was exactly that bit.
        if s.count_ones() % 2 == 1 {
            let pos = self.position_of[s as usize];
            if pos != 0xFF {
                return if error == 1u128 << pos {
                    WordOutcome::Corrected(pos)
                } else {
                    WordOutcome::Miscorrected
                };
            }
            // Odd syndrome, no matching column: >=3 errors, detected.
            return WordOutcome::Detected;
        }
        // Even non-zero syndrome: double-error (or even-count) detection.
        WordOutcome::Detected
    }

    /// The parity-check column of code bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 72`.
    pub fn column(&self, i: usize) -> u8 {
        self.columns[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_odd_weight_and_distinct() {
        let c = Hsiao7264::new();
        let mut seen = [false; 256];
        for i in 0..WORD_BITS {
            let col = c.column(i);
            assert_eq!(col.count_ones() % 2, 1, "column {i} must be odd weight");
            assert!(!seen[col as usize], "column {i} duplicates another");
            seen[col as usize] = true;
        }
    }

    #[test]
    fn all_single_errors_corrected() {
        let c = Hsiao7264::new();
        for i in 0..WORD_BITS as u8 {
            assert_eq!(c.decode_error(1u128 << i), WordOutcome::Corrected(i));
        }
    }

    #[test]
    fn all_double_errors_detected() {
        // The defining property of SEC-DED: no double error is ever
        // miscorrected or missed. Exhaustive over all 72*71/2 pairs.
        let c = Hsiao7264::new();
        for i in 0..WORD_BITS {
            for j in (i + 1)..WORD_BITS {
                let e = (1u128 << i) | (1u128 << j);
                assert_eq!(c.decode_error(e), WordOutcome::Detected, "bits {i},{j}");
            }
        }
    }

    #[test]
    fn triple_errors_never_silently_clean() {
        // Triples have odd syndromes: either detected or miscorrected,
        // never undetected. Spot-check a spread of triples.
        let c = Hsiao7264::new();
        for i in (0..WORD_BITS).step_by(5) {
            for j in (i + 1..WORD_BITS).step_by(7) {
                for k in (j + 1..WORD_BITS).step_by(11) {
                    let e = (1u128 << i) | (1u128 << j) | (1u128 << k);
                    let out = c.decode_error(e);
                    assert!(
                        matches!(out, WordOutcome::Detected | WordOutcome::Miscorrected),
                        "bits {i},{j},{k} gave {out:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn encode_syndrome_consistency() {
        // Flipping data bit i then re-encoding changes the check bits by
        // exactly column i.
        let c = Hsiao7264::new();
        let data = 0xDEAD_BEEF_CAFE_F00Du64;
        let base = c.encode(data);
        for i in 0..DATA_BITS {
            let flipped = data ^ (1u64 << i);
            assert_eq!(c.encode(flipped) ^ base, c.column(i), "bit {i}");
        }
    }

    #[test]
    fn clean_word_is_clean() {
        assert_eq!(Hsiao7264::new().decode_error(0), WordOutcome::Clean);
    }

    #[test]
    fn outcome_predicates() {
        assert!(WordOutcome::Detected.is_ue());
        assert!(!WordOutcome::Corrected(3).is_ue());
        assert!(WordOutcome::Miscorrected.is_sdc());
        assert!(WordOutcome::Undetected.is_sdc());
        assert!(!WordOutcome::Clean.is_sdc());
    }
}
