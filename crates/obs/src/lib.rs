//! # mfp-obs
//!
//! Zero-dependency telemetry for the memory-failure-prediction stack: the
//! instrumentation underneath the paper's §VII monitoring layer
//! (prediction volume, alarm rates, serving latency, drift checks).
//!
//! * [`metrics`] — the instrument types: [`Counter`], [`Gauge`],
//!   fixed-bucket [`Histogram`] and the scoped [`SpanTimer`].
//! * [`registry`] — the process-wide [`Registry`] handing out labeled
//!   metric handles, plus the global instance every crate records into.
//! * [`snapshot`] — the point-in-time [`Snapshot`] with hand-rolled JSON
//!   export and a plain-text rendering.
//!
//! ## Determinism invariant
//!
//! Telemetry is **write-only from the measured code's point of view**:
//! nothing in the simulation, feature, ML or MLOps layers ever reads a
//! metric back to make a decision, so instrumented runs produce
//! bit-identical results to uninstrumented ones (enforced by tests in
//! `mfp-features` and `tests/prop_features.rs`). Snapshots are consumed
//! only at the edges — binaries, dashboards, logs.
//!
//! ## Overhead budget
//!
//! Recording through a pre-resolved handle is one relaxed atomic load (the
//! global enable flag) plus one relaxed atomic add; hot loops amortize
//! further by accumulating locally and flushing per chunk. The
//! `sample_assembly` Criterion group measures assembly with telemetry
//! enabled and disabled; the budget is ≤2% overhead.
//!
//! ```
//! let assembled = mfp_obs::counter("samples_assembled", &[("platform", "purley")]);
//! assembled.add(128);
//! let snap = mfp_obs::global().snapshot();
//! assert_eq!(snap.counter("samples_assembled"), 128);
//! assert!(snap.to_json().contains("samples_assembled"));
//! # mfp_obs::global().reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, SpanTimer};
pub use registry::{global, Registry};
pub use snapshot::{series_name, CounterSample, GaugeSample, HistogramSample, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide enable flag; instruments are no-ops while it is off.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide (snapshots still read whatever
/// was recorded). Used by benchmarks to measure instrumentation overhead
/// and by tests to prove the determinism invariant.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A counter handle from the global registry (labels optional).
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter(name, labels)
}

/// A gauge handle from the global registry.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(name, labels)
}

/// A histogram handle from the global registry with explicit bucket
/// upper bounds (ascending; an implicit `+inf` bucket is appended).
pub fn histogram(name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
    global().histogram(name, labels, bounds)
}

/// A histogram handle with the default latency buckets (seconds, 1 µs to
/// 10 s, four per decade) — for [`SpanTimer`] measurements.
pub fn latency(name: &str, labels: &[(&str, &str)]) -> Histogram {
    global().histogram(name, labels, &metrics::default_latency_buckets())
}

/// A histogram handle with the default size buckets (bytes, powers of two
/// from 64 B to 64 MiB) — for I/O payload measurements such as WAL record
/// and lake partition-append sizes.
pub fn sizes(name: &str, labels: &[(&str, &str)]) -> Histogram {
    global().histogram(name, labels, &metrics::default_size_buckets())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_invisible() {
        let r = Registry::new();
        let c = r.counter("quiet", &[]);
        set_enabled(false);
        c.incr();
        c.add(10);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn convenience_constructors_share_the_global_registry() {
        let c = counter("lib_test_counter", &[("k", "v")]);
        c.add(3);
        let again = counter("lib_test_counter", &[("k", "v")]);
        assert_eq!(again.get(), 3);
        let h = latency("lib_test_latency", &[]);
        h.record(0.5);
        assert_eq!(h.observations(), 1);
        global().reset();
        assert_eq!(counter("lib_test_counter", &[("k", "v")]).get(), 0);
    }
}
