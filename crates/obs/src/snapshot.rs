//! Point-in-time metric snapshots with hand-rolled JSON export (no serde)
//! and a plain-text rendering in the style of the `mfp-bench` reports.

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Counter value.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Gauge value.
    pub value: f64,
}

/// One histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation.
    pub mean: f64,
    /// Median upper-bound estimate.
    pub p50: f64,
    /// 99th-percentile upper-bound estimate.
    pub p99: f64,
    /// `(upper_bound, count)` per bucket; the last bound is `+inf`.
    pub buckets: Vec<(f64, u64)>,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, ordered by name then labels.
    pub counters: Vec<CounterSample>,
    /// All gauges, ordered by name then labels.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, ordered by name then labels.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Sum of a counter across all its label sets (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// One labeled counter series, when present.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == want)
            .map(|c| c.value)
    }

    /// One gauge value (first matching series), when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// One histogram sample (first matching series), when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a single JSON object:
    /// `{"counters": [...], "gauges": [...], "histograms": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &c.name);
            out.push_str(",\"labels\":");
            json_labels(&mut out, &c.labels);
            out.push_str(",\"value\":");
            out.push_str(&c.value.to_string());
            out.push('}');
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &g.name);
            out.push_str(",\"labels\":");
            json_labels(&mut out, &g.labels);
            out.push_str(",\"value\":");
            json_number(&mut out, g.value);
            out.push('}');
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &h.name);
            out.push_str(",\"labels\":");
            json_labels(&mut out, &h.labels);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            json_number(&mut out, h.sum);
            out.push_str(",\"mean\":");
            json_number(&mut out, h.mean);
            out.push_str(",\"p50\":");
            json_number(&mut out, h.p50);
            out.push_str(",\"p99\":");
            json_number(&mut out, h.p99);
            out.push_str(",\"buckets\":[");
            for (j, &(bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                json_number(&mut out, bound);
                out.push_str(",\"count\":");
                out.push_str(&count.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Plain-text rendering, one metric per line (dashboard style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("{:<56} {}\n", series_name(&c.name, &c.labels), c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("{:<56} {:.4}\n", series_name(&g.name, &g.labels), g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{:<56} n={} mean={:.3e} p50<={:.3e} p99<={:.3e}\n",
                series_name(&h.name, &h.labels),
                h.count,
                h.mean,
                h.p50,
                h.p99,
            ));
        }
        out
    }
}

/// `name{k=v,...}` series identifier used by text renderings.
/// Canonical display name for a labeled series: `name{k=v,...}`, or just
/// `name` when there are no labels.
pub fn series_name(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

fn json_labels(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, k);
        out.push(':');
        json_string(out, v);
    }
    out.push('}');
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no Infinity/NaN; non-finite values serialize as null.
fn json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![CounterSample {
                name: "alarms".into(),
                labels: vec![("platform".into(), "purley".into())],
                value: 7,
            }],
            gauges: vec![GaugeSample {
                name: "max_psi".into(),
                labels: vec![],
                value: 0.125,
            }],
            histograms: vec![HistogramSample {
                name: "tick_seconds".into(),
                labels: vec![],
                count: 2,
                sum: 0.5,
                mean: 0.25,
                p50: 0.25,
                p99: f64::INFINITY,
                buckets: vec![(0.25, 1), (f64::INFINITY, 1)],
            }],
        }
    }

    #[test]
    fn json_round_trips_structure() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"counters\":["));
        assert!(j.contains("\"name\":\"alarms\""));
        assert!(j.contains("\"labels\":{\"platform\":\"purley\"}"));
        assert!(j.contains("\"value\":7"));
        assert!(j.contains("\"max_psi\""));
        assert!(j.contains("\"value\":0.125"));
        // Infinite bounds become null, keeping the JSON parseable.
        assert!(j.contains("{\"le\":null,\"count\":1}"));
        assert!(j.ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = j.matches('{').count() + j.matches('[').count();
        let closes = j.matches('}').count() + j.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn accessors_find_series() {
        let snap = sample();
        assert_eq!(snap.counter("alarms"), 7);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(
            snap.counter_labeled("alarms", &[("platform", "purley")]),
            Some(7)
        );
        assert_eq!(snap.gauge("max_psi"), Some(0.125));
        assert_eq!(snap.histogram("tick_seconds").unwrap().count, 2);
        assert!(!snap.is_empty());
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn render_lists_every_series() {
        let text = sample().render();
        assert!(text.contains("alarms{platform=purley}"));
        assert!(text.contains("max_psi"));
        assert!(text.contains("n=2"));
    }
}
