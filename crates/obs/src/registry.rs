//! The process-wide metric registry.
//!
//! A [`Registry`] maps `(name, labels)` to one instrument and hands out
//! cheap clone-able handles; the same key always resolves to the same
//! underlying atomic, so a counter incremented by sixteen worker threads
//! reads as one total. Resolution takes a lock — callers on hot paths
//! resolve once and hold the handle.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Canonical metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A metric registry. Most code uses the process-wide [`global`] instance;
/// separate registries exist for tests.
#[derive(Debug, Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<MetricKey, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves (creating on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics when the key is already registered as another kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut slots = self.slots.lock().expect("metric registry lock");
        match slots.entry(key).or_insert_with(|| Slot::Counter(Counter::new())) {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Resolves (creating on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics when the key is already registered as another kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut slots = self.slots.lock().expect("metric registry lock");
        match slots.entry(key).or_insert_with(|| Slot::Gauge(Gauge::new())) {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Resolves (creating on first use) the histogram `name{labels}` with
    /// the given bucket bounds. Bounds are fixed by the first resolution;
    /// later calls reuse the existing buckets.
    ///
    /// # Panics
    ///
    /// Panics when the key is already registered as another kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut slots = self.slots.lock().expect("metric registry lock");
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Histogram::new(bounds)))
        {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// A point-in-time copy of every metric, ordered by name then labels.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().expect("metric registry lock");
        let mut snap = Snapshot::default();
        for (key, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => snap.counters.push(CounterSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: c.get(),
                }),
                Slot::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: g.get(),
                }),
                Slot::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    count: h.observations(),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.5),
                    p99: h.quantile(0.99),
                    buckets: h.buckets(),
                }),
            }
        }
        snap
    }

    /// Zeroes every registered metric (handles stay valid). For tests and
    /// benchmark setup; production code never resets.
    pub fn reset(&self) {
        let slots = self.slots.lock().expect("metric registry lock");
        for slot in slots.values() {
            match slot {
                Slot::Counter(c) => c.reset(),
                Slot::Gauge(g) => g.reset(),
                Slot::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide registry all production instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_resolves_to_same_instrument() {
        let r = Registry::new();
        let a = r.counter("ticks", &[("platform", "purley")]);
        let b = r.counter("ticks", &[("platform", "purley")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        // Label order does not matter.
        let x = r.gauge("g", &[("a", "1"), ("b", "2")]);
        let y = r.gauge("g", &[("b", "2"), ("a", "1")]);
        x.set(7.0);
        assert_eq!(y.get(), 7.0);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = Registry::new();
        let a = r.counter("decodes", &[("scheme", "purley")]);
        let b = r.counter("decodes", &[("scheme", "whitley")]);
        a.add(1);
        b.add(10);
        let snap = r.snapshot();
        assert_eq!(snap.counter("decodes"), 11);
        assert_eq!(
            snap.counter_labeled("decodes", &[("scheme", "purley")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_labeled("decodes", &[("scheme", "whitley")]),
            Some(10)
        );
        assert_eq!(snap.counter_labeled("decodes", &[("scheme", "k920")]), None);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn kind_clash_panics() {
        let r = Registry::new();
        let _ = r.counter("clash", &[]);
        let _ = r.gauge("clash", &[]);
    }

    #[test]
    fn snapshot_is_ordered_and_reset_zeroes() {
        let r = Registry::new();
        r.counter("b_metric", &[]).add(1);
        r.counter("a_metric", &[]).add(1);
        r.histogram("h", &[], &[1.0]).record(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "a_metric");
        assert_eq!(snap.counters[1].name, "b_metric");
        assert_eq!(snap.histograms[0].count, 1);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("a_metric"), 0);
        assert_eq!(snap.histograms[0].count, 0);
        assert_eq!(snap.histograms[0].sum, 0.0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("registry_test_singleton", &[]);
        c.add(4);
        assert_eq!(global().counter("registry_test_singleton", &[]).get(), 4);
        global().reset();
    }
}
