//! The instrument types: counters, gauges, fixed-bucket histograms and
//! scoped span timers.
//!
//! Handles are cheap `Arc` clones around atomics; recording is lock-free
//! and gated on the process-wide enable flag (one relaxed load). Floating
//! point state (gauges, histogram sums) is stored as `f64` bit patterns in
//! `AtomicU64`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (registry handles come from
    /// [`Registry::counter`](crate::registry::Registry::counter)).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A last-value gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a detached gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Ascending bucket upper bounds; an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed values (`f64` bits).
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (latencies in seconds,
/// sizes, rates). Bucket bounds are fixed at creation; recording is one
/// binary search plus two relaxed atomic updates.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Creates a detached histogram with the given ascending upper bounds
    /// (an implicit `+inf` bucket is appended).
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: f64) {
        if !crate::enabled() || value.is_nan() {
            return;
        }
        let idx = self.core.bounds.partition_point(|&b| b < value);
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .core
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Starts a span whose duration (seconds) is recorded when the guard
    /// drops.
    pub fn time(&self) -> SpanTimer {
        SpanTimer {
            hist: self.clone(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Number of observations.
    pub fn observations(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.observations();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0 <= q <= 1`): the
    /// smallest bucket bound covering at least `q` of the observations
    /// (`+inf` when the overflow bucket is reached; 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.observations();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.core.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return self.core.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }

    /// `(upper_bound, count)` per bucket; the final entry is the `+inf`
    /// overflow bucket.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.core
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = self.core.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }

    pub(crate) fn reset(&self) {
        for c in &self.core.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.core.count.store(0, Ordering::Relaxed);
        self.core.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Scoped timer: records the elapsed wall time (in seconds) into its
/// histogram when dropped, or earlier via [`SpanTimer::stop`].
///
/// Wall time is inherently nondeterministic; that is fine because metric
/// values never feed back into measured computation (the crate's
/// determinism invariant).
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Records the span now and disarms the drop hook; returns the
    /// elapsed seconds.
    pub fn stop(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.hist.record(elapsed);
        self.armed = false;
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_secs_f64());
        }
    }
}

/// Default latency buckets in seconds: 1 µs to 10 s, four per decade.
pub fn default_latency_buckets() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(29);
    for decade in -6..=0i32 {
        for mult in [1.0, 2.5, 5.0, 7.5] {
            bounds.push(mult * 10f64.powi(decade));
        }
    }
    bounds.push(10.0);
    bounds
}

/// Default size buckets in bytes: powers of two from 64 B to 64 MiB —
/// for I/O payload histograms (WAL records, lake partition appends).
pub fn default_size_buckets() -> Vec<f64> {
    (6..=26).map(|p| (1u64 << p) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.61);
        g.set(0.59);
        assert_eq!(g.get(), 0.59);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.observations(), 5);
        assert!((h.sum() - 556.4).abs() < 1e-9);
        assert!((h.mean() - 111.28).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1);
        assert!(buckets[3].0.is_infinite());
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for _ in 0..90 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(3.0);
        }
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.9), 1.0);
        assert_eq!(h.quantile(0.95), 4.0);
        assert_eq!(h.quantile(1.0), 4.0);
        let empty = Histogram::new(&[1.0]);
        assert_eq!(empty.quantile(0.99), 0.0);
    }

    #[test]
    fn histogram_ignores_nan_and_boundary_values_go_low() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.record(f64::NAN);
        assert_eq!(h.observations(), 0);
        // A value exactly on a bound lands in that bound's bucket.
        h.record(1.0);
        assert_eq!(h.buckets()[0].1, 1);
    }

    #[test]
    fn span_timer_records_on_drop_and_stop() {
        let h = Histogram::new(&default_latency_buckets());
        {
            let _span = h.time();
        }
        assert_eq!(h.observations(), 1);
        let elapsed = h.time().stop();
        assert!(elapsed >= 0.0);
        assert_eq!(h.observations(), 2);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn default_latency_buckets_are_ascending() {
        let b = default_latency_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.first().copied(), Some(1e-6));
        assert_eq!(b.last().copied(), Some(10.0));
    }

    #[test]
    fn default_size_buckets_are_ascending_powers_of_two() {
        let b = default_size_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.first().copied(), Some(64.0));
        assert_eq!(b.last().copied(), Some((64u64 << 20) as f64));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_bounds_are_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }
}
