//! # mfp-tensor
//!
//! Minimal dense-tensor and neural-network kernels backing the
//! FT-Transformer in `mfp-ml`: a row-major f32 [`matrix::Matrix`] with
//! GEMM in the three transposition flavours backprop needs, plus
//! [`nn`] building blocks (linear, layer-norm, GELU, softmax, multi-head
//! attention) with hand-derived backward passes that are verified against
//! finite differences in the test suite, and Adam optimizer state on every
//! [`nn::Param`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod nn;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::matrix::Matrix;
    pub use crate::nn::{
        init_uniform, softmax_rows, softmax_rows_backward, Gelu, LayerNorm, Linear,
        MultiHeadAttention, Param,
    };
}
