//! A minimal dense row-major f32 matrix with the handful of kernels the
//! FT-Transformer needs (GEMM in three transposition flavours, row ops).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use mfp_tensor::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dims mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` rows, cache friendly.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == other.cols`.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dims mismatch (b^T)");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `self^T @ other`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.rows == other.rows`.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "inner dims mismatch (a^T)");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise scale.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(a.matmul_bt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0], &[9.0], &[11.0]]);
        assert_eq!(a.matmul_at(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 4.25]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn map_scale_add() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = a.map(|x| x * x);
        assert_eq!(b, Matrix::from_rows(&[&[1.0, 4.0]]));
        a.scale(2.0);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 4.0]]));
        a.add_assign(&b);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 32.0]])
        );
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut a = Matrix::zeros(2, 3);
        a.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.get(1, 2), 3.0);
    }
}
