//! Neural-network building blocks with explicit forward/backward passes.
//!
//! Everything the FT-Transformer needs: trainable parameters with Adam
//! state ([`Param`]), linear layers, layer normalization, GELU, row-wise
//! softmax, and multi-head self-attention. Backward passes are hand-derived
//! and verified against finite differences in the test suite.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor with gradient and Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Parameter values.
    pub data: Vec<f32>,
    /// Accumulated gradient.
    pub grad: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Param {
    /// Wraps initial values.
    pub fn new(data: Vec<f32>) -> Self {
        let n = data.len();
        Param {
            data,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// One Adam update (step count `t` starts at 1).
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: u32) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..self.data.len() {
            let g = self.grad[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.data[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Deterministic pseudo-random weight initialization (xorshift-based,
/// uniform in ±limit) — keeps the tensor crate free of the `rand`
/// dependency's generic machinery in hot paths.
pub fn init_uniform(n: usize, limit: f32, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f32 / (1u64 << 53) as f32;
            (u * 2.0 - 1.0) * limit
        })
        .collect()
}

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, stored `in_dim x out_dim`.
    pub w: Param,
    /// Bias, length `out_dim`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    #[serde(skip)]
    cache_x: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        Linear {
            w: Param::new(init_uniform(in_dim * out_dim, limit, seed)),
            b: Param::new(vec![0.0; out_dim]),
            in_dim,
            out_dim,
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim);
        let w = Matrix::from_vec(self.in_dim, self.out_dim, self.w.data.clone());
        let mut y = x.matmul(&w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (o, &b) in row.iter_mut().zip(&self.b.data) {
                *o += b;
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    /// Backward pass: accumulates `dW`, `db`, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        // dW = x^T dy
        let dw = x.matmul_at(dy);
        for (g, &d) in self.w.grad.iter_mut().zip(dw.data()) {
            *g += d;
        }
        // db = column sums of dy
        for r in 0..dy.rows() {
            for (g, &d) in self.b.grad.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
        // dx = dy W^T
        let w = Matrix::from_vec(self.in_dim, self.out_dim, self.w.data.clone());
        dy.matmul_bt(&w)
    }

    /// Visits trainable parameters.
    pub fn for_each_param(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// Layer normalization over the last dimension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Scale, length `dim`.
    pub gamma: Param,
    /// Shift, length `dim`.
    pub beta: Param,
    dim: usize,
    eps: f32,
    #[serde(skip)]
    cache: Option<(Matrix, Vec<f32>)>, // (xhat, inv_std per row)
}

impl LayerNorm {
    /// Creates a layer with unit scale and zero shift.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(vec![1.0; dim]),
            beta: Param::new(vec![0.0; dim]),
            dim,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Forward pass.
    #[allow(clippy::needless_range_loop)] // parallel-array indexing reads clearer
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim);
        let n = self.dim as f32;
        let mut xhat = Matrix::zeros(x.rows(), self.dim);
        let mut inv_stds = Vec::with_capacity(x.rows());
        let mut y = Matrix::zeros(x.rows(), self.dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for c in 0..self.dim {
                let xh = (row[c] - mean) * inv_std;
                xhat.set(r, c, xh);
                y.set(r, c, self.gamma.data[c] * xh + self.beta.data[c]);
            }
        }
        self.cache = Some((xhat, inv_stds));
        y
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    #[allow(clippy::needless_range_loop)] // parallel-array indexing reads clearer
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (xhat, inv_stds) = self.cache.as_ref().expect("forward before backward");
        let n = self.dim as f32;
        let mut dx = Matrix::zeros(dy.rows(), self.dim);
        for r in 0..dy.rows() {
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for c in 0..self.dim {
                let dyv = dy.get(r, c);
                let dxhat = dyv * self.gamma.data[c];
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat.get(r, c);
                self.gamma.grad[c] += dyv * xhat.get(r, c);
                self.beta.grad[c] += dyv;
            }
            let inv_std = inv_stds[r];
            for c in 0..self.dim {
                let dxhat = dy.get(r, c) * self.gamma.data[c];
                let v = (n * dxhat - sum_dxhat - xhat.get(r, c) * sum_dxhat_xhat) * inv_std / n;
                dx.set(r, c, v);
            }
        }
        dx
    }

    /// Visits trainable parameters.
    pub fn for_each_param(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// GELU activation (tanh approximation).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gelu {
    #[serde(skip)]
    cache_x: Option<Matrix>,
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

impl Gelu {
    /// Creates the activation.
    pub fn new() -> Self {
        Gelu::default()
    }

    fn gelu(x: f32) -> f32 {
        0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
    }

    fn dgelu(x: f32) -> f32 {
        let u = GELU_C * (x + 0.044715 * x * x * x);
        let t = u.tanh();
        let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
        0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_x = Some(x.clone());
        x.map(Self::gelu)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        dy.hadamard(&x.map(Self::dgelu))
    }
}

/// Row-wise softmax.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        let out_row = out.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        for o in out_row.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Backward of row-wise softmax: given `s = softmax(x)` and `ds`, returns
/// `dx = s ⊙ (ds - rowsum(ds ⊙ s))`.
pub fn softmax_rows_backward(s: &Matrix, ds: &Matrix) -> Matrix {
    let mut dx = Matrix::zeros(s.rows(), s.cols());
    for r in 0..s.rows() {
        let dot: f32 = s.row(r).iter().zip(ds.row(r)).map(|(&a, &b)| a * b).sum();
        for c in 0..s.cols() {
            dx.set(r, c, s.get(r, c) * (ds.get(r, c) - dot));
        }
    }
    dx
}

/// Multi-head self-attention over fixed-length sequences.
///
/// Input is a `(batch * seq_len) x dim` matrix, sequences stacked in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    seq_len: usize,
    #[serde(skip)]
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Vec<Matrix>, // per (batch, head): seq_len x seq_len
    batch: usize,
}

impl MultiHeadAttention {
    /// Creates the attention block.
    ///
    /// # Panics
    ///
    /// Panics unless `dim % heads == 0`.
    pub fn new(dim: usize, heads: usize, seq_len: usize, seed: u64) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must divide evenly across heads");
        MultiHeadAttention {
            wq: Linear::new(dim, dim, seed ^ 0x51),
            wk: Linear::new(dim, dim, seed ^ 0x52),
            wv: Linear::new(dim, dim, seed ^ 0x53),
            wo: Linear::new(dim, dim, seed ^ 0x54),
            heads,
            dim,
            seq_len,
            cache: None,
        }
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Forward pass over `batch` stacked sequences.
    ///
    /// # Panics
    ///
    /// Panics unless `x.rows()` is a multiple of the sequence length.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows() % self.seq_len, 0, "rows must stack sequences");
        let batch = x.rows() / self.seq_len;
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let mut ctx = Matrix::zeros(x.rows(), self.dim);
        let mut attns = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            let r0 = b * self.seq_len;
            for h in 0..self.heads {
                let c0 = h * hd;
                // Scores: (seq x seq), slice-based dot products.
                let mut scores = Matrix::zeros(self.seq_len, self.seq_len);
                for i in 0..self.seq_len {
                    let qrow = &q.row(r0 + i)[c0..c0 + hd];
                    let srow = scores.row_mut(i);
                    for (j, sv) in srow.iter_mut().enumerate() {
                        let krow = &k.row(r0 + j)[c0..c0 + hd];
                        let acc: f32 = qrow.iter().zip(krow).map(|(&a, &b)| a * b).sum();
                        *sv = acc * scale;
                    }
                }
                let attn = softmax_rows(&scores);
                for i in 0..self.seq_len {
                    let arow = attn.row(i);
                    // ctx[i] += sum_j a_ij * v[j]
                    let mut acc = vec![0.0f32; hd];
                    for (j, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let vrow = &v.row(r0 + j)[c0..c0 + hd];
                        for (o, &vv) in acc.iter_mut().zip(vrow) {
                            *o += a * vv;
                        }
                    }
                    ctx.row_mut(r0 + i)[c0..c0 + hd].copy_from_slice(&acc);
                }
                attns.push(attn);
            }
        }
        self.cache = Some(AttnCache {
            q,
            k,
            v,
            attn: attns,
            batch,
        });
        self.wo.forward(&ctx)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let d_ctx = self.wo.backward(dy);
        let cache = self.cache.as_ref().expect("forward before backward");
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let rows = cache.batch * self.seq_len;
        let mut dq = Matrix::zeros(rows, self.dim);
        let mut dk = Matrix::zeros(rows, self.dim);
        let mut dv = Matrix::zeros(rows, self.dim);

        for b in 0..cache.batch {
            let r0 = b * self.seq_len;
            for h in 0..self.heads {
                let c0 = h * hd;
                let attn = &cache.attn[b * self.heads + h];
                // dA = dCtx V^T ; dV = A^T dCtx (slice kernels).
                let mut d_attn = Matrix::zeros(self.seq_len, self.seq_len);
                for i in 0..self.seq_len {
                    let drow = &d_ctx.row(r0 + i)[c0..c0 + hd];
                    let darow = d_attn.row_mut(i);
                    for (j, da) in darow.iter_mut().enumerate() {
                        let vrow = &cache.v.row(r0 + j)[c0..c0 + hd];
                        *da = drow.iter().zip(vrow).map(|(&a, &b)| a * b).sum();
                    }
                    let arow = attn.row(i);
                    for (j, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let dvrow = &mut dv.row_mut(r0 + j)[c0..c0 + hd];
                        for (o, &d) in dvrow.iter_mut().zip(drow) {
                            *o += a * d;
                        }
                    }
                }
                let d_scores = softmax_rows_backward(attn, &d_attn);
                // dQ = dS K * scale ; dK = dS^T Q * scale
                for i in 0..self.seq_len {
                    let dsrow = d_scores.row(i);
                    let mut acc = vec![0.0f32; hd];
                    for (j, &ds) in dsrow.iter().enumerate() {
                        if ds == 0.0 {
                            continue;
                        }
                        let krow = &cache.k.row(r0 + j)[c0..c0 + hd];
                        for (o, &kk) in acc.iter_mut().zip(krow) {
                            *o += ds * kk;
                        }
                        let qrow: Vec<f32> = cache.q.row(r0 + i)[c0..c0 + hd].to_vec();
                        let dkrow = &mut dk.row_mut(r0 + j)[c0..c0 + hd];
                        for (o, &qq) in dkrow.iter_mut().zip(&qrow) {
                            *o += ds * qq * scale;
                        }
                    }
                    for (o, v) in dq.row_mut(r0 + i)[c0..c0 + hd].iter_mut().zip(&acc) {
                        *o = v * scale;
                    }
                }
            }
        }

        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Visits trainable parameters.
    pub fn for_each_param(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.wq.for_each_param(f);
        self.wk.for_each_param(f);
        self.wv.for_each_param(f);
        self.wo.for_each_param(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check helper: perturbs `get/set` scalar
    /// access and compares the analytic input gradient on loss
    /// `L = sum(y ⊙ r)`.
    fn num_grad(
        mut f: impl FnMut(&Matrix) -> Matrix,
        x: &Matrix,
        r_weights: &Matrix,
    ) -> Matrix {
        let eps = 1e-3;
        let mut g = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.get(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.get(i, j) - eps);
                let lp: f32 = f(&xp).hadamard(r_weights).data().iter().sum();
                let lm: f32 = f(&xm).hadamard(r_weights).data().iter().sum();
                g.set(i, j, (lp - lm) / (2.0 * eps));
            }
        }
        g
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() < tol * (1.0 + x.abs().max(y.abs())),
                "{what}: {x} vs {y}"
            );
        }
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_vec(rows, cols, init_uniform(rows * cols, 1.0, seed))
    }

    #[test]
    fn linear_gradcheck() {
        let x = rand_matrix(3, 4, 1);
        let r = rand_matrix(3, 2, 2);
        let mut lin = Linear::new(4, 2, 3);
        let _ = lin.forward(&x);
        let dx = lin.backward(&r);
        let mut lin2 = lin.clone();
        let num = num_grad(move |xx| lin2.forward(xx), &x, &r);
        assert_close(&dx, &num, 2e-2, "linear dx");
    }

    #[test]
    fn linear_weight_grads_accumulate() {
        let x = rand_matrix(3, 4, 1);
        let r = rand_matrix(3, 2, 2);
        let mut lin = Linear::new(4, 2, 3);
        let _ = lin.forward(&x);
        let _ = lin.backward(&r);
        // db = column sums of dy.
        for c in 0..2 {
            let expect: f32 = (0..3).map(|row| r.get(row, c)).sum();
            assert!((lin.b.grad[c] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let x = rand_matrix(3, 5, 7);
        let r = rand_matrix(3, 5, 8);
        let mut ln = LayerNorm::new(5);
        let _ = ln.forward(&x);
        let dx = ln.backward(&r);
        let mut ln2 = ln.clone();
        let num = num_grad(move |xx| ln2.forward(xx), &x, &r);
        assert_close(&dx, &num, 3e-2, "layernorm dx");
    }

    #[test]
    fn layernorm_normalizes() {
        let x = rand_matrix(4, 8, 9);
        let mut ln = LayerNorm::new(8);
        let y = ln.forward(&x);
        for r in 0..4 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row mean {mean}");
        }
    }

    #[test]
    fn gelu_gradcheck() {
        let x = rand_matrix(3, 4, 11);
        let r = rand_matrix(3, 4, 12);
        let mut g = Gelu::new();
        let _ = g.forward(&x);
        let dx = g.backward(&r);
        let mut g2 = g.clone();
        let num = num_grad(move |xx| g2.forward(xx), &x, &r);
        assert_close(&dx, &num, 2e-2, "gelu dx");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = rand_matrix(5, 7, 13);
        let s = softmax_rows(&x);
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_backward_matches_numeric() {
        let x = rand_matrix(2, 4, 17);
        let r = rand_matrix(2, 4, 18);
        let s = softmax_rows(&x);
        let dx = softmax_rows_backward(&s, &r);
        let num = num_grad(softmax_rows, &x, &r);
        assert_close(&dx, &num, 2e-2, "softmax dx");
    }

    #[test]
    fn attention_gradcheck() {
        let seq = 3;
        let dim = 4;
        let batch = 2;
        let x = rand_matrix(batch * seq, dim, 21);
        let r = rand_matrix(batch * seq, dim, 22);
        let mut mha = MultiHeadAttention::new(dim, 2, seq, 23);
        let _ = mha.forward(&x);
        let dx = mha.backward(&r);
        let mut mha2 = mha.clone();
        let num = num_grad(move |xx| mha2.forward(xx), &x, &r);
        assert_close(&dx, &num, 5e-2, "attention dx");
    }

    #[test]
    fn attention_output_shape() {
        let mut mha = MultiHeadAttention::new(8, 2, 5, 31);
        let x = rand_matrix(10, 8, 32); // 2 sequences of length 5
        let y = mha.forward(&x);
        assert_eq!((y.rows(), y.cols()), (10, 8));
    }

    #[test]
    fn adam_descends_quadratic() {
        // Minimize f(p) = sum(p^2): Adam should shrink the norm.
        let mut p = Param::new(vec![1.0, -2.0, 3.0]);
        for t in 1..=200 {
            for i in 0..3 {
                p.grad[i] = 2.0 * p.data[i];
            }
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
            p.zero_grad();
        }
        let norm: f32 = p.data.iter().map(|v| v * v).sum();
        assert!(norm < 0.05, "norm={norm}");
    }

    #[test]
    fn init_uniform_deterministic_and_bounded() {
        let a = init_uniform(100, 0.5, 42);
        let b = init_uniform(100, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v.abs() <= 0.5));
        assert!(a.iter().any(|&v| v != 0.0));
    }
}
