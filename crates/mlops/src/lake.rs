//! The data lake: the landing zone of the data pipeline (paper §VII).
//!
//! BMC collectors ship encoded event logs; the lake stores them
//! partitioned by platform and simulated day, alongside the DIMM
//! specification catalog, and serves range queries to the feature store.

use mfp_dram::address::DimmId;
use mfp_dram::bmc::{BmcLog, DecodeError};
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::{DataWidth, DeviceGeometry, Platform};
use mfp_dram::spec::{DieProcess, DimmSpec, Frequency, Manufacturer};
use mfp_dram::time::SimTime;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Partition key: (platform, day index).
type PartitionKey = (Platform, u64);

/// An append-only, partitioned event store with a DIMM catalog.
///
/// Thread-safe: ingestion and queries may run concurrently (the online
/// prediction path reads while collectors write).
#[derive(Debug, Default)]
pub struct DataLake {
    partitions: RwLock<BTreeMap<PartitionKey, Vec<MemEvent>>>,
    catalog: RwLock<BTreeMap<DimmId, (Platform, DimmSpec)>>,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        DataLake::default()
    }

    /// Registers a DIMM's static specification (the memory-specification
    /// records the BMC reports at boot).
    pub fn register_dimm(&self, id: DimmId, platform: Platform, spec: DimmSpec) {
        self.catalog.write().insert(id, (platform, spec));
    }

    /// Looks up a DIMM's platform and spec.
    pub fn dimm_info(&self, id: DimmId) -> Option<(Platform, DimmSpec)> {
        self.catalog.read().get(&id).copied()
    }

    /// Number of catalogued DIMMs.
    pub fn catalog_len(&self) -> usize {
        self.catalog.read().len()
    }

    /// Ingests already-decoded events; unknown DIMMs are rejected into the
    /// returned count (data-quality signal for monitoring) **and** onto
    /// the `lake_rejected_uncataloged` counter, mirroring the per-reason
    /// reject counters `crate::ingest::Ingestor` keeps — lake and ingest
    /// accounting can be cross-checked on one dashboard.
    pub fn ingest(&self, events: &[MemEvent]) -> usize {
        let catalog = self.catalog.read();
        let mut parts = self.partitions.write();
        let mut rejected: usize = 0;
        for e in events {
            match catalog.get(&e.dimm()) {
                Some((platform, _)) => {
                    parts
                        .entry((*platform, e.time().as_days()))
                        .or_default()
                        .push(*e);
                }
                None => rejected += 1,
            }
        }
        if rejected > 0 {
            mfp_obs::counter("lake_rejected_uncataloged", &[]).add(rejected as u64);
        }
        rejected
    }

    /// Ingests a binary-encoded BMC log (the wire format collectors ship).
    ///
    /// # Errors
    ///
    /// Returns the decode error when the payload is malformed.
    pub fn ingest_encoded(&self, payload: &[u8]) -> Result<usize, DecodeError> {
        let log = BmcLog::decode(payload)?;
        Ok(self.ingest(log.events()))
    }

    /// Total stored events.
    pub fn len(&self) -> usize {
        self.partitions.read().values().map(Vec::len).sum()
    }

    /// True when the lake holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events of one platform in `[from, to)`, time-sorted.
    ///
    /// An inverted range (`from > to`) is empty, and pruning walks only
    /// the partitions that exist in the day range (a `BTreeMap::range`,
    /// not a day-by-day loop — a query spanning to the far future used
    /// to iterate billions of absent day keys).
    pub fn query(&self, platform: Platform, from: SimTime, to: SimTime) -> Vec<MemEvent> {
        if from > to {
            return Vec::new();
        }
        let parts = self.partitions.read();
        let mut out: Vec<MemEvent> = Vec::new();
        for (_, events) in parts.range((platform, from.as_days())..=(platform, to.as_days())) {
            out.extend(
                events
                    .iter()
                    .filter(|e| e.time() >= from && e.time() < to)
                    .copied(),
            );
        }
        out.sort_by_key(|e| e.time());
        out
    }

    /// DIMMs of one platform present in the catalog.
    pub fn platform_dimms(&self, platform: Platform) -> Vec<(DimmId, DimmSpec)> {
        self.catalog
            .read()
            .iter()
            .filter(|(_, (p, _))| *p == platform)
            .map(|(id, (_, spec))| (*id, *spec))
            .collect()
    }
}

/// Failure on the on-disk lake path.
#[derive(Debug)]
pub enum LakeError {
    /// An I/O operation failed.
    Io(std::io::Error),
    /// A lake file is structurally invalid (manifest/catalog corruption,
    /// or a partition shorter than its committed length).
    Corrupt(&'static str),
    /// A committed partition chunk failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::Io(e) => write!(f, "lake i/o: {e}"),
            LakeError::Corrupt(what) => write!(f, "lake corrupt: {what}"),
            LakeError::Decode(e) => write!(f, "lake partition decode: {e:?}"),
        }
    }
}

impl std::error::Error for LakeError {}

impl From<std::io::Error> for LakeError {
    fn from(e: std::io::Error) -> Self {
        LakeError::Io(e)
    }
}

impl From<DecodeError> for LakeError {
    fn from(e: DecodeError) -> Self {
        LakeError::Decode(e)
    }
}

/// Magic bytes of the lake manifest file.
const MANIFEST_MAGIC: [u8; 4] = *b"MFL1";
/// Magic bytes of the lake catalog file.
const CATALOG_MAGIC: [u8; 4] = *b"MFK1";
const LAKE_VERSION: u8 = 1;
/// Bytes per manifest entry: platform, day, committed, events, min, max.
const MANIFEST_ENTRY_LEN: usize = 1 + 8 + 8 + 8 + 8 + 8;
/// Bytes per catalog entry: DIMM id, platform, and the full spec.
const CATALOG_ENTRY_LEN: usize = 4 + 1 + 1 + 11;

/// Per-partition manifest state: how much of the partition file is
/// committed (a crash mid-append leaves bytes past this point, which
/// reopen ignores) plus the pruning statistics for `query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ManifestEntry {
    /// Valid bytes of the partition file; appends beyond this offset
    /// that never made it into a manifest rewrite are torn and ignored.
    committed_bytes: u64,
    /// Events in the committed prefix.
    events: u64,
    /// Earliest event timestamp (seconds) in the committed prefix.
    min_time: u64,
    /// Latest event timestamp (seconds) in the committed prefix.
    max_time: u64,
}

fn platform_index(p: Platform) -> Result<u8, LakeError> {
    Platform::ALL
        .iter()
        .position(|&q| q == p)
        .map(|i| i as u8)
        .ok_or(LakeError::Corrupt("platform missing from Platform::ALL"))
}

fn encode_manifest(entries: &BTreeMap<PartitionKey, ManifestEntry>) -> Result<Vec<u8>, LakeError> {
    let mut out = Vec::with_capacity(5 + 8 + entries.len() * MANIFEST_ENTRY_LEN + 4);
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.push(LAKE_VERSION);
    out.extend_from_slice(&(entries.len() as u64).to_be_bytes());
    for ((platform, day), e) in entries {
        out.push(platform_index(*platform)?);
        out.extend_from_slice(&day.to_be_bytes());
        out.extend_from_slice(&e.committed_bytes.to_be_bytes());
        out.extend_from_slice(&e.events.to_be_bytes());
        out.extend_from_slice(&e.min_time.to_be_bytes());
        out.extend_from_slice(&e.max_time.to_be_bytes());
    }
    out.extend_from_slice(&crate::wal::crc32(&out).to_be_bytes());
    Ok(out)
}

fn decode_manifest(data: &[u8]) -> Result<BTreeMap<PartitionKey, ManifestEntry>, LakeError> {
    let body = verify_lake_envelope(data, &MANIFEST_MAGIC, "manifest")?;
    let n = read_u64(body, 0, "manifest count")? as usize;
    if n > body.len() {
        return Err(LakeError::Corrupt("manifest count exceeds file"));
    }
    if body.len() != 8 + n * MANIFEST_ENTRY_LEN {
        return Err(LakeError::Corrupt("manifest length mismatch"));
    }
    let mut entries = BTreeMap::new();
    for i in 0..n {
        let at = 8 + i * MANIFEST_ENTRY_LEN;
        let platform = *Platform::ALL
            .get(body[at] as usize)
            .ok_or(LakeError::Corrupt("manifest platform index"))?;
        let day = read_u64(body, at + 1, "manifest day")?;
        entries.insert(
            (platform, day),
            ManifestEntry {
                committed_bytes: read_u64(body, at + 9, "manifest committed")?,
                events: read_u64(body, at + 17, "manifest events")?,
                min_time: read_u64(body, at + 25, "manifest min")?,
                max_time: read_u64(body, at + 33, "manifest max")?,
            },
        );
    }
    Ok(entries)
}

fn encode_catalog(catalog: &BTreeMap<DimmId, (Platform, DimmSpec)>) -> Result<Vec<u8>, LakeError> {
    let mut out = Vec::with_capacity(5 + 8 + catalog.len() * CATALOG_ENTRY_LEN + 4);
    out.extend_from_slice(&CATALOG_MAGIC);
    out.push(LAKE_VERSION);
    out.extend_from_slice(&(catalog.len() as u64).to_be_bytes());
    for (id, (platform, spec)) in catalog {
        out.extend_from_slice(&id.server.0.to_be_bytes());
        out.push(id.slot);
        out.push(platform_index(*platform)?);
        out.push(spec.manufacturer.index() as u8);
        out.push(match spec.width {
            DataWidth::X4 => 0,
            DataWidth::X8 => 1,
        });
        out.push(
            Frequency::ALL
                .iter()
                .position(|&f| f == spec.frequency)
                .ok_or(LakeError::Corrupt("frequency missing from Frequency::ALL"))?
                as u8,
        );
        out.push(spec.process.index() as u8);
        out.extend_from_slice(&spec.capacity_gib.to_be_bytes());
        out.push(spec.ranks);
        out.push(spec.geometry.bank_groups);
        out.push(spec.geometry.banks_per_group);
        out.push(spec.geometry.row_bits);
        out.push(spec.geometry.col_bits);
    }
    out.extend_from_slice(&crate::wal::crc32(&out).to_be_bytes());
    Ok(out)
}

fn decode_catalog(data: &[u8]) -> Result<BTreeMap<DimmId, (Platform, DimmSpec)>, LakeError> {
    let body = verify_lake_envelope(data, &CATALOG_MAGIC, "catalog")?;
    let n = read_u64(body, 0, "catalog count")? as usize;
    if n > body.len() {
        return Err(LakeError::Corrupt("catalog count exceeds file"));
    }
    if body.len() != 8 + n * CATALOG_ENTRY_LEN {
        return Err(LakeError::Corrupt("catalog length mismatch"));
    }
    let mut catalog = BTreeMap::new();
    for i in 0..n {
        let at = 8 + i * CATALOG_ENTRY_LEN;
        let e = &body[at..at + CATALOG_ENTRY_LEN];
        let id = DimmId::new(u32::from_be_bytes([e[0], e[1], e[2], e[3]]), e[4]);
        let platform = *Platform::ALL
            .get(e[5] as usize)
            .ok_or(LakeError::Corrupt("catalog platform index"))?;
        let spec = DimmSpec {
            manufacturer: *Manufacturer::ALL
                .get(e[6] as usize)
                .ok_or(LakeError::Corrupt("catalog manufacturer index"))?,
            width: match e[7] {
                0 => DataWidth::X4,
                1 => DataWidth::X8,
                _ => return Err(LakeError::Corrupt("catalog width code")),
            },
            frequency: *Frequency::ALL
                .get(e[8] as usize)
                .ok_or(LakeError::Corrupt("catalog frequency index"))?,
            process: *DieProcess::ALL
                .get(e[9] as usize)
                .ok_or(LakeError::Corrupt("catalog process index"))?,
            capacity_gib: u16::from_be_bytes([e[10], e[11]]),
            ranks: e[12],
            geometry: DeviceGeometry {
                bank_groups: e[13],
                banks_per_group: e[14],
                row_bits: e[15],
                col_bits: e[16],
            },
        };
        catalog.insert(id, (platform, spec));
    }
    Ok(catalog)
}

/// Checks magic, version and the trailing CRC of a lake metadata file;
/// returns the body between the 5-byte header and the 4-byte checksum.
fn verify_lake_envelope<'a>(
    data: &'a [u8],
    magic: &[u8; 4],
    what: &'static str,
) -> Result<&'a [u8], LakeError> {
    if data.len() < 9 || &data[..4] != magic || data[4] != LAKE_VERSION {
        return Err(LakeError::Corrupt(what));
    }
    let (body, tail) = data.split_at(data.len() - 4);
    if crate::wal::crc32(body) != u32::from_be_bytes([tail[0], tail[1], tail[2], tail[3]]) {
        return Err(LakeError::Corrupt(what));
    }
    Ok(&body[5..])
}

fn read_u64(data: &[u8], at: usize, what: &'static str) -> Result<u64, LakeError> {
    let bytes: [u8; 8] = data
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or(LakeError::Corrupt(what))?;
    Ok(u64::from_be_bytes(bytes))
}

/// A crash-safe, log-structured [`DataLake`] under a root directory.
///
/// Layout:
///
/// ```text
/// root/
///   catalog.bin              MFK1: the DIMM spec catalog (atomic rewrite)
///   manifest.bin             MFL1: per-partition committed byte counts,
///                            event counts and time bounds (atomic rewrite)
///   part-<platform>-<day>.log  [u32 len][BmcLog bytes] chunks, append-only
/// ```
///
/// Every ingest appends encoded chunks to the affected partition files
/// (fsynced), *then* rewrites the manifest; a crash mid-append leaves
/// bytes past `committed_bytes` which reopen silently ignores, so the
/// lake always reopens to its last manifest-consistent state. An
/// in-memory [`DataLake`] mirror serves reads, and [`DiskLake::query`]
/// consults the manifest first to prune partitions by day range and
/// committed time bounds — the `lake_partitions_scanned` /
/// `lake_partitions_total` counters quantify the pruning.
#[derive(Debug)]
pub struct DiskLake {
    root: PathBuf,
    mem: DataLake,
    manifest: RwLock<BTreeMap<PartitionKey, ManifestEntry>>,
    scanned: AtomicU64,
    total: AtomicU64,
}

impl DiskLake {
    /// Opens (or creates) a lake rooted at `root`, recovering the
    /// catalog, manifest and every committed partition prefix.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption in the catalog, manifest or a
    /// committed partition region. Torn partition *appends* (bytes past
    /// the committed length) are not errors.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, LakeError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mem = DataLake::new();
        match fs::read(root.join("catalog.bin")) {
            Ok(bytes) => {
                *mem.catalog.write() = decode_catalog(&bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let manifest = match fs::read(root.join("manifest.bin")) {
            Ok(bytes) => decode_manifest(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e.into()),
        };
        {
            let mut parts = mem.partitions.write();
            for (key, entry) in &manifest {
                let data = fs::read(root.join(partition_file(*key)))?;
                if (data.len() as u64) < entry.committed_bytes {
                    return Err(LakeError::Corrupt("partition shorter than committed"));
                }
                let committed = &data[..entry.committed_bytes as usize];
                let mut events: Vec<MemEvent> = Vec::with_capacity(entry.events as usize);
                let mut at = 0usize;
                while at < committed.len() {
                    let len = committed
                        .get(at..at + 4)
                        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]) as usize)
                        .ok_or(LakeError::Corrupt("partition chunk header"))?;
                    let chunk = committed
                        .get(at + 4..at + 4 + len)
                        .ok_or(LakeError::Corrupt("partition chunk body"))?;
                    events.extend_from_slice(BmcLog::decode(chunk)?.events());
                    at += 4 + len;
                }
                if events.len() as u64 != entry.events {
                    return Err(LakeError::Corrupt("partition event count mismatch"));
                }
                parts.insert(*key, events);
            }
        }
        Ok(DiskLake {
            root,
            mem,
            manifest: RwLock::new(manifest),
            scanned: AtomicU64::new(0),
            total: AtomicU64::new(0),
        })
    }

    /// Builds an on-disk lake at `root` from an in-memory one — the
    /// export half of the round-trip (`DiskLake::open` on the same root
    /// is the import half). `root` must be empty or absent.
    pub fn from_memory(root: impl Into<PathBuf>, src: &DataLake) -> Result<Self, LakeError> {
        let disk = DiskLake::open(root)?;
        if !disk.mem.is_empty() || disk.mem.catalog_len() > 0 {
            return Err(LakeError::Corrupt("export target is not empty"));
        }
        for (id, (platform, spec)) in src.catalog.read().iter() {
            disk.mem.catalog.write().insert(*id, (*platform, *spec));
        }
        disk.persist_catalog()?;
        for events in src.partitions.read().values() {
            disk.ingest(events)?;
        }
        Ok(disk)
    }

    /// Clones the lake's committed state into a plain in-memory
    /// [`DataLake`] (catalog and partitions).
    pub fn to_memory(&self) -> DataLake {
        let out = DataLake::new();
        *out.catalog.write() = self.mem.catalog.read().clone();
        *out.partitions.write() = self.mem.partitions.read().clone();
        out
    }

    /// The in-memory mirror — borrow this wherever a [`DataLake`] is
    /// expected (feature stores, the online predictors).
    pub fn memory(&self) -> &DataLake {
        &self.mem
    }

    /// Registers a DIMM and durably rewrites the catalog file.
    ///
    /// # Errors
    ///
    /// I/O failure while persisting; the in-memory registration is
    /// applied first and stands either way.
    pub fn register_dimm(
        &self,
        id: DimmId,
        platform: Platform,
        spec: DimmSpec,
    ) -> Result<(), LakeError> {
        self.mem.register_dimm(id, platform, spec);
        self.persist_catalog()
    }

    fn persist_catalog(&self) -> Result<(), LakeError> {
        let bytes = encode_catalog(&self.mem.catalog.read())?;
        Ok(atomic_write_file(&self.root.join("catalog.bin"), &bytes)?)
    }

    /// Ingests events: committed to partition files first (append +
    /// fsync + manifest rewrite), then mirrored in memory. Returns the
    /// uncataloged-reject count like [`DataLake::ingest`].
    ///
    /// # Errors
    ///
    /// I/O failure; on error the manifest is not rewritten, so a partial
    /// append is invisible after reopen.
    pub fn ingest(&self, events: &[MemEvent]) -> Result<usize, LakeError> {
        let append_sizes = mfp_obs::sizes("lake_partition_append_bytes", &[]);
        let mut groups: BTreeMap<PartitionKey, Vec<MemEvent>> = BTreeMap::new();
        {
            let catalog = self.mem.catalog.read();
            for e in events {
                if let Some((platform, _)) = catalog.get(&e.dimm()) {
                    groups
                        .entry((*platform, e.time().as_days()))
                        .or_default()
                        .push(*e);
                }
            }
        }
        let mut manifest = self.manifest.write();
        for (key, group) in &groups {
            let log: BmcLog = group.iter().copied().collect();
            let payload = log.encode();
            let mut chunk = Vec::with_capacity(4 + payload.len());
            chunk.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            chunk.extend_from_slice(&payload);
            let path = self.root.join(partition_file(*key));
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            file.write_all(&chunk)?;
            file.sync_data()?;
            append_sizes.record(chunk.len() as f64);
            let (lo, hi) = group.iter().fold((u64::MAX, 0u64), |(lo, hi), e| {
                let t = e.time().as_secs();
                (lo.min(t), hi.max(t))
            });
            let entry = manifest.entry(*key).or_insert(ManifestEntry {
                committed_bytes: 0,
                events: 0,
                min_time: u64::MAX,
                max_time: 0,
            });
            entry.committed_bytes += chunk.len() as u64;
            entry.events += group.len() as u64;
            entry.min_time = entry.min_time.min(lo);
            entry.max_time = entry.max_time.max(hi);
        }
        if !groups.is_empty() {
            atomic_write_file(
                &self.root.join("manifest.bin"),
                &encode_manifest(&manifest)?,
            )?;
        }
        drop(manifest);
        Ok(self.mem.ingest(events))
    }

    /// All events of one platform in `[from, to)`, time-sorted —
    /// identical to [`DataLake::query`] on the mirror, but partitions
    /// are pruned through the manifest (day range plus committed
    /// min/max time bounds) before any events are touched.
    pub fn query(&self, platform: Platform, from: SimTime, to: SimTime) -> Vec<MemEvent> {
        if from > to {
            return Vec::new();
        }
        let manifest = self.manifest.read();
        let total = manifest.keys().filter(|(p, _)| *p == platform).count() as u64;
        let keys: Vec<PartitionKey> = manifest
            .range((platform, from.as_days())..=(platform, to.as_days()))
            .filter(|(_, e)| e.min_time < to.as_secs() && e.max_time >= from.as_secs())
            .map(|(k, _)| *k)
            .collect();
        drop(manifest);
        self.total.fetch_add(total, Ordering::Relaxed);
        self.scanned.fetch_add(keys.len() as u64, Ordering::Relaxed);
        mfp_obs::counter("lake_partitions_total", &[]).add(total);
        mfp_obs::counter("lake_partitions_scanned", &[]).add(keys.len() as u64);
        let parts = self.mem.partitions.read();
        let mut out: Vec<MemEvent> = Vec::new();
        for key in keys {
            if let Some(events) = parts.get(&key) {
                out.extend(
                    events
                        .iter()
                        .filter(|e| e.time() >= from && e.time() < to)
                        .copied(),
                );
            }
        }
        out.sort_by_key(|e| e.time());
        out
    }

    /// `(partitions_scanned, partitions_total)` accumulated over this
    /// handle's queries — the pruning evidence (`scanned < total` on
    /// narrow ranges).
    pub fn prune_stats(&self) -> (u64, u64) {
        (
            self.scanned.load(Ordering::Relaxed),
            self.total.load(Ordering::Relaxed),
        )
    }
}

fn partition_file(key: PartitionKey) -> String {
    format!("part-{}-{}.log", key.0.code(), key.1)
}

/// Atomic tmp-write-then-rename, shared by catalog and manifest.
fn atomic_write_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;

    fn ce(t: u64, dimm: DimmId) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0)]),
        })
    }

    #[test]
    fn ingest_requires_catalog() {
        let lake = DataLake::new();
        let id = DimmId::new(1, 0);
        let rejected = lake.ingest(&[ce(10, id)]);
        assert_eq!(rejected, 1);
        assert!(lake.is_empty());

        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        let rejected = lake.ingest(&[ce(10, id)]);
        assert_eq!(rejected, 0);
        assert_eq!(lake.len(), 1);
    }

    #[test]
    fn query_filters_time_and_platform() {
        let lake = DataLake::new();
        let a = DimmId::new(1, 0);
        let b = DimmId::new(2, 0);
        lake.register_dimm(a, Platform::IntelPurley, DimmSpec::default());
        lake.register_dimm(b, Platform::K920, DimmSpec::default());
        lake.ingest(&[ce(10, a), ce(100_000, a), ce(20, b)]);

        let purley = lake.query(
            Platform::IntelPurley,
            SimTime::from_secs(0),
            SimTime::from_secs(1_000),
        );
        assert_eq!(purley.len(), 1);
        assert_eq!(purley[0].time().as_secs(), 10);
        let k920 = lake.query(
            Platform::K920,
            SimTime::from_secs(0),
            SimTime::from_secs(1_000_000),
        );
        assert_eq!(k920.len(), 1);
    }

    #[test]
    fn encoded_roundtrip_through_lake() {
        let lake = DataLake::new();
        let id = DimmId::new(7, 1);
        lake.register_dimm(id, Platform::IntelWhitley, DimmSpec::default());
        let log: BmcLog = vec![ce(5, id), ce(6, id)].into_iter().collect();
        let n = lake.ingest_encoded(&log.encode()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(lake.len(), 2);
        assert!(lake.ingest_encoded(b"garbage").is_err());
    }

    #[test]
    fn query_handles_inverted_and_empty_ranges() {
        let lake = DataLake::new();
        // Empty catalog, empty lake: any range is empty, instantly.
        assert!(lake
            .query(Platform::K920, SimTime::ZERO, SimTime::from_secs(u64::MAX))
            .is_empty());

        let id = DimmId::new(1, 0);
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        lake.ingest(&[ce(10, id), ce(100_000, id)]);
        // Inverted range: empty, not a panic and not a scan.
        assert!(lake
            .query(
                Platform::IntelPurley,
                SimTime::from_secs(100_000),
                SimTime::from_secs(10)
            )
            .is_empty());
        // A range reaching the far future completes by walking only the
        // partitions that exist (the old day-by-day loop iterated every
        // absent day index up to u64::MAX / 86_400).
        let all = lake.query(
            Platform::IntelPurley,
            SimTime::ZERO,
            SimTime::from_secs(u64::MAX),
        );
        assert_eq!(all.len(), 2);
        // Degenerate equal endpoints: empty half-open interval.
        assert!(lake
            .query(
                Platform::IntelPurley,
                SimTime::from_secs(10),
                SimTime::from_secs(10)
            )
            .is_empty());
    }

    #[test]
    fn rejects_bump_the_lake_counter() {
        let counter = mfp_obs::counter("lake_rejected_uncataloged", &[]);
        let before = counter.get();
        let lake = DataLake::new();
        assert_eq!(lake.ingest(&[ce(10, DimmId::new(42, 0))]), 1);
        assert!(
            counter.get() >= before + 1,
            "uncataloged rejects must reach telemetry"
        );
    }

    /// A unique scratch directory per test invocation (parallel-safe).
    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "mfp_lake_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    /// Registers a small two-platform fleet and returns the stream.
    fn fleet(reg: &mut dyn FnMut(DimmId, Platform, DimmSpec)) -> Vec<MemEvent> {
        let a = DimmId::new(1, 0);
        let b = DimmId::new(2, 1);
        let c = DimmId::new(3, 0);
        reg(a, Platform::IntelPurley, DimmSpec::default());
        reg(b, Platform::IntelPurley, DimmSpec::default());
        reg(c, Platform::K920, DimmSpec::default());
        // Three days of purley events plus one K920 straggler, plus one
        // event for an unregistered DIMM (rejected by both lakes).
        let mut events = Vec::new();
        for day in 0..3u64 {
            for k in 0..5u64 {
                events.push(ce(day * 86_400 + 1_000 + k * 7_000, a));
                events.push(ce(day * 86_400 + 2_000 + k * 7_000, b));
            }
        }
        events.push(ce(2 * 86_400 + 50, c));
        events.push(ce(999, DimmId::new(99, 9)));
        events
    }

    #[test]
    fn disk_lake_round_trips_after_reopen() {
        let root = test_dir("roundtrip");
        let mem = DataLake::new();
        let disk = DiskLake::open(&root).unwrap();
        let events = fleet(&mut |id, p, s| {
            mem.register_dimm(id, p, s);
            disk.register_dimm(id, p, s).unwrap();
        });
        let mem_rejected = mem.ingest(&events);
        let disk_rejected = disk.ingest(&events).unwrap();
        assert_eq!(mem_rejected, disk_rejected);
        assert_eq!(mem_rejected, 1);
        drop(disk); // "crash": no clean shutdown step exists or is needed

        let reopened = DiskLake::open(&root).unwrap();
        assert_eq!(reopened.memory().len(), mem.len());
        assert_eq!(reopened.memory().catalog_len(), mem.catalog_len());
        assert_eq!(
            reopened.memory().dimm_info(DimmId::new(1, 0)),
            mem.dimm_info(DimmId::new(1, 0))
        );
        for (from, to) in [
            (0u64, u64::MAX),
            (0, 86_400),
            (86_400, 2 * 86_400),
            (5_000, 20_000),
            (10, 10),
        ] {
            for platform in [Platform::IntelPurley, Platform::K920] {
                assert_eq!(
                    reopened.query(platform, SimTime::from_secs(from), SimTime::from_secs(to)),
                    mem.query(platform, SimTime::from_secs(from), SimTime::from_secs(to)),
                    "{platform:?} [{from}, {to}) diverged after reopen"
                );
            }
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_lake_prunes_partitions_on_narrow_ranges() {
        let root = test_dir("prune");
        let disk = DiskLake::open(&root).unwrap();
        let events = fleet(&mut |id, p, s| {
            disk.register_dimm(id, p, s).unwrap();
        });
        disk.ingest(&events).unwrap();
        // Narrow range: one day out of three purley partitions.
        let hits = disk.query(
            Platform::IntelPurley,
            SimTime::from_secs(86_400),
            SimTime::from_secs(2 * 86_400),
        );
        assert!(!hits.is_empty());
        let (scanned, total) = disk.prune_stats();
        assert!(
            scanned < total,
            "narrow query must prune: scanned {scanned} of {total}"
        );
        assert_eq!(scanned, 1, "one day-partition covers the range");
        assert_eq!(total, 3, "purley holds three day-partitions");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_lake_ignores_torn_partition_appends() {
        let root = test_dir("torn");
        let disk = DiskLake::open(&root).unwrap();
        let events = fleet(&mut |id, p, s| {
            disk.register_dimm(id, p, s).unwrap();
        });
        disk.ingest(&events).unwrap();
        let reference = disk.query(
            Platform::IntelPurley,
            SimTime::ZERO,
            SimTime::from_secs(u64::MAX),
        );
        drop(disk);
        // Crash mid-append: garbage past the committed length of one
        // partition file. Reopen must ignore it entirely.
        let victim = root.join(partition_file((Platform::IntelPurley, 0)));
        let mut f = fs::OpenOptions::new().append(true).open(&victim).unwrap();
        f.write_all(&[0xFF; 37]).unwrap();
        drop(f);
        let reopened = DiskLake::open(&root).unwrap();
        assert_eq!(
            reopened.query(
                Platform::IntelPurley,
                SimTime::ZERO,
                SimTime::from_secs(u64::MAX)
            ),
            reference,
            "torn append must not change committed query results"
        );
        // A partition truncated *below* its committed length is real
        // corruption and must be detected, not silently served short.
        let data = fs::read(&victim).unwrap();
        fs::write(&victim, &data[..3]).unwrap();
        assert!(matches!(DiskLake::open(&root), Err(LakeError::Corrupt(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_lake_exports_an_in_memory_lake() {
        let mem = DataLake::new();
        let events = fleet(&mut |id, p, s| {
            mem.register_dimm(id, p, s);
        });
        mem.ingest(&events);
        let root = test_dir("export");
        let disk = DiskLake::from_memory(&root, &mem).unwrap();
        let back = disk.to_memory();
        assert_eq!(back.len(), mem.len());
        assert_eq!(back.catalog_len(), mem.catalog_len());
        assert_eq!(
            back.query(
                Platform::IntelPurley,
                SimTime::ZERO,
                SimTime::from_secs(u64::MAX)
            ),
            mem.query(
                Platform::IntelPurley,
                SimTime::ZERO,
                SimTime::from_secs(u64::MAX)
            )
        );
        // Exporting onto a non-empty root is refused.
        assert!(matches!(
            DiskLake::from_memory(&root, &mem),
            Err(LakeError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn catalog_queries() {
        let lake = DataLake::new();
        lake.register_dimm(DimmId::new(1, 0), Platform::K920, DimmSpec::default());
        lake.register_dimm(DimmId::new(2, 0), Platform::K920, DimmSpec::default());
        lake.register_dimm(
            DimmId::new(3, 0),
            Platform::IntelPurley,
            DimmSpec::default(),
        );
        assert_eq!(lake.catalog_len(), 3);
        assert_eq!(lake.platform_dimms(Platform::K920).len(), 2);
        assert!(lake.dimm_info(DimmId::new(3, 0)).is_some());
        assert!(lake.dimm_info(DimmId::new(9, 9)).is_none());
    }
}
