//! The data lake: the landing zone of the data pipeline (paper §VII).
//!
//! BMC collectors ship encoded event logs; the lake stores them
//! partitioned by platform and simulated day, alongside the DIMM
//! specification catalog, and serves range queries to the feature store.

use mfp_dram::address::DimmId;
use mfp_dram::bmc::{BmcLog, DecodeError};
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::SimTime;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Partition key: (platform, day index).
type PartitionKey = (Platform, u64);

/// An append-only, partitioned event store with a DIMM catalog.
///
/// Thread-safe: ingestion and queries may run concurrently (the online
/// prediction path reads while collectors write).
#[derive(Debug, Default)]
pub struct DataLake {
    partitions: RwLock<BTreeMap<PartitionKey, Vec<MemEvent>>>,
    catalog: RwLock<BTreeMap<DimmId, (Platform, DimmSpec)>>,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        DataLake::default()
    }

    /// Registers a DIMM's static specification (the memory-specification
    /// records the BMC reports at boot).
    pub fn register_dimm(&self, id: DimmId, platform: Platform, spec: DimmSpec) {
        self.catalog.write().insert(id, (platform, spec));
    }

    /// Looks up a DIMM's platform and spec.
    pub fn dimm_info(&self, id: DimmId) -> Option<(Platform, DimmSpec)> {
        self.catalog.read().get(&id).copied()
    }

    /// Number of catalogued DIMMs.
    pub fn catalog_len(&self) -> usize {
        self.catalog.read().len()
    }

    /// Ingests already-decoded events; unknown DIMMs are rejected into the
    /// returned count (data-quality signal for monitoring).
    pub fn ingest(&self, events: &[MemEvent]) -> usize {
        let catalog = self.catalog.read();
        let mut parts = self.partitions.write();
        let mut rejected = 0;
        for e in events {
            match catalog.get(&e.dimm()) {
                Some((platform, _)) => {
                    parts
                        .entry((*platform, e.time().as_days()))
                        .or_default()
                        .push(*e);
                }
                None => rejected += 1,
            }
        }
        rejected
    }

    /// Ingests a binary-encoded BMC log (the wire format collectors ship).
    ///
    /// # Errors
    ///
    /// Returns the decode error when the payload is malformed.
    pub fn ingest_encoded(&self, payload: &[u8]) -> Result<usize, DecodeError> {
        let log = BmcLog::decode(payload)?;
        Ok(self.ingest(log.events()))
    }

    /// Total stored events.
    pub fn len(&self) -> usize {
        self.partitions.read().values().map(Vec::len).sum()
    }

    /// True when the lake holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events of one platform in `[from, to)`, time-sorted.
    pub fn query(&self, platform: Platform, from: SimTime, to: SimTime) -> Vec<MemEvent> {
        let parts = self.partitions.read();
        let mut out: Vec<MemEvent> = Vec::new();
        for day in from.as_days()..=to.as_days() {
            if let Some(events) = parts.get(&(platform, day)) {
                out.extend(
                    events
                        .iter()
                        .filter(|e| e.time() >= from && e.time() < to)
                        .copied(),
                );
            }
        }
        out.sort_by_key(|e| e.time());
        out
    }

    /// DIMMs of one platform present in the catalog.
    pub fn platform_dimms(&self, platform: Platform) -> Vec<(DimmId, DimmSpec)> {
        self.catalog
            .read()
            .iter()
            .filter(|(_, (p, _))| *p == platform)
            .map(|(id, (_, spec))| (*id, *spec))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;

    fn ce(t: u64, dimm: DimmId) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0)]),
        })
    }

    #[test]
    fn ingest_requires_catalog() {
        let lake = DataLake::new();
        let id = DimmId::new(1, 0);
        let rejected = lake.ingest(&[ce(10, id)]);
        assert_eq!(rejected, 1);
        assert!(lake.is_empty());

        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        let rejected = lake.ingest(&[ce(10, id)]);
        assert_eq!(rejected, 0);
        assert_eq!(lake.len(), 1);
    }

    #[test]
    fn query_filters_time_and_platform() {
        let lake = DataLake::new();
        let a = DimmId::new(1, 0);
        let b = DimmId::new(2, 0);
        lake.register_dimm(a, Platform::IntelPurley, DimmSpec::default());
        lake.register_dimm(b, Platform::K920, DimmSpec::default());
        lake.ingest(&[ce(10, a), ce(100_000, a), ce(20, b)]);

        let purley = lake.query(
            Platform::IntelPurley,
            SimTime::from_secs(0),
            SimTime::from_secs(1_000),
        );
        assert_eq!(purley.len(), 1);
        assert_eq!(purley[0].time().as_secs(), 10);
        let k920 = lake.query(
            Platform::K920,
            SimTime::from_secs(0),
            SimTime::from_secs(1_000_000),
        );
        assert_eq!(k920.len(), 1);
    }

    #[test]
    fn encoded_roundtrip_through_lake() {
        let lake = DataLake::new();
        let id = DimmId::new(7, 1);
        lake.register_dimm(id, Platform::IntelWhitley, DimmSpec::default());
        let log: BmcLog = vec![ce(5, id), ce(6, id)].into_iter().collect();
        let n = lake.ingest_encoded(&log.encode()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(lake.len(), 2);
        assert!(lake.ingest_encoded(b"garbage").is_err());
    }

    #[test]
    fn catalog_queries() {
        let lake = DataLake::new();
        lake.register_dimm(DimmId::new(1, 0), Platform::K920, DimmSpec::default());
        lake.register_dimm(DimmId::new(2, 0), Platform::K920, DimmSpec::default());
        lake.register_dimm(
            DimmId::new(3, 0),
            Platform::IntelPurley,
            DimmSpec::default(),
        );
        assert_eq!(lake.catalog_len(), 3);
        assert_eq!(lake.platform_dimms(Platform::K920).len(), 2);
        assert!(lake.dimm_info(DimmId::new(3, 0)).is_some());
        assert!(lake.dimm_info(DimmId::new(9, 9)).is_none());
    }
}
