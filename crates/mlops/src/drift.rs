//! Feature-drift detection via the Population Stability Index (PSI).
//!
//! Server configurations, CPU generations and workloads change over a
//! fleet's lifetime (paper §I, §VII); the monitoring layer compares the
//! live feature distribution against the training snapshot and triggers
//! retraining when drift exceeds a threshold.

use mfp_features::dataset::SampleSet;
use serde::{Deserialize, Serialize};

/// PSI of one feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDrift {
    /// Feature name.
    pub name: String,
    /// Population Stability Index (0 = identical distributions).
    pub psi: f64,
}

/// Drift report over a whole feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Per-feature PSI, in schema order **with excluded features
    /// omitted** — when an exclusion list is in effect, `features[i]`
    /// does not align with `schema[i]`. Every entry carries its feature
    /// name; match by [`FeatureDrift::name`], never by index.
    pub features: Vec<FeatureDrift>,
}

impl DriftReport {
    /// Maximum PSI across features.
    pub fn max_psi(&self) -> f64 {
        self.features.iter().map(|f| f.psi).fold(0.0, f64::max)
    }

    /// Mean PSI across features.
    pub fn mean_psi(&self) -> f64 {
        if self.features.is_empty() {
            return 0.0;
        }
        self.features.iter().map(|f| f.psi).sum::<f64>() / self.features.len() as f64
    }

    /// Industry rule of thumb: PSI > 0.2 on any feature = major shift.
    pub fn drifted(&self, threshold: f64) -> bool {
        self.max_psi() > threshold
    }
}

/// Computes PSI per feature between a reference (training) sample set and a
/// live window, using `bins` quantile buckets of the reference.
///
/// An empty reference has no distribution to compare against: the report
/// comes back empty (no panic).
///
/// # Panics
///
/// Panics when the sets' schemas differ.
pub fn psi_report(reference: &SampleSet, live: &SampleSet, bins: usize) -> DriftReport {
    psi_report_excluding(reference, live, bins, &[])
}

/// [`psi_report`] with an exclusion list — lifetime-cumulative features
/// (see [`mfp_features::extract::CUMULATIVE_FEATURES`]) drift between any
/// two windows by construction and would permanently trip the monitor.
///
/// Excluded features are *omitted* from [`DriftReport::features`] (the
/// report is shorter than the schema); consumers must match entries by
/// name.
///
/// # Panics
///
/// Panics when the sets' schemas differ.
pub fn psi_report_excluding(
    reference: &SampleSet,
    live: &SampleSet,
    bins: usize,
    exclude: &[&str],
) -> DriftReport {
    assert_eq!(reference.schema, live.schema, "schema mismatch");
    mfp_obs::counter("mlops_drift_checks", &[]).incr();
    if reference.is_empty() {
        // No reference distribution — quantile edges would be undefined
        // (and `len() - 1` below would underflow).
        return DriftReport {
            features: Vec::new(),
        };
    }
    let bins = bins.clamp(2, 50);
    let d = reference.dim();
    let mut features = Vec::with_capacity(d);
    for f in 0..d {
        if exclude.contains(&reference.schema[f].as_str()) {
            continue;
        }
        let mut ref_vals: Vec<f32> = (0..reference.len()).map(|i| reference.row(i)[f]).collect();
        ref_vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // Quantile edges over the reference.
        let mut edges: Vec<f32> = (1..bins)
            .map(|k| ref_vals[(k * (ref_vals.len() - 1)) / bins])
            .collect();
        edges.dedup();
        let bucket = |v: f32| edges.partition_point(|&e| e < v);
        let n_buckets = edges.len() + 1;
        let mut ref_counts = vec![0usize; n_buckets];
        let mut live_counts = vec![0usize; n_buckets];
        for &v in &ref_vals {
            ref_counts[bucket(v)] += 1;
        }
        for i in 0..live.len() {
            live_counts[bucket(live.row(i)[f])] += 1;
        }
        let psi = psi_from_counts(&ref_counts, &live_counts);
        features.push(FeatureDrift {
            name: reference.schema[f].clone(),
            psi,
        });
    }
    let report = DriftReport { features };
    mfp_obs::gauge("mlops_drift_max_psi", &[]).set(report.max_psi());
    report
}

/// PSI between two histograms (with epsilon smoothing).
fn psi_from_counts(reference: &[usize], live: &[usize]) -> f64 {
    let rn: f64 = reference.iter().sum::<usize>() as f64;
    let ln: f64 = live.iter().sum::<usize>() as f64;
    if rn == 0.0 || ln == 0.0 {
        return 0.0;
    }
    let eps = 1e-4;
    reference
        .iter()
        .zip(live)
        .map(|(&r, &l)| {
            let p = (r as f64 / rn).max(eps);
            let q = (l as f64 / ln).max(eps);
            (q - p) * (q / p).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn gaussianish_set(seed: u64, n: usize, shift: f32) -> SampleSet {
        let mut s = SampleSet::new();
        s.schema = vec!["a".into(), "b".into()];
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let a: f32 = rng.random::<f32>() + shift;
            let b: f32 = rng.random::<f32>();
            s.push(vec![a, b], false, DimmId::new(i as u32, 0), SimTime::ZERO);
        }
        s
    }

    #[test]
    fn identical_distributions_have_low_psi() {
        let r = gaussianish_set(1, 2000, 0.0);
        let l = gaussianish_set(2, 2000, 0.0);
        let rep = psi_report(&r, &l, 10);
        assert!(rep.max_psi() < 0.05, "{}", rep.max_psi());
        assert!(!rep.drifted(0.2));
    }

    /// Looks a feature up by name — report entries are not index-aligned
    /// with the schema once exclusions apply.
    fn psi_of(rep: &DriftReport, name: &str) -> f64 {
        rep.features
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("feature {name:?} missing from report"))
            .psi
    }

    #[test]
    fn shifted_feature_is_flagged() {
        let r = gaussianish_set(1, 2000, 0.0);
        let l = gaussianish_set(2, 2000, 0.8);
        let rep = psi_report(&r, &l, 10);
        assert!(rep.drifted(0.2));
        // Only feature "a" shifted.
        assert!(psi_of(&rep, "a") > 0.5, "{}", psi_of(&rep, "a"));
        assert!(psi_of(&rep, "b") < 0.05, "{}", psi_of(&rep, "b"));
    }

    #[test]
    fn empty_reference_returns_empty_report() {
        // Regression: the quantile-edge computation underflowed
        // `ref_vals.len() - 1` and panicked on an empty reference.
        let mut r = SampleSet::new();
        r.schema = vec!["a".into(), "b".into()];
        let l = gaussianish_set(2, 50, 0.0);
        let mut live = SampleSet::new();
        live.schema = r.schema.clone();
        for rep in [psi_report(&r, &l, 10), psi_report(&r, &live, 10)] {
            assert!(rep.features.is_empty());
            assert_eq!(rep.max_psi(), 0.0);
            assert!(!rep.drifted(0.2));
        }
    }

    #[test]
    fn excluded_features_are_omitted_and_matched_by_name() {
        let r = gaussianish_set(1, 500, 0.0);
        let l = gaussianish_set(2, 500, 0.8);
        let rep = psi_report_excluding(&r, &l, 10, &["a"]);
        // Shorter than the schema: entry 0 is now "b", not "a".
        assert_eq!(rep.features.len(), r.schema.len() - 1);
        assert_eq!(rep.features[0].name, "b");
        assert!(rep.features.iter().all(|f| f.name != "a"));
        assert!(psi_of(&rep, "b") < 0.05);
    }

    #[test]
    fn constant_feature_is_harmless() {
        let mut r = SampleSet::new();
        r.schema = vec!["c".into()];
        let mut l = r.clone();
        for i in 0..100 {
            r.push(vec![1.0], false, DimmId::new(i, 0), SimTime::ZERO);
            l.push(vec![1.0], false, DimmId::new(i, 0), SimTime::ZERO);
        }
        let rep = psi_report(&r, &l, 10);
        assert!(rep.max_psi() < 1e-9);
    }

    #[test]
    fn mean_and_max_aggregate() {
        let rep = DriftReport {
            features: vec![
                FeatureDrift {
                    name: "x".into(),
                    psi: 0.1,
                },
                FeatureDrift {
                    name: "y".into(),
                    psi: 0.3,
                },
            ],
        };
        assert_eq!(rep.max_psi(), 0.3);
        assert!((rep.mean_psi() - 0.2).abs() < 1e-12);
    }
}
