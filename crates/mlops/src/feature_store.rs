//! The feature store (paper §VII): transformation, storage, cataloging and
//! serving of features for training (batch) and online prediction
//! (streaming).
//!
//! Train/serve consistency is by construction: both paths call the same
//! `mfp-features` extraction code — and [`FeatureStore::consistency_check`]
//! verifies it empirically, the check data scientists run before promoting
//! a model.

use crate::lake::DataLake;
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::dataset::SampleSet;
use mfp_features::extract::{extract_features, feature_names};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::history::DimmHistory;
use mfp_features::labeling::ProblemConfig;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Catalog entry describing a registered feature view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureView {
    /// View name, e.g. `"memfail/v1"`.
    pub name: String,
    /// Monotonic version.
    pub version: u32,
    /// Feature names served by this view.
    pub schema: Vec<String>,
    /// Free-form description for the catalog.
    pub description: String,
}

/// Per-DIMM rolling state for the streaming path.
#[derive(Debug, Clone, Default)]
struct DimmStream {
    /// Events inside the retention window, time-ordered.
    events: Vec<MemEvent>,
}

/// The feature store.
#[derive(Debug)]
pub struct FeatureStore {
    problem: ProblemConfig,
    thresholds: FaultThresholds,
    retention: SimDuration,
    views: RwLock<Vec<FeatureView>>,
    streams: RwLock<BTreeMap<DimmId, DimmStream>>,
}

impl FeatureStore {
    /// Creates a store for the given problem formulation.
    pub fn new(problem: ProblemConfig, thresholds: FaultThresholds) -> Self {
        let retention = SimDuration::days(30).max(problem.observation);
        let store = FeatureStore {
            problem,
            thresholds,
            retention,
            views: RwLock::new(Vec::new()),
            streams: RwLock::new(BTreeMap::new()),
        };
        store.register_view(
            "memfail",
            "CE spatio-temporal + error-bit + static DIMM features for UE prediction",
        );
        store
    }

    /// The problem formulation this store serves.
    pub fn problem(&self) -> &ProblemConfig {
        &self.problem
    }

    /// Registers (a new version of) a feature view in the catalog.
    pub fn register_view(&self, name: &str, description: &str) -> FeatureView {
        let mut views = self.views.write();
        let version = views.iter().filter(|v| v.name == name).count() as u32 + 1;
        let view = FeatureView {
            name: name.to_string(),
            version,
            schema: feature_names(),
            description: description.to_string(),
        };
        views.push(view.clone());
        view
    }

    /// Catalog of registered views.
    pub fn views(&self) -> Vec<FeatureView> {
        self.views.read().clone()
    }

    /// **Batch transformation**: materializes a labelled training set for a
    /// platform from lake data in `[from, to)`.
    ///
    /// Labels need UE visibility up to `to + lead + prediction`, so this is
    /// only used for historical (training) ranges.
    pub fn materialize(
        &self,
        lake: &DataLake,
        platform: Platform,
        from: SimTime,
        to: SimTime,
    ) -> SampleSet {
        let span = mfp_obs::latency("feature_store_materialize_seconds", &[]).time();
        let label_horizon = to + self.problem.lead + self.problem.prediction;
        let events = lake.query(platform, SimTime::ZERO, label_horizon);
        let mut by_dimm: BTreeMap<DimmId, Vec<&MemEvent>> = BTreeMap::new();
        for e in &events {
            by_dimm.entry(e.dimm()).or_default().push(e);
        }
        let mut set = SampleSet::new();
        for (dimm, evs) in by_dimm {
            let Some((_, spec)) = lake.dimm_info(dimm) else {
                continue;
            };
            let history = DimmHistory::new(&evs);
            let horizon = label_horizon - SimTime::ZERO;
            for t in self.problem.sample_times(&history, horizon) {
                if t < from || t >= to {
                    continue;
                }
                let Some(label) = self.problem.label_at(t, history.first_ue()) else {
                    continue;
                };
                let row = extract_features(&history, &spec, t, &self.problem, &self.thresholds);
                set.push(row, label, dimm, t);
            }
        }
        // Same series the batch assembler reports, so dashboards see total
        // samples produced regardless of which path built them.
        let p = platform.to_string();
        mfp_obs::counter("features_samples_assembled", &[("platform", p.as_str())])
            .add(set.len() as u64);
        span.stop();
        set
    }

    /// **Stream transformation**: folds one event into the online state.
    ///
    /// The stream stays time-ordered even when events arrive slightly out
    /// of order (a bounded-lateness ingestor may legally release equal or
    /// near-equal timestamps in arrival order): late events are inserted
    /// at their timestamp position. Events older than the retention
    /// cutoff are dropped outright — never spliced into a window that has
    /// already been evicted around them.
    pub fn stream_ingest(&self, event: &MemEvent) {
        let mut streams = self.streams.write();
        let s = streams.entry(event.dimm()).or_default();
        let t = event.time();
        let latest = s.events.last().map_or(t, |e| e.time().max(t));
        let cutoff = latest.saturating_sub(self.retention);
        if t < cutoff {
            mfp_obs::counter("feature_store_stale_dropped", &[]).incr();
            return;
        }
        if s.events.last().is_some_and(|e| t < e.time()) {
            // Out-of-order arrival: sorted insert, after equal timestamps.
            let pos = s.events.partition_point(|e| e.time() <= t);
            s.events.insert(pos, *event);
            mfp_obs::counter("feature_store_out_of_order", &[]).incr();
        } else {
            s.events.push(*event);
        }
        // Evict events older than the retention window.
        s.events.retain(|e| e.time() >= cutoff);
    }

    /// Exports every per-DIMM stream (checkpoint support): the complete
    /// online rolling state, time-ordered within each DIMM.
    pub fn export_streams(&self) -> Vec<(DimmId, Vec<MemEvent>)> {
        self.streams
            .read()
            .iter()
            .map(|(id, s)| (*id, s.events.clone()))
            .collect()
    }

    /// Replaces the per-DIMM streams with previously exported state
    /// (checkpoint restore). Streams are installed verbatim — restoring
    /// an export into a fresh store reproduces serving bit-for-bit.
    pub fn import_streams(&self, streams: Vec<(DimmId, Vec<MemEvent>)>) {
        let mut map = self.streams.write();
        map.clear();
        for (id, events) in streams {
            map.insert(id, DimmStream { events });
        }
    }

    /// **Serving**: the current feature row of a DIMM at time `now`, or
    /// `None` when the DIMM has no recent activity.
    pub fn serve(&self, lake: &DataLake, dimm: DimmId, now: SimTime) -> Option<Vec<f32>> {
        let streams = self.streams.read();
        let s = streams.get(&dimm)?;
        if s.events.is_empty() {
            return None;
        }
        let (_, spec) = lake.dimm_info(dimm)?;
        let refs: Vec<&MemEvent> = s.events.iter().collect();
        let history = DimmHistory::new(&refs);
        Some(extract_features(
            &history,
            &spec,
            now,
            &self.problem,
            &self.thresholds,
        ))
    }

    /// DIMMs with at least one CE in the observation window ending at
    /// `now` — the candidates the online predictor re-scores.
    pub fn active_dimms(&self, now: SimTime) -> Vec<DimmId> {
        let from = now.saturating_sub(self.problem.observation);
        self.streams
            .read()
            .iter()
            .filter(|(_, s)| {
                s.events
                    .iter()
                    .any(|e| e.as_ce().is_some() && e.time() >= from && e.time() < now)
            })
            .map(|(id, _)| *id)
            .collect()
    }

    /// Train/serve consistency check: replays a DIMM's lake events through
    /// the streaming path and compares the served vector against the batch
    /// extraction at the same instant. Returns the max absolute difference
    /// (0.0 means perfectly consistent).
    ///
    /// Note: consistency holds exactly when the serving time is within the
    /// retention window of the DIMM's oldest event; `ce_total`-style
    /// lifetime counters can differ beyond it, which this check surfaces.
    pub fn consistency_check(
        &self,
        lake: &DataLake,
        platform: Platform,
        dimm: DimmId,
        at: SimTime,
    ) -> Option<f32> {
        let (_, spec) = lake.dimm_info(dimm)?;
        let events = lake.query(platform, SimTime::ZERO, at);
        let dimm_events: Vec<&MemEvent> = events.iter().filter(|e| e.dimm() == dimm).collect();
        if dimm_events.is_empty() {
            return None;
        }
        // Batch path.
        let history = DimmHistory::new(&dimm_events);
        let batch = extract_features(&history, &spec, at, &self.problem, &self.thresholds);
        // Streaming path (fresh replay in an isolated store).
        let replay = FeatureStore::new(self.problem, self.thresholds);
        for e in &dimm_events {
            replay.stream_ingest(e);
        }
        let served = replay.serve(lake, dimm, at)?;
        Some(
            batch
                .iter()
                .zip(&served)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use mfp_dram::spec::DimmSpec;

    fn ce(t: u64, dimm: DimmId) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0)]),
        })
    }

    fn store() -> FeatureStore {
        FeatureStore::new(ProblemConfig::default(), FaultThresholds::default())
    }

    #[test]
    fn view_catalog_versions() {
        let s = store();
        assert_eq!(s.views().len(), 1);
        let v2 = s.register_view("memfail", "updated");
        assert_eq!(v2.version, 2);
        let other = s.register_view("other", "x");
        assert_eq!(other.version, 1);
        assert_eq!(s.views().len(), 3);
    }

    #[test]
    fn streaming_serves_features() {
        let lake = DataLake::new();
        let id = DimmId::new(1, 0);
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        let s = store();
        assert!(s.serve(&lake, id, SimTime::from_secs(100)).is_none());
        s.stream_ingest(&ce(50, id));
        let row = s.serve(&lake, id, SimTime::from_secs(100)).unwrap();
        assert_eq!(row.len(), mfp_features::extract::FEATURE_DIM);
    }

    #[test]
    fn retention_evicts_old_events() {
        let s = store();
        let id = DimmId::new(1, 0);
        s.stream_ingest(&ce(0, id));
        s.stream_ingest(&ce(40 * 86_400, id)); // 40 days later
        let streams = s.streams.read();
        assert_eq!(streams[&id].events.len(), 1, "old event must be evicted");
    }

    #[test]
    fn out_of_order_ingest_keeps_streams_sorted() {
        let s = store();
        let id = DimmId::new(1, 0);
        s.stream_ingest(&ce(1_000, id));
        s.stream_ingest(&ce(3_000, id));
        s.stream_ingest(&ce(2_000, id)); // late arrival within retention
        let streams = s.streams.read();
        let times: Vec<u64> = streams[&id]
            .events
            .iter()
            .map(|e| e.time().as_secs())
            .collect();
        assert_eq!(times, vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn pre_retention_stragglers_are_dropped() {
        let s = store();
        let id = DimmId::new(1, 0);
        s.stream_ingest(&ce(40 * 86_400, id));
        // A straggler from before the retention cutoff must not resurrect
        // evicted history.
        s.stream_ingest(&ce(100, id));
        let streams = s.streams.read();
        assert_eq!(streams[&id].events.len(), 1);
        assert_eq!(streams[&id].events[0].time().as_days(), 40);
    }

    #[test]
    fn export_import_roundtrips_serving() {
        let lake = DataLake::new();
        let id = DimmId::new(5, 0);
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        let s = store();
        for t in [1_000, 5_000, 60_000] {
            s.stream_ingest(&ce(t, id));
        }
        let at = SimTime::from_secs(100_000);
        let row = s.serve(&lake, id, at).unwrap();
        let restored = store();
        restored.import_streams(s.export_streams());
        assert_eq!(restored.serve(&lake, id, at).unwrap(), row);
        assert_eq!(restored.active_dimms(at), s.active_dimms(at));
    }

    #[test]
    fn active_dimms_require_recent_ces() {
        let s = store();
        let a = DimmId::new(1, 0);
        let b = DimmId::new(2, 0);
        s.stream_ingest(&ce(100, a));
        s.stream_ingest(&ce(20 * 86_400, b));
        let now = SimTime::from_secs(20 * 86_400 + 100);
        let active = s.active_dimms(now);
        assert_eq!(active, vec![b], "only b has CEs inside the window");
    }

    #[test]
    fn batch_and_stream_agree() {
        let lake = DataLake::new();
        let id = DimmId::new(3, 1);
        lake.register_dimm(id, Platform::K920, DimmSpec::default());
        lake.ingest(&[ce(1_000, id), ce(2_000, id), ce(90_000, id)]);
        let s = store();
        let diff = s
            .consistency_check(&lake, Platform::K920, id, SimTime::from_secs(100_000))
            .unwrap();
        assert_eq!(diff, 0.0, "train/serve skew detected");
    }

    #[test]
    fn materialize_builds_labelled_samples() {
        let lake = DataLake::new();
        let id = DimmId::new(4, 0);
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        // CEs across several days.
        let events: Vec<MemEvent> = (1..10).map(|d| ce(d * 86_400, id)).collect();
        lake.ingest(&events);
        let s = store();
        let set = s.materialize(
            &lake,
            Platform::IntelPurley,
            SimTime::ZERO,
            SimTime::from_secs(15 * 86_400),
        );
        assert!(!set.is_empty());
        assert!(set.labels.iter().all(|&l| !l), "no UE: all negative");
    }
}
