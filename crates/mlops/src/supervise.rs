//! Shard supervision: restartable serving units with crash capture,
//! hang detection, deterministic backoff and poison-record quarantine.
//!
//! [`crate::wal::ShardedDurable`] gives every shard its own log and
//! checkpoint chain (the `MFW2` layout), but leaves the caller to decide
//! what happens when a shard misbehaves. This module is that decision:
//! a [`Supervisor`] runs each [`crate::wal::DurableShard`] as a
//! restartable unit and keeps the *fleet* serving while individual
//! shards crash, hang or choke on poison records.
//!
//! # Policy
//!
//! * **Panic capture.** Every state mutation runs inside
//!   `catch_unwind`: a panicking apply is converted into a
//!   [`crate::wal::ApplyVerdict::Crashed`] verdict, the unit is dropped,
//!   and recovery replays its own WAL — the crashing output was durable
//!   *before* it was applied, so nothing is lost.
//! * **Hang detection.** Time is logical (one tick per output of the
//!   canonical stream). A unit that stops heartbeating for
//!   [`SuperviseConfig::heartbeat_timeout`] ticks is killed and
//!   restarted; its un-consumed outputs are re-fed from the
//!   supervisor's routed backlog.
//! * **Bounded deterministic backoff.** The `n`-th restart of a shard
//!   waits `min(backoff_base << (n-1), backoff_cap)` ticks. After
//!   [`SuperviseConfig::max_restarts`] the shard is marked failed and
//!   the fleet degrades gracefully: merged output is the output of the
//!   live shards (routing is a pure DIMM hash, so a dead shard never
//!   silences a live one's DIMMs).
//! * **Quarantine.** An output that crashes the same shard
//!   [`SuperviseConfig::quarantine_after`] times is appended to the
//!   shard's `quarantine.log` and skipped from then on — including by
//!   recovery after a real process death, because the side log is read
//!   back at open. Deleting the file is the operator's escape hatch.
//!
//! # Determinism
//!
//! Everything the supervisor does is a function of the canonical output
//! stream and the injected [`ChaosPlan`]: logical time, routing,
//! backoff, and quarantine decisions contain no wall clocks and no real
//! randomness. That is what makes the crash-chaos gate meaningful —
//! after *any* seeded schedule of kills, hangs, torn WAL tails and
//! transient panics, the merged alarms and scores must be bit-identical
//! to an uncrashed sequential oracle (permanently poisoned outputs
//! excepted: those compare against the oracle fed the filtered stream).

use crate::feature_store::FeatureStore;
use crate::ingest::IngestOutput;
use crate::lake::DataLake;
use crate::online::{Alarm, OnlineConfig, OnlinePredictor, ScoreRecord};
use crate::registry::ModelRegistry;
use crate::serve::shard_route;
use crate::wal::{
    check_meta, quarantine_output, shard_dir, ApplyVerdict, DurableConfig, DurableShard,
    FlushStatus, WalError,
};
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimTime;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

/// Marker carried by every chaos-injected panic payload; the process
/// panic hook stays silent for payloads containing it so chaos sweeps
/// don't spray backtraces over test output.
pub const CHAOS_PANIC: &str = "chaos-injected panic";

/// Installs (once per process) a panic hook that swallows chaos-injected
/// panics and forwards everything else to the previous hook.
pub(crate) fn silence_chaos_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("chaos-injected") {
                prev(info);
            }
        }));
    });
}

/// SplitMix64 — the repo's dependency-free PRNG, used here to derive
/// chaos schedules from a seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Kill the unit outright and tear the last `torn_bytes` bytes off
    /// its WAL (simulating a power cut mid-append).
    Kill {
        /// Bytes ripped off the WAL tail, clamped to the file size.
        torn_bytes: u64,
    },
    /// The unit stops making progress; the supervisor's heartbeat check
    /// must notice and kill it.
    Hang,
    /// The next output routed to the shard panics the apply `fails`
    /// times before succeeding (a transient poison — capped below the
    /// quarantine threshold so recovery converges to the full oracle).
    Panic {
        /// Crashes before the output finally applies.
        fails: u32,
    },
    /// The next output routed to the shard panics the apply *every*
    /// time — a permanent poison record that only quarantine (or a
    /// restart-budget failure) resolves.
    Poison,
}

/// One scheduled failure: fires just before output `at_output` of the
/// canonical stream is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Global index into the canonical output stream.
    pub at_output: u64,
    /// Target shard.
    pub shard: usize,
    /// What happens.
    pub kind: ChaosKind,
}

/// A deterministic failure schedule over shard × logical time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Events sorted by `(at_output, shard)`.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// The empty schedule: nothing fails.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// A seed-derived schedule of `events` kills, hangs and transient
    /// panics over `shards` shards and a stream of `stream_len` outputs.
    /// Panic counts are drawn from `1..=max_panic_fails`; the supervisor
    /// additionally caps accumulated fails below its quarantine
    /// threshold, so every seeded schedule converges to the full oracle.
    /// Permanent [`ChaosKind::Poison`] events are never generated here —
    /// inject those explicitly when testing quarantine.
    pub fn seeded(
        seed: u64,
        shards: usize,
        stream_len: usize,
        events: usize,
        max_panic_fails: u32,
    ) -> Self {
        let mut rng = seed ^ 0xC3A5_C85C_97CB_3127;
        let mut evs = Vec::with_capacity(events);
        for _ in 0..events {
            let at_output = if stream_len == 0 {
                0
            } else {
                splitmix(&mut rng) % stream_len as u64
            };
            let shard = (splitmix(&mut rng) % shards.max(1) as u64) as usize;
            let kind = match splitmix(&mut rng) % 3 {
                0 => ChaosKind::Kill {
                    torn_bytes: splitmix(&mut rng) % 64,
                },
                1 => ChaosKind::Hang,
                _ => ChaosKind::Panic {
                    fails: 1 + (splitmix(&mut rng) % u64::from(max_panic_fails.max(1))) as u32,
                },
            };
            evs.push(ChaosEvent {
                at_output,
                shard,
                kind,
            });
        }
        evs.sort_by_key(|e| (e.at_output, e.shard));
        ChaosPlan { events: evs }
    }
}

/// Supervision policy knobs. Time is logical: one tick per output of
/// the canonical stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Ticks a hung unit survives before the supervisor kills it.
    pub heartbeat_timeout: u64,
    /// First-restart backoff delay, in ticks.
    pub backoff_base: u64,
    /// Upper bound on any backoff delay, in ticks.
    pub backoff_cap: u64,
    /// Restarts allowed per shard before it is marked failed.
    pub max_restarts: u32,
    /// Crashes at the same output before it is quarantined.
    pub quarantine_after: u32,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            heartbeat_timeout: 4,
            backoff_base: 1,
            backoff_cap: 16,
            max_restarts: 32,
            quarantine_after: 3,
        }
    }
}

/// What the supervisor saw and did over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Unit restarts (after crashes, kills and detected hangs).
    pub restarts: u64,
    /// Panics converted into crash verdicts by the apply guard.
    pub panics_caught: u64,
    /// Hung units detected by the heartbeat check.
    pub hangs_detected: u64,
    /// Injected kills that landed on a live unit.
    pub kills_injected: u64,
    /// Outputs re-applied from per-shard WALs across all restarts.
    pub replayed_outputs: u64,
    /// `(shard, per-shard seq)` of every output quarantined this run.
    pub quarantined: Vec<(usize, u64)>,
    /// Global stream indices of the quarantined outputs — subtract these
    /// from the canonical stream to build the degraded oracle.
    pub quarantined_outputs: Vec<u64>,
    /// Shards that exhausted their restart budget.
    pub failed_shards: Vec<usize>,
}

/// The merged fleet output of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Live shards' alarms merged by `(time, dimm)`.
    pub alarms: Vec<Alarm>,
    /// Live shards' score traces merged by `(time, dimm)` (empty unless
    /// [`DurableConfig::record_scores`]).
    pub scores: Vec<ScoreRecord>,
    /// Model invocations across live shards.
    pub scored: u64,
    /// Shards still up at the end of the run.
    pub live_shards: usize,
    /// Everything the supervisor did along the way.
    pub report: SupervisorReport,
}

/// A chaos injection waiting to bind to the next output routed to its
/// shard.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Transient(u32),
    Permanent,
}

/// Supervisor-side state of one shard that outlives its unit.
#[derive(Debug, Default)]
struct ShardCtl {
    restarts: u32,
    /// Crashes observed per per-shard sequence number; reaching
    /// `quarantine_after` triggers the side log.
    crash_counts: BTreeMap<u64, u32>,
    /// Armed injected panics per per-shard sequence number
    /// (`u32::MAX` = permanent poison).
    poison: BTreeMap<u64, u32>,
    pending: Vec<Pending>,
}

/// Lifecycle state of one shard's unit.
#[derive(Debug)]
enum Slot<'a> {
    /// Serving; fed every output routed to it.
    Up(Box<DurableShard<'a>>),
    /// Stopped making progress at tick `since`; killed once the
    /// heartbeat timeout elapses.
    Hung {
        since: u64,
        unit: Box<DurableShard<'a>>,
    },
    /// Waiting out its restart backoff.
    Down { until: u64 },
    /// Restart budget exhausted; permanently out of the merge.
    Failed,
}

/// The guarded apply: consult the armed-poison table, then run the real
/// apply under `catch_unwind`. Decrements transient poisons so each
/// retry makes progress; permanent poisons (`u32::MAX`) never decrement.
pub(crate) fn poison_guard<'g, 'a>(
    poison: &'g mut BTreeMap<u64, u32>,
) -> impl FnMut(&mut OnlinePredictor<'a>, &IngestOutput, u64) -> ApplyVerdict + 'g {
    move |predictor: &mut OnlinePredictor<'a>, out: &IngestOutput, seq: u64| {
        let armed = match poison.get_mut(&seq) {
            Some(fails) if *fails > 0 => {
                if *fails != u32::MAX {
                    *fails -= 1;
                }
                true
            }
            _ => false,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if armed {
                panic!("{CHAOS_PANIC} (seq {seq})");
            }
            predictor.apply(out);
        }));
        match result {
            Ok(_) => ApplyVerdict::Applied,
            Err(_) => ApplyVerdict::Crashed,
        }
    }
}

/// The `n`-th restart's exponential backoff delay: `base << (n - 1)`,
/// saturating instead of wrapping, clamped to `[1, cap]`.
///
/// The exponent is bounded *before* shifting: `checked_shl` only guards
/// against shifts ≥ 64, so `base << 63` for any base with more than one
/// set bit used to wrap the delay toward zero once a shard's restart
/// count grew pathologically large. Saturating at `u64::MAX` keeps the
/// delay monotonic in `n` so `min(cap)` always pins it to the cap.
pub(crate) fn bounded_backoff(base: u64, cap: u64, n: u32) -> u64 {
    let shift = n.saturating_sub(1);
    let delay = if base == 0 {
        0
    } else if shift > base.leading_zeros() {
        u64::MAX
    } else {
        base << shift
    };
    delay.min(cap).max(1)
}

/// Rips `torn_bytes` off the tail of a shard's WAL — the kill
/// injector's torn-append simulation. Tearing below the header is fine:
/// recovery rewrites it as an empty log and the supervisor re-feeds the
/// lost suffix from its routed backlog.
pub(crate) fn tear_wal_tail(dir: &Path, torn_bytes: u64) -> Result<(), WalError> {
    let path = dir.join("wal.log");
    let f = match OpenOptions::new().write(true).open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    let len = f.metadata()?.len();
    f.set_len(len.saturating_sub(torn_bytes))?;
    Ok(())
}

/// Runs one [`DurableShard`] per feature store as restartable units over
/// a canonical output stream, applying the policy in [`SuperviseConfig`]
/// and the injected failures of a [`ChaosPlan`].
#[derive(Debug)]
pub struct Supervisor<'a> {
    dir: PathBuf,
    lake: &'a DataLake,
    stores: &'a [FeatureStore],
    registry: &'a ModelRegistry,
    platform: Platform,
    online: OnlineConfig,
    durable: DurableConfig,
    cfg: SuperviseConfig,
}

impl<'a> Supervisor<'a> {
    /// Binds a supervisor to an `MFW2` root (created if absent) with one
    /// shard per store.
    ///
    /// # Errors
    ///
    /// I/O failures, or a root whose meta file disagrees with `stores`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dir: impl Into<PathBuf>,
        lake: &'a DataLake,
        stores: &'a [FeatureStore],
        registry: &'a ModelRegistry,
        platform: Platform,
        online: OnlineConfig,
        durable: DurableConfig,
        cfg: SuperviseConfig,
    ) -> Result<Self, WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        check_meta(&dir, stores.len())?;
        silence_chaos_panics();
        Ok(Supervisor {
            dir,
            lake,
            stores,
            registry,
            platform,
            online,
            durable,
            cfg,
        })
    }

    /// The shard's next backoff slot after its `n`-th restart.
    fn backoff(&self, n: u32) -> u64 {
        bounded_backoff(self.cfg.backoff_base, self.cfg.backoff_cap, n)
    }

    /// Books one restart against the shard's budget: a backoff slot, or
    /// [`Slot::Failed`] once the budget is spent.
    fn schedule_restart(
        &self,
        s: usize,
        now: u64,
        ctl: &mut ShardCtl,
        report: &mut SupervisorReport,
    ) -> Slot<'a> {
        ctl.restarts += 1;
        report.restarts += 1;
        if ctl.restarts > self.cfg.max_restarts {
            if !report.failed_shards.contains(&s) {
                report.failed_shards.push(s);
            }
            Slot::Failed
        } else {
            Slot::Down {
                until: now + self.backoff(ctl.restarts),
            }
        }
    }

    /// Accounts one caught crash at per-shard `seq`: bumps the crash
    /// counter, quarantines the output once it reaches the threshold,
    /// and schedules the restart.
    #[allow(clippy::too_many_arguments)]
    fn crash_slot(
        &self,
        s: usize,
        seq: u64,
        now: u64,
        outs: &[IngestOutput],
        routed_s: &[usize],
        ctl: &mut ShardCtl,
        report: &mut SupervisorReport,
    ) -> Result<Slot<'a>, WalError> {
        report.panics_caught += 1;
        let count = ctl.crash_counts.entry(seq).or_insert(0);
        *count += 1;
        if *count >= self.cfg.quarantine_after {
            if let Some(&gidx) = routed_s.get(seq as usize) {
                quarantine_output(&shard_dir(&self.dir, s), seq, &outs[gidx])?;
                report.quarantined.push((s, seq));
                report.quarantined_outputs.push(gidx as u64);
            }
        }
        Ok(self.schedule_restart(s, now, ctl, report))
    }

    /// (Re)opens shard `s` and catches it up to the supervisor's routed
    /// backlog. A crash during replay or catch-up books a restart and
    /// returns the shard to backoff instead.
    fn restart_shard(
        &self,
        s: usize,
        now: u64,
        outs: &[IngestOutput],
        routed_s: &[usize],
        ctl: &mut ShardCtl,
        report: &mut SupervisorReport,
    ) -> Result<Slot<'a>, WalError> {
        let crashed_seq;
        {
            let mut guard = poison_guard(&mut ctl.poison);
            let (mut unit, rep) = DurableShard::open(
                shard_dir(&self.dir, s),
                self.lake,
                &self.stores[s],
                self.registry,
                self.platform,
                self.online,
                self.durable,
                s,
                &mut guard,
            )?;
            report.replayed_outputs += rep.outputs_replayed;
            let mut crashed = rep.replay_crashed;
            if crashed.is_none() {
                let from = unit.fed() as usize;
                for &gidx in routed_s.get(from..).unwrap_or(&[]) {
                    match unit.push(outs[gidx], &mut guard)? {
                        FlushStatus::Clean => {}
                        FlushStatus::Crashed { seq } => {
                            crashed = Some(seq);
                            break;
                        }
                    }
                }
            }
            match crashed {
                None => return Ok(Slot::Up(Box::new(unit))),
                Some(seq) => crashed_seq = seq,
            }
        }
        self.crash_slot(s, crashed_seq, now, outs, routed_s, ctl, report)
    }

    /// One logical-time step of supervision housekeeping: kill hung
    /// units whose heartbeat timeout elapsed and restart units whose
    /// backoff expired.
    #[allow(clippy::too_many_arguments)]
    fn step_timers(
        &self,
        now: u64,
        outs: &[IngestOutput],
        routed: &[Vec<usize>],
        slots: &mut [Slot<'a>],
        ctl: &mut [ShardCtl],
        report: &mut SupervisorReport,
    ) -> Result<(), WalError> {
        for s in 0..slots.len() {
            let slot = std::mem::replace(&mut slots[s], Slot::Failed);
            slots[s] = match slot {
                Slot::Hung { since, unit } => {
                    if now.saturating_sub(since) >= self.cfg.heartbeat_timeout {
                        drop(unit);
                        report.hangs_detected += 1;
                        self.schedule_restart(s, now, &mut ctl[s], report)
                    } else {
                        Slot::Hung { since, unit }
                    }
                }
                Slot::Down { until } if now >= until => {
                    self.restart_shard(s, now, outs, &routed[s], &mut ctl[s], report)?
                }
                other => other,
            };
        }
        Ok(())
    }

    /// Feeds the canonical output stream through the supervised fleet
    /// under the injected failure schedule, then drains every restart
    /// and finishes prediction ticks up to `end`.
    ///
    /// For any schedule of kills, hangs, torn tails and *transient*
    /// panics, the outcome's merged alarms and scores are bit-identical
    /// to the uncrashed sequential oracle over the same stream; with
    /// permanent poisons, to the oracle over the stream minus
    /// [`SupervisorReport::quarantined_outputs`]; with failed shards, to
    /// the oracle restricted to live shards' DIMMs.
    ///
    /// # Errors
    ///
    /// Real I/O failures only — injected failures are the point and are
    /// absorbed by the supervision policy.
    pub fn run(
        &self,
        outs: &[IngestOutput],
        end: SimTime,
        plan: &ChaosPlan,
    ) -> Result<SupervisedOutcome, WalError> {
        let n = self.stores.len().max(1);
        let mut report = SupervisorReport::default();
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut ctl: Vec<ShardCtl> = (0..n).map(|_| ShardCtl::default()).collect();
        let mut slots: Vec<Slot<'a>> = Vec::with_capacity(n);
        for s in 0..n {
            let slot = self.restart_shard(s, 0, outs, &routed[s], &mut ctl[s], &mut report)?;
            slots.push(slot);
        }
        // The initial opens are recoveries, not restarts against the
        // budget: restart_shard only books crashes.

        let mut ev_i = 0usize;
        for (i, out) in outs.iter().enumerate() {
            let now = i as u64;
            self.step_timers(now, outs, &routed, &mut slots, &mut ctl, &mut report)?;

            // Fire this tick's injected failures.
            while ev_i < plan.events.len() && plan.events[ev_i].at_output <= now {
                let ev = plan.events[ev_i];
                ev_i += 1;
                if ev.shard >= n || ev.at_output < now {
                    continue;
                }
                match ev.kind {
                    ChaosKind::Kill { torn_bytes } => {
                        match std::mem::replace(&mut slots[ev.shard], Slot::Failed) {
                            Slot::Up(unit) | Slot::Hung { unit, .. } => {
                                drop(unit);
                                report.kills_injected += 1;
                                tear_wal_tail(&shard_dir(&self.dir, ev.shard), torn_bytes)?;
                                slots[ev.shard] = self.schedule_restart(
                                    ev.shard,
                                    now,
                                    &mut ctl[ev.shard],
                                    &mut report,
                                );
                            }
                            other => slots[ev.shard] = other,
                        }
                    }
                    ChaosKind::Hang => {
                        match std::mem::replace(&mut slots[ev.shard], Slot::Failed) {
                            Slot::Up(unit) => slots[ev.shard] = Slot::Hung { since: now, unit },
                            other => slots[ev.shard] = other,
                        }
                    }
                    ChaosKind::Panic { fails } => {
                        ctl[ev.shard].pending.push(Pending::Transient(fails));
                    }
                    ChaosKind::Poison => ctl[ev.shard].pending.push(Pending::Permanent),
                }
            }

            // Route the output; bind any pending poison to its per-shard
            // sequence number (a stable coordinate across restarts).
            let s = shard_route(out, n);
            let seq = routed[s].len() as u64;
            if !ctl[s].pending.is_empty() {
                let pending = std::mem::take(&mut ctl[s].pending);
                let e = ctl[s].poison.entry(seq).or_insert(0);
                for p in pending {
                    match p {
                        // Transient fails are capped below the quarantine
                        // threshold so stacked injections stay transient.
                        Pending::Transient(fails) => {
                            if *e != u32::MAX {
                                *e = (*e + fails).min(self.cfg.quarantine_after.saturating_sub(1));
                            }
                        }
                        Pending::Permanent => *e = u32::MAX,
                    }
                }
            }
            routed[s].push(i);

            let mut crashed: Option<u64> = None;
            if let Slot::Up(unit) = &mut slots[s] {
                // A recovered root can already cover this output (the
                // caller re-feeds from the start); skip what's covered.
                if seq >= unit.fed() {
                    let mut guard = poison_guard(&mut ctl[s].poison);
                    if let FlushStatus::Crashed { seq } = unit.push(*out, &mut guard)? {
                        crashed = Some(seq);
                    }
                }
            }
            if let Some(cseq) = crashed {
                drop(std::mem::replace(&mut slots[s], Slot::Failed));
                slots[s] =
                    self.crash_slot(s, cseq, now, outs, &routed[s], &mut ctl[s], &mut report)?;
            }
        }

        // Drain: expire every hang and backoff, catch shards up, and run
        // the final prediction ticks — re-entering the drain if a finish
        // flush crashes.
        let mut now = outs.len() as u64;
        loop {
            while slots
                .iter()
                .any(|sl| matches!(sl, Slot::Hung { .. } | Slot::Down { .. }))
            {
                self.step_timers(now, outs, &routed, &mut slots, &mut ctl, &mut report)?;
                now += 1;
            }
            let mut any_crash = false;
            for s in 0..n {
                let mut crashed: Option<u64> = None;
                if let Slot::Up(unit) = &mut slots[s] {
                    let mut guard = poison_guard(&mut ctl[s].poison);
                    if let FlushStatus::Crashed { seq } = unit.finish(end, &mut guard)? {
                        crashed = Some(seq);
                    }
                }
                if let Some(cseq) = crashed {
                    drop(std::mem::replace(&mut slots[s], Slot::Failed));
                    slots[s] =
                        self.crash_slot(s, cseq, now, outs, &routed[s], &mut ctl[s], &mut report)?;
                    any_crash = true;
                }
            }
            if !any_crash {
                break;
            }
            now += 1;
        }

        let mut alarms: Vec<Alarm> = Vec::new();
        let mut scores: Vec<ScoreRecord> = Vec::new();
        let mut scored = 0u64;
        let mut live_shards = 0usize;
        for sl in &slots {
            if let Slot::Up(unit) = sl {
                live_shards += 1;
                alarms.extend_from_slice(unit.alarms());
                scores.extend_from_slice(unit.score_trace());
                scored += unit.scored();
            }
        }
        alarms.sort_by_key(|a| (a.time, a.dimm));
        scores.sort_by_key(|r| (r.time, r.dimm));

        mfp_obs::counter("serve_shard_restarts", &[]).add(report.restarts);
        mfp_obs::counter("serve_shard_panics", &[]).add(report.panics_caught);
        mfp_obs::counter("serve_shard_hangs", &[]).add(report.hangs_detected);
        mfp_obs::counter("serve_shard_kills", &[]).add(report.kills_injected);
        mfp_obs::gauge("serve_live_shards", &[]).set(live_shards as f64);

        Ok(SupervisedOutcome {
            alarms,
            scores,
            scored,
            live_shards,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::GapRecord;
    use crate::serve::{make_stores, shard_of};
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeEvent, MemEvent};
    use mfp_dram::spec::DimmSpec;
    use mfp_features::fault_analysis::FaultThresholds;
    use mfp_features::labeling::ProblemConfig;
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::model::{Algorithm, Model};
    use mfp_ml::risky_ce::RiskyCePattern;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test invocation (parallel-safe).
    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "mfp_sup_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create scratch dir");
        d
    }

    fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
        let bits: Vec<(u8, u8)> = if flip {
            vec![(1, 20), (5, 21)]
        } else {
            vec![(1, 20)]
        };
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits(bits),
        })
    }

    fn setup(lake: &DataLake, registry: &ModelRegistry) -> Vec<DimmId> {
        let dimms: Vec<DimmId> = (0..8u32).map(|k| DimmId::new(k, (k % 2) as u8)).collect();
        for &id in &dimms {
            lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        }
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            Model::RiskyCe(RiskyCePattern::default()),
        );
        registry.promote(mid);
        dimms
    }

    /// A canonical ingest-output stream: time-ordered released events
    /// (half the fleet risky) with two collection gaps in the middle.
    fn outputs(dimms: &[DimmId]) -> Vec<IngestOutput> {
        let mut out: Vec<IngestOutput> = (0..20 * dimms.len() as u64)
            .map(|k| {
                let d = dimms[(k % dimms.len() as u64) as usize];
                IngestOutput::Released(risky_ce(1_000 + k * 1_800, d, d.server.0 % 2 == 0))
            })
            .collect();
        out.insert(
            40,
            IngestOutput::Gap(GapRecord {
                dimm: dimms[0],
                from: SimTime::from_secs(50_000),
                to: SimTime::from_secs(90_000),
            }),
        );
        out.insert(
            90,
            IngestOutput::Gap(GapRecord {
                dimm: dimms[3],
                from: SimTime::from_secs(120_000),
                to: SimTime::from_secs(170_000),
            }),
        );
        out
    }

    fn oracle(
        lake: &DataLake,
        registry: &ModelRegistry,
        outs: &[IngestOutput],
        end: SimTime,
    ) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            lake,
            &store,
            registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        p.set_score_trace(true);
        for out in outs {
            p.apply(out);
        }
        p.finish(end);
        (p.alarms().to_vec(), p.score_trace().to_vec(), p.scored())
    }

    fn traced() -> DurableConfig {
        DurableConfig {
            batch: 4,
            compact_every: u64::MAX,
            record_scores: true,
            ..DurableConfig::default()
        }
    }

    const END: SimTime = SimTime::from_secs(40 * 86_400);

    #[test]
    fn clean_supervised_run_matches_the_sequential_oracle() {
        for shards in [1usize, 2, 4] {
            let lake = DataLake::new();
            let registry = ModelRegistry::new();
            let dimms = setup(&lake, &registry);
            let outs = outputs(&dimms);
            let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, END);
            assert!(
                !ref_alarms.is_empty(),
                "oracle must alarm for the test to bite"
            );

            let dir = test_dir("clean");
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let sup = Supervisor::new(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                traced(),
                SuperviseConfig::default(),
            )
            .unwrap();
            let out = sup.run(&outs, END, &ChaosPlan::none()).unwrap();
            assert_eq!(out.alarms, ref_alarms, "{shards} shards: alarms");
            assert_eq!(out.scores, ref_scores, "{shards} shards: scores");
            assert_eq!(out.scored, ref_scored, "{shards} shards: scored");
            assert_eq!(out.live_shards, shards);
            assert_eq!(out.report.restarts, 0);
            assert_eq!(out.report.panics_caught, 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn seeded_chaos_schedules_recover_bit_identically() {
        for shards in [1usize, 2, 4] {
            let lake = DataLake::new();
            let registry = ModelRegistry::new();
            let dimms = setup(&lake, &registry);
            let outs = outputs(&dimms);
            let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, END);

            for seed in [7u64, 21, 99] {
                let plan = ChaosPlan::seeded(seed, shards, outs.len(), 6, 2);
                let dir = test_dir("seeded");
                let stores =
                    make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
                let sup = Supervisor::new(
                    &dir,
                    &lake,
                    &stores,
                    &registry,
                    Platform::IntelPurley,
                    OnlineConfig::default(),
                    traced(),
                    SuperviseConfig::default(),
                )
                .unwrap();
                let out = sup.run(&outs, END, &plan).unwrap();
                assert_eq!(
                    out.alarms, ref_alarms,
                    "shards={shards} seed={seed}: alarms"
                );
                assert_eq!(
                    out.scores, ref_scores,
                    "shards={shards} seed={seed}: scores"
                );
                assert_eq!(
                    out.scored, ref_scored,
                    "shards={shards} seed={seed}: scored"
                );
                assert_eq!(out.live_shards, shards);
                assert!(
                    out.report.quarantined.is_empty(),
                    "seeded plans are transient"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    #[test]
    fn seeded_chaos_with_compaction_keeps_alarms_and_scores_identical() {
        // Since checkpoint v3 the score trace rides inside the `MFC1`
        // envelope, so even with compaction folding the WAL away the
        // gate is the full score identity, not just alarms.
        for shards in [2usize, 4] {
            let lake = DataLake::new();
            let registry = ModelRegistry::new();
            let dimms = setup(&lake, &registry);
            let outs = outputs(&dimms);
            let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, END);
            let plan = ChaosPlan::seeded(5, shards, outs.len(), 6, 2);
            let dir = test_dir("compacting");
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let cfg = DurableConfig {
                batch: 3,
                compact_every: 4,
                record_scores: true,
                ..DurableConfig::default()
            };
            let sup = Supervisor::new(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                cfg,
                SuperviseConfig::default(),
            )
            .unwrap();
            let out = sup.run(&outs, END, &plan).unwrap();
            assert_eq!(out.alarms, ref_alarms, "shards={shards}: alarms");
            assert_eq!(out.scores, ref_scores, "shards={shards}: scores");
            assert_eq!(out.scored, ref_scored, "shards={shards}: scored");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn backoff_exponent_is_bounded_at_the_shift_boundary() {
        // Plain doubling under the cap.
        assert_eq!(bounded_backoff(1, u64::MAX, 1), 1);
        assert_eq!(bounded_backoff(1, u64::MAX, 5), 16);
        assert_eq!(bounded_backoff(3, 16, 40), 16);
        // Boundary: the msb lands exactly on bit 63 without wrapping.
        assert_eq!(bounded_backoff(1, u64::MAX, 64), 1 << 63);
        // One past the boundary saturates instead of shifting out.
        assert_eq!(bounded_backoff(1, u64::MAX, 65), u64::MAX);
        // The old code wrapped `6 << 63` to zero here and collapsed the
        // delay back to 1; the bounded exponent saturates instead.
        assert_eq!(bounded_backoff(6, u64::MAX, 64), u64::MAX);
        assert_eq!(bounded_backoff(6, 1 << 40, 64), 1 << 40);
        // Degenerate bases stay within [1, cap].
        assert_eq!(bounded_backoff(0, 16, 3), 1);
        assert_eq!(bounded_backoff(1, u64::MAX, u32::MAX), u64::MAX);
        // Monotone in the restart count, so min(cap) is a true clamp.
        let mut prev = 0;
        for n in 1..80 {
            let d = bounded_backoff(5, u64::MAX, n);
            assert!(d >= prev, "backoff must not shrink at n={n}");
            prev = d;
        }
    }

    #[test]
    fn injected_panics_are_caught_and_retried_to_identity() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, END);

        let plan = ChaosPlan {
            events: vec![
                ChaosEvent {
                    at_output: 10,
                    shard: 0,
                    kind: ChaosKind::Panic { fails: 2 },
                },
                ChaosEvent {
                    at_output: 70,
                    shard: 1,
                    kind: ChaosKind::Panic { fails: 1 },
                },
            ],
        };
        let dir = test_dir("panic");
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let sup = Supervisor::new(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            SuperviseConfig::default(),
        )
        .unwrap();
        let out = sup.run(&outs, END, &plan).unwrap();
        assert!(out.report.panics_caught >= 2, "panics: {:?}", out.report);
        assert!(out.report.restarts >= 2, "restarts: {:?}", out.report);
        assert!(out.report.quarantined.is_empty());
        assert_eq!(out.alarms, ref_alarms);
        assert_eq!(out.scores, ref_scores);
        assert_eq!(out.scored, ref_scored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_shards_are_detected_and_restarted() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, END);

        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at_output: 30,
                shard: 0,
                kind: ChaosKind::Hang,
            }],
        };
        let dir = test_dir("hang");
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let sup = Supervisor::new(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            SuperviseConfig::default(),
        )
        .unwrap();
        let out = sup.run(&outs, END, &plan).unwrap();
        assert_eq!(out.report.hangs_detected, 1);
        assert!(out.report.restarts >= 1);
        assert_eq!(out.alarms, ref_alarms);
        assert_eq!(out.scores, ref_scores);
        assert_eq!(out.scored, ref_scored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_outputs_are_quarantined_and_persist_across_runs() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let shards = 2usize;
        let target = 50usize;
        let poisoned_shard = shard_route(&outs[target], shards);

        // The degraded oracle: the canonical stream minus the poisoned
        // output.
        let filtered: Vec<IngestOutput> = outs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != target)
            .map(|(_, o)| *o)
            .collect();
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &filtered, END);

        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at_output: target as u64,
                shard: poisoned_shard,
                kind: ChaosKind::Poison,
            }],
        };
        let dir = test_dir("poison");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let sup = Supervisor::new(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            SuperviseConfig::default(),
        )
        .unwrap();
        let out = sup.run(&outs, END, &plan).unwrap();
        assert_eq!(out.report.quarantined_outputs, vec![target as u64]);
        assert_eq!(out.report.quarantined.len(), 1);
        assert_eq!(out.report.quarantined[0].0, poisoned_shard);
        assert_eq!(
            out.report.panics_caught,
            u64::from(SuperviseConfig::default().quarantine_after)
        );
        assert_eq!(
            out.live_shards, shards,
            "quarantine must keep the shard alive"
        );
        assert_eq!(out.alarms, ref_alarms, "degraded oracle alarms");
        assert_eq!(out.scores, ref_scores, "degraded oracle scores");
        assert_eq!(out.scored, ref_scored, "degraded oracle scored");

        // A second run over the same root: the quarantine is persisted in
        // the side log, so the poison never crashes anything again.
        let stores2 = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let sup2 = Supervisor::new(
            &dir,
            &lake,
            &stores2,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            SuperviseConfig::default(),
        )
        .unwrap();
        let out2 = sup2.run(&outs, END, &ChaosPlan::none()).unwrap();
        assert_eq!(
            out2.report.restarts, 0,
            "persisted quarantine: {:?}",
            out2.report
        );
        assert_eq!(out2.report.panics_caught, 0);
        assert_eq!(out2.alarms, ref_alarms);
        assert_eq!(out2.scored, ref_scored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_restart_budget_fails_the_shard_but_others_serve() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let shards = 2usize;
        let target = 50usize;
        let poisoned_shard = shard_route(&outs[target], shards);
        let (ref_alarms, ref_scores, _) = oracle(&lake, &registry, &outs, END);

        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at_output: target as u64,
                shard: poisoned_shard,
                kind: ChaosKind::Poison,
            }],
        };
        let dir = test_dir("budget");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let cfg = SuperviseConfig {
            max_restarts: 2,
            quarantine_after: 100, // never quarantine: exhaust the budget
            ..SuperviseConfig::default()
        };
        let sup = Supervisor::new(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            cfg,
        )
        .unwrap();
        let out = sup.run(&outs, END, &plan).unwrap();
        assert_eq!(out.report.failed_shards, vec![poisoned_shard]);
        assert_eq!(out.live_shards, shards - 1);

        // Graceful degradation: the live shard's output is exactly the
        // oracle restricted to its DIMMs.
        let live_alarms: Vec<Alarm> = ref_alarms
            .iter()
            .filter(|a| shard_of(a.dimm, shards) != poisoned_shard)
            .copied()
            .collect();
        let live_scores: Vec<ScoreRecord> = ref_scores
            .iter()
            .filter(|r| shard_of(r.dimm, shards) != poisoned_shard)
            .copied()
            .collect();
        assert!(!live_alarms.is_empty(), "live shard must still alarm");
        assert_eq!(out.alarms, live_alarms);
        assert_eq!(out.scores, live_scores);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seed_means_same_outcome() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let plan = ChaosPlan::seeded(1234, 2, outs.len(), 8, 2);
        assert_eq!(plan, ChaosPlan::seeded(1234, 2, outs.len(), 8, 2));

        let mut runs = Vec::new();
        for _ in 0..2 {
            let dir = test_dir("determinism");
            let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
            let sup = Supervisor::new(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                traced(),
                SuperviseConfig::default(),
            )
            .unwrap();
            let out = sup.run(&outs, END, &plan).unwrap();
            runs.push((out.alarms, out.scores, out.scored, out.report));
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(runs[0], runs[1], "same seed, same supervised outcome");
    }
}
