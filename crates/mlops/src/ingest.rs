//! Hardened event ingestion: the defensive layer between hostile telemetry
//! and the online prediction path.
//!
//! Production BMC/MCE streams arrive late, duplicated, reordered,
//! clock-skewed and occasionally malformed (the failure modes
//! `mfp_sim::chaos` models). [`Ingestor`] normalizes such a stream into
//! the clean, time-ordered sequence the [`FeatureStore`](crate::feature_store::FeatureStore)
//! and [`OnlinePredictor`](crate::online::OnlinePredictor) assume:
//!
//! 1. **Schema/range validation** against the lake's DIMM catalog and the
//!    module's device geometry, with per-reason rejection counters in
//!    `mfp-obs` ([`RejectReason`]).
//! 2. **Dedup** via a bounded FIFO of recently seen events (exact
//!    equality, so distinct events are never dropped by collision).
//! 3. **Watermark re-sequencing**: admitted events are buffered and
//!    released in timestamp order once the watermark (max admitted
//!    timestamp minus the configured lateness bound) passes them; events
//!    older than the watermark are quarantined, never silently inserted
//!    into already-served windows.
//! 4. **Gap detection**: a released event following a per-DIMM silence
//!    longer than `gap_threshold` produces a [`GapRecord`], the online
//!    analogue of `mfp_ml::metrics::derive_sample_gap` — callers feed
//!    these to `OnlinePredictor::note_gap` so vote streaks are not glued
//!    across collection holes.
//!
//! The normalization is idempotent (normalize ∘ normalize == normalize,
//! provided the dedup window spans the stream), and for a drop-free,
//! mangle-free chaos stream whose reorder displacement is within the
//! lateness bound it reconstructs the clean stream's event sequence
//! exactly — the property `tests/prop_resilience.rs` checks end to end.

use crate::lake::DataLake;
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Why an event was rejected at the validation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// The DIMM is not in the lake's catalog.
    UnknownDimm,
    /// Address components exceed the module's device geometry.
    AddrRange,
    /// A CE/UE carrying no erroneous bit (physically meaningless).
    EmptyTransfer,
    /// A storm event with a zero interrupt count.
    StormCount,
    /// Timestamp beyond the configured plausibility horizon.
    FutureTime,
}

impl RejectReason {
    /// Stable label value for telemetry series.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::UnknownDimm => "unknown_dimm",
            RejectReason::AddrRange => "addr_range",
            RejectReason::EmptyTransfer => "empty_transfer",
            RejectReason::StormCount => "storm_count",
            RejectReason::FutureTime => "future_time",
        }
    }

    /// Every reason, for exhaustive telemetry registration.
    pub const ALL: [RejectReason; 5] = [
        RejectReason::UnknownDimm,
        RejectReason::AddrRange,
        RejectReason::EmptyTransfer,
        RejectReason::StormCount,
        RejectReason::FutureTime,
    ];
}

/// Ingestion configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Lateness bound: an admitted event may be displaced by at most this
    /// much behind the maximum admitted timestamp; older arrivals are
    /// quarantined. This is also the release delay of the reorder buffer.
    pub lateness: SimDuration,
    /// How many recently admitted events the dedup set remembers.
    pub dedup_window: usize,
    /// Reject events stamped after this instant (collector clock-skew
    /// guard); `None` disables the check.
    pub max_timestamp: Option<SimTime>,
    /// Per-DIMM silence longer than this yields a [`GapRecord`]; `None`
    /// disables gap detection.
    pub gap_threshold: Option<SimDuration>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            lateness: SimDuration::hours(1),
            dedup_window: 65_536,
            max_timestamp: None,
            gap_threshold: None,
        }
    }
}

/// A detected per-DIMM collection hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapRecord {
    /// The silent DIMM.
    pub dimm: DimmId,
    /// Last event before the hole.
    pub from: SimTime,
    /// First event after the hole.
    pub to: SimTime,
}

impl GapRecord {
    /// Length of the hole.
    pub fn length(&self) -> SimDuration {
        self.to
            .checked_duration_since(self.from)
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Counters for one ingestor's lifetime (also exported via `mfp-obs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Events pushed in.
    pub received: u64,
    /// Events failing validation, all reasons combined.
    pub rejected: u64,
    /// Exact duplicates dropped.
    pub duplicates: u64,
    /// Events older than the watermark, set aside.
    pub quarantined: u64,
    /// Events released downstream in time order.
    pub released: u64,
    /// Collection holes detected.
    pub gaps: u64,
}

/// Telemetry handles, resolved once per ingestor.
#[derive(Debug)]
struct IngestMetrics {
    received: mfp_obs::Counter,
    rejected: Vec<(RejectReason, mfp_obs::Counter)>,
    duplicates: mfp_obs::Counter,
    quarantined: mfp_obs::Counter,
    released: mfp_obs::Counter,
    gaps: mfp_obs::Counter,
}

impl IngestMetrics {
    fn new() -> Self {
        IngestMetrics {
            received: mfp_obs::counter("ingest_received", &[]),
            rejected: RejectReason::ALL
                .iter()
                .map(|&r| {
                    (
                        r,
                        mfp_obs::counter("ingest_rejected", &[("reason", r.as_str())]),
                    )
                })
                .collect(),
            duplicates: mfp_obs::counter("ingest_duplicates", &[]),
            quarantined: mfp_obs::counter("ingest_quarantined", &[]),
            released: mfp_obs::counter("ingest_released", &[]),
            gaps: mfp_obs::counter("ingest_gaps_detected", &[]),
        }
    }

    fn reject(&self, reason: RejectReason) {
        if let Some((_, c)) = self.rejected.iter().find(|(r, _)| *r == reason) {
            c.incr();
        }
    }
}

/// Streaming normalizer from a hostile event stream to a clean one.
#[derive(Debug)]
pub struct Ingestor<'a> {
    lake: &'a DataLake,
    cfg: IngestConfig,
    /// Reorder buffer keyed by (timestamp, admission sequence): release
    /// order is time order, stable by arrival for equal stamps.
    buffer: BTreeMap<(SimTime, u64), MemEvent>,
    seq: u64,
    /// Maximum admitted timestamp; `watermark() = high_water - lateness`.
    high_water: SimTime,
    /// Bounded exact-equality dedup set + its FIFO eviction order.
    seen: HashSet<MemEvent>,
    seen_order: VecDeque<MemEvent>,
    /// Last released timestamp per DIMM, for gap detection.
    last_seen: BTreeMap<DimmId, SimTime>,
    gaps: Vec<GapRecord>,
    quarantine: Vec<MemEvent>,
    stats: IngestStats,
    metrics: IngestMetrics,
}

impl<'a> Ingestor<'a> {
    /// Creates an ingestor validating against `lake`'s DIMM catalog.
    pub fn new(lake: &'a DataLake, cfg: IngestConfig) -> Self {
        Ingestor {
            lake,
            cfg,
            buffer: BTreeMap::new(),
            seq: 0,
            high_water: SimTime::ZERO,
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            last_seen: BTreeMap::new(),
            gaps: Vec::new(),
            quarantine: Vec::new(),
            stats: IngestStats::default(),
            metrics: IngestMetrics::new(),
        }
    }

    /// The current lateness watermark: everything at or after it may still
    /// legally arrive; anything strictly before it is final.
    pub fn watermark(&self) -> SimTime {
        self.high_water.saturating_sub(self.cfg.lateness)
    }

    /// Validates one event against schema, catalog and range bounds.
    pub fn validate(&self, event: &MemEvent) -> Result<(), RejectReason> {
        if self.cfg.max_timestamp.is_some_and(|mt| event.time() > mt) {
            return Err(RejectReason::FutureTime);
        }
        let Some((_, spec)) = self.lake.dimm_info(event.dimm()) else {
            return Err(RejectReason::UnknownDimm);
        };
        match event {
            MemEvent::Ce(ce) => {
                if !ce.addr.is_valid(&spec.geometry, spec.ranks) {
                    return Err(RejectReason::AddrRange);
                }
                if ce.transfer.is_empty() {
                    return Err(RejectReason::EmptyTransfer);
                }
            }
            MemEvent::Ue(ue) => {
                if !ue.addr.is_valid(&spec.geometry, spec.ranks) {
                    return Err(RejectReason::AddrRange);
                }
                if ue.transfer.is_empty() {
                    return Err(RejectReason::EmptyTransfer);
                }
            }
            MemEvent::Storm(s) => {
                if s.count == 0 {
                    return Err(RejectReason::StormCount);
                }
            }
        }
        Ok(())
    }

    /// Feeds one event; returns the events the watermark now releases, in
    /// timestamp order. Invalid, duplicate and too-late events release
    /// nothing and are counted instead.
    pub fn push(&mut self, event: &MemEvent) -> Vec<MemEvent> {
        self.stats.received += 1;
        self.metrics.received.incr();
        if let Err(reason) = self.validate(event) {
            self.stats.rejected += 1;
            self.metrics.reject(reason);
            return Vec::new();
        }
        if !self.seen.insert(*event) {
            self.stats.duplicates += 1;
            self.metrics.duplicates.incr();
            return Vec::new();
        }
        self.seen_order.push_back(*event);
        while self.seen_order.len() > self.cfg.dedup_window.max(1) {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen.remove(&old);
            }
        }
        if event.time() < self.watermark() {
            self.stats.quarantined += 1;
            self.metrics.quarantined.incr();
            self.quarantine.push(*event);
            return Vec::new();
        }
        self.buffer.insert((event.time(), self.seq), *event);
        self.seq += 1;
        self.high_water = self.high_water.max(event.time());
        self.drain_released()
    }

    /// Releases everything still buffered (end of stream).
    pub fn flush(&mut self) -> Vec<MemEvent> {
        let out: Vec<MemEvent> = std::mem::take(&mut self.buffer).into_values().collect();
        self.note_released(&out);
        out
    }

    /// Pops buffered events the watermark has passed.
    fn drain_released(&mut self) -> Vec<MemEvent> {
        let bound = self.watermark();
        let mut out = Vec::new();
        while let Some((&(t, s), _)) = self.buffer.iter().next() {
            if t > bound {
                break;
            }
            if let Some(e) = self.buffer.remove(&(t, s)) {
                out.push(e);
            }
        }
        self.note_released(&out);
        out
    }

    /// Stats/gap bookkeeping for a batch of released events.
    fn note_released(&mut self, released: &[MemEvent]) {
        self.stats.released += released.len() as u64;
        self.metrics.released.add(released.len() as u64);
        let Some(threshold) = self.cfg.gap_threshold else {
            return;
        };
        for e in released {
            let t = e.time();
            if let Some(&prev) = self.last_seen.get(&e.dimm()) {
                let gap = t.checked_duration_since(prev).unwrap_or(SimDuration::ZERO);
                if gap > threshold {
                    self.gaps.push(GapRecord {
                        dimm: e.dimm(),
                        from: prev,
                        to: t,
                    });
                    self.stats.gaps += 1;
                    self.metrics.gaps.incr();
                }
            }
            self.last_seen.insert(e.dimm(), t);
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Collection holes detected so far (in release order).
    pub fn gaps(&self) -> &[GapRecord] {
        &self.gaps
    }

    /// Drains the detected holes (callers forward them to
    /// `OnlinePredictor::note_gap` once per hole).
    pub fn take_gaps(&mut self) -> Vec<GapRecord> {
        std::mem::take(&mut self.gaps)
    }

    /// Events set aside as irreparably late (for offline backfill).
    pub fn quarantined(&self) -> &[MemEvent] {
        &self.quarantine
    }
}

/// One item handed to the consumer of [`ingest_bounded`], in release
/// order: released events interleaved with the collection holes the
/// ingestor detected while releasing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutput {
    /// An event released in timestamp order.
    Released(MemEvent),
    /// A per-DIMM collection hole (forward to
    /// `OnlinePredictor::note_gap`).
    Gap(GapRecord),
}

impl IngestOutput {
    /// The DIMM this output concerns (the event's home, or the DIMM the
    /// hole was detected on) — what `crate::serve::shard_of` and the
    /// WAL grouping key off.
    pub fn dimm(&self) -> DimmId {
        match self {
            IngestOutput::Released(e) => e.dimm(),
            IngestOutput::Gap(g) => g.dimm,
        }
    }

    /// Whether this output is a collection hole rather than an event.
    pub fn is_gap(&self) -> bool {
        matches!(self, IngestOutput::Gap(_))
    }
}

/// Couples an event producer to an [`Ingestor`] through a **bounded
/// channel**, so an arbitrarily large stream (e.g. a fleet-scale
/// [`mfp_sim::sharded`] run) is normalized in constant memory.
///
/// `producer` runs on its own thread and pushes events through the
/// emitter it is handed; events travel to the calling thread in batches
/// of `batch` over a channel holding at most `capacity` batches — when
/// the consumer lags, the producer blocks instead of buffering. The
/// calling thread validates, dedups and re-sequences each event and
/// hands every release (and detected gap) to `on_output` immediately, so
/// nothing downstream ever sees the whole stream at once.
///
/// Returns the ingestor's lifetime counters.
///
/// # Examples
///
/// ```
/// use mfp_mlops::ingest::{ingest_bounded, IngestConfig, IngestOutput};
/// use mfp_mlops::lake::DataLake;
/// use mfp_sim::prelude::*;
///
/// let cfg = {
///     let mut c = FleetConfig::smoke(77);
///     c.horizon = mfp_dram::time::SimDuration::days(30);
///     c
/// };
/// let fleet = ShardedFleet::plan(&cfg);
/// let lake = DataLake::new();
/// for (id, platform, spec) in fleet.catalog() {
///     lake.register_dimm(id, platform, spec);
/// }
/// let mut released = 0u64;
/// let stats = ingest_bounded(
///     &lake,
///     IngestConfig::default(),
///     4,
///     256,
///     |emit| {
///         fleet.run_stream(&ShardConfig::new(4, 2), |e| emit(e));
///     },
///     |out| {
///         if let IngestOutput::Released(_) = out {
///             released += 1;
///         }
///     },
/// );
/// assert_eq!(stats.released, released);
/// assert_eq!(stats.quarantined, 0, "clean sharded streams are in order");
/// ```
pub fn ingest_bounded<P, F>(
    lake: &DataLake,
    cfg: IngestConfig,
    capacity: usize,
    batch: usize,
    producer: P,
    mut on_output: F,
) -> IngestStats
where
    P: FnOnce(&mut dyn FnMut(MemEvent)) + Send,
    F: FnMut(IngestOutput),
{
    let batch = batch.max(1);
    let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<MemEvent>>(capacity.max(1));
    let mut ingestor = Ingestor::new(lake, cfg);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut buf: Vec<MemEvent> = Vec::with_capacity(batch);
            {
                let mut emit = |event: MemEvent| {
                    buf.push(event);
                    if buf.len() >= batch {
                        let full = std::mem::replace(&mut buf, Vec::with_capacity(batch));
                        // A send error means the consumer is gone; the
                        // producer just drains without effect.
                        let _ = tx.send(full);
                    }
                };
                producer(&mut emit);
            }
            if !buf.is_empty() {
                let _ = tx.send(buf);
            }
        });
        for chunk in rx {
            for event in chunk {
                for released in ingestor.push(&event) {
                    on_output(IngestOutput::Released(released));
                }
                for gap in ingestor.take_gaps() {
                    on_output(IngestOutput::Gap(gap));
                }
            }
        }
    });
    for released in ingestor.flush() {
        on_output(IngestOutput::Released(released));
    }
    for gap in ingestor.take_gaps() {
        on_output(IngestOutput::Gap(gap));
    }
    ingestor.stats()
}

/// One-shot normalization of a whole stream: validate, dedup, re-sequence
/// and flush. Returns the clean stream and the ingestion counters.
pub fn normalize(
    lake: &DataLake,
    cfg: IngestConfig,
    events: &[MemEvent],
) -> (Vec<MemEvent>, IngestStats) {
    let mut ing = Ingestor::new(lake, cfg);
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        out.extend(ing.push(e));
    }
    out.extend(ing.flush());
    (out, ing.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeEvent, CeStormEvent};
    use mfp_dram::geometry::Platform;
    use mfp_dram::spec::DimmSpec;
    use mfp_sim::chaos::{inject_chaos, ChaosConfig};

    fn ce(t: u64, dimm: DimmId) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, (t % 16) as u8, (t % 1000) as u32, (t % 64) as u16),
            transfer: ErrorTransfer::from_bits([(0, (t % 72) as u8)]),
        })
    }

    fn lake_with(dimms: &[DimmId]) -> DataLake {
        let lake = DataLake::new();
        for &d in dimms {
            lake.register_dimm(d, Platform::IntelPurley, DimmSpec::default());
        }
        lake
    }

    #[test]
    fn validation_rejects_each_reason() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let ing = Ingestor::new(
            &lake,
            IngestConfig {
                max_timestamp: Some(SimTime::from_secs(1_000_000)),
                ..IngestConfig::default()
            },
        );
        assert_eq!(
            ing.validate(&ce(10, DimmId::new(99, 0))),
            Err(RejectReason::UnknownDimm)
        );
        let mut bad_rank = ce(10, id);
        if let MemEvent::Ce(c) = &mut bad_rank {
            c.addr.rank = u8::MAX;
        }
        assert_eq!(ing.validate(&bad_rank), Err(RejectReason::AddrRange));
        let empty = MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(10),
            dimm: id,
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::new(),
        });
        assert_eq!(ing.validate(&empty), Err(RejectReason::EmptyTransfer));
        let storm = MemEvent::Storm(CeStormEvent {
            time: SimTime::from_secs(10),
            dimm: id,
            count: 0,
        });
        assert_eq!(ing.validate(&storm), Err(RejectReason::StormCount));
        let future = ce(2_000_000, id);
        assert_eq!(ing.validate(&future), Err(RejectReason::FutureTime));
        assert_eq!(ing.validate(&ce(10, id)), Ok(()));
    }

    #[test]
    fn rejected_events_are_counted_not_released() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let events = vec![ce(10, id), ce(20, DimmId::new(9, 9)), ce(30, id)];
        let (out, stats) = normalize(&lake, IngestConfig::default(), &events);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.received, 3);
    }

    #[test]
    fn exact_duplicates_are_dropped() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let e = ce(100, id);
        let events = vec![e, ce(200, id), e, e];
        let (out, stats) = normalize(&lake, IngestConfig::default(), &events);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.duplicates, 2);
        // Near-duplicates (different transfer) are distinct events.
        let mut variant = e;
        if let MemEvent::Ce(c) = &mut variant {
            c.transfer = ErrorTransfer::from_bits([(1, 1)]);
        }
        let (out, stats) = normalize(&lake, IngestConfig::default(), &[e, variant]);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.duplicates, 0);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let cfg = IngestConfig {
            dedup_window: 4,
            lateness: SimDuration::days(300),
            ..IngestConfig::default()
        };
        let mut events: Vec<MemEvent> = (0..10).map(|k| ce(100 + k, id)).collect();
        events.push(ce(100, id)); // duplicate, but 10 events back
        let (out, stats) = normalize(&lake, cfg, &events);
        assert_eq!(stats.duplicates, 0, "evicted fingerprints cannot match");
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn reorder_within_lateness_is_resequenced() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let clean: Vec<MemEvent> = (0..100u64).map(|k| ce(1000 + k * 60, id)).collect();
        // Deterministic shuffle: swap adjacent pairs (displacement 60s).
        let mut shuffled = clean.clone();
        for pair in shuffled.chunks_mut(2) {
            pair.reverse();
        }
        let cfg = IngestConfig {
            lateness: SimDuration::minutes(5),
            ..IngestConfig::default()
        };
        let (out, stats) = normalize(&lake, cfg, &shuffled);
        assert_eq!(out, clean, "buffer must restore timestamp order");
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.released, 100);
    }

    #[test]
    fn beyond_lateness_is_quarantined() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let cfg = IngestConfig {
            lateness: SimDuration::minutes(5),
            ..IngestConfig::default()
        };
        let mut ing = Ingestor::new(&lake, cfg);
        let mut released = Vec::new();
        released.extend(ing.push(&ce(10_000, id)));
        // An hour-old straggler: behind the watermark, quarantined.
        let straggler = ce(6_000, id);
        assert!(ing.push(&straggler).is_empty());
        released.extend(ing.flush());
        assert_eq!(ing.stats().quarantined, 1);
        assert_eq!(ing.quarantined(), &[straggler]);
        assert_eq!(released.len(), 1, "straggler must not be released");
        assert!(released.iter().all(|e| e.time().as_secs() == 10_000));
    }

    #[test]
    fn released_stream_is_time_ordered() {
        let id = DimmId::new(1, 0);
        let lake = lake_with(&[id]);
        let clean: Vec<MemEvent> = (0..400u64).map(|k| ce(500 + k * 37, id)).collect();
        let (hostile, _) = inject_chaos(&clean, &ChaosConfig::hostile(5));
        let cfg = IngestConfig {
            lateness: SimDuration::hours(1),
            ..IngestConfig::default()
        };
        let (out, _) = normalize(&lake, cfg, &hostile);
        assert!(
            out.windows(2).all(|w| w[0].time() <= w[1].time()),
            "released stream must be non-decreasing in time"
        );
    }

    #[test]
    fn gap_detection_records_holes() {
        let id = DimmId::new(1, 0);
        let other = DimmId::new(2, 0);
        let lake = lake_with(&[id, other]);
        let cfg = IngestConfig {
            gap_threshold: Some(SimDuration::days(2)),
            ..IngestConfig::default()
        };
        let mut ing = Ingestor::new(&lake, cfg);
        let mut feed = vec![ce(1_000, id), ce(10_000, id)];
        // 5 days of silence on `id`; `other` keeps reporting daily, so it
        // never crosses the 2-day gap threshold.
        for day in 0..6u64 {
            feed.push(ce(2_000 + day * 86_400, other));
        }
        feed.push(ce(442_000, id));
        feed.sort_by_key(|e| e.time());
        for e in &feed {
            ing.push(e);
        }
        ing.flush();
        assert_eq!(ing.stats().gaps, 1);
        let gap = ing.gaps()[0];
        assert_eq!(gap.dimm, id);
        assert_eq!(gap.from, SimTime::from_secs(10_000));
        assert_eq!(gap.to, SimTime::from_secs(442_000));
        assert!(gap.length() > SimDuration::days(4));
        assert_eq!(ing.take_gaps().len(), 1);
        assert!(ing.gaps().is_empty());
    }

    #[test]
    fn normalize_is_idempotent_on_chaos_streams() {
        let ids: Vec<DimmId> = (0..5).map(|s| DimmId::new(s, 0)).collect();
        let lake = lake_with(&ids);
        let clean: Vec<MemEvent> = (0..300u64)
            .map(|k| ce(1_000 + k * 97, ids[(k % 5) as usize]))
            .collect();
        let (hostile, _) = inject_chaos(&clean, &ChaosConfig::hostile(11));
        let cfg = IngestConfig {
            lateness: SimDuration::hours(2),
            ..IngestConfig::default()
        };
        let (once, _) = normalize(&lake, cfg, &hostile);
        let (twice, stats) = normalize(&lake, cfg, &once);
        assert_eq!(once, twice, "normalize must be idempotent");
        assert_eq!(stats.rejected + stats.duplicates + stats.quarantined, 0);
    }

    #[test]
    fn bounded_bridge_streams_a_sharded_fleet_in_order() {
        use mfp_sim::config::FleetConfig;
        use mfp_sim::fleet::simulate_fleet_with_workers;
        use mfp_sim::sharded::{ShardConfig, ShardedFleet};

        let mut cfg = FleetConfig::smoke(31);
        cfg.horizon = SimDuration::days(45);
        let fleet = ShardedFleet::plan(&cfg);
        let lake = DataLake::new();
        for (id, platform, spec) in fleet.catalog() {
            lake.register_dimm(id, platform, spec);
        }
        let mut released = Vec::new();
        let stats = ingest_bounded(
            &lake,
            IngestConfig::default(),
            2,
            64,
            |emit| {
                fleet.run_stream(&ShardConfig::new(4, 2), |e| emit(e));
            },
            |out| {
                if let IngestOutput::Released(e) = out {
                    released.push(e);
                }
            },
        );
        assert_eq!(stats.quarantined, 0, "clean sharded stream is in order");
        assert_eq!(stats.rejected, 0, "simulated events pass validation");
        assert_eq!(stats.released as usize, released.len());
        assert!(released.windows(2).all(|w| w[0].time() <= w[1].time()));
        // The bridge over the sharded stream equals one-shot
        // normalization of the sequential simulator's log.
        let seq = simulate_fleet_with_workers(&cfg, 1);
        let (oracle, _) = normalize(&lake, IngestConfig::default(), seq.log.events());
        assert_eq!(released, oracle);
    }

    #[test]
    fn lossless_chaos_normalizes_to_the_clean_stream() {
        let ids: Vec<DimmId> = (0..4).map(|s| DimmId::new(s, 0)).collect();
        let lake = lake_with(&ids);
        let clean: Vec<MemEvent> = (0..500u64)
            .map(|k| ce(2_000 + k * 53, ids[(k % 4) as usize]))
            .collect();
        let chaos_cfg = ChaosConfig::lossless(21);
        let (hostile, cstats) = inject_chaos(&clean, &chaos_cfg);
        assert!(cstats.delayed > 0, "chaos must actually reorder");
        let cfg = IngestConfig {
            lateness: chaos_cfg.max_lateness,
            ..IngestConfig::default()
        };
        let (from_chaos, stats) = normalize(&lake, cfg, &hostile);
        let (from_clean, _) = normalize(&lake, cfg, &clean);
        assert_eq!(
            from_chaos, from_clean,
            "lossless chaos within the lateness bound must normalize exactly"
        );
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.duplicates, cstats.duplicated);
    }
}
