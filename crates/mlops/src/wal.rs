//! Write-ahead logging and crash recovery for the online serving path.
//!
//! [`crate::checkpoint`] makes the sharded engine's state restorable, but
//! a checkpoint alone loses every event between captures. This module
//! closes that window: every accepted ingest output (released event or
//! detected gap) is appended to a checksummed, length-prefixed
//! write-ahead log **before** it mutates predictor state, and periodic
//! compaction folds the log prefix into a [`ServeCheckpoint`] so the log
//! stays short. Recovery is restore-latest-checkpoint + deterministic
//! replay of the WAL tail.
//!
//! # Recovery invariant
//!
//! For a crash at *any* byte offset of the WAL file, [`DurableOnline::open`]
//! reconstructs an engine whose state equals a fresh engine fed the first
//! `m` canonical ingest outputs, where `m` is exactly the number of
//! outputs in the longest valid WAL prefix (plus the checkpointed
//! prefix). Resuming the stream from output `m` therefore yields alarms
//! and scores **bit-identical** to an uncrashed run — the property
//! `truncating_the_wal_anywhere_recovers_bit_identically` sweeps below
//! and `tests/prop_wal.rs` checks on randomized streams.
//!
//! Two crash windows deserve a note:
//!
//! * **Torn appends.** A record whose checksum or length prefix does not
//!   verify ends the valid prefix; the torn tail is measured, truncated,
//!   and the file is re-opened for append at the cut.
//! * **Compaction.** A checkpoint stores `applied`, the global sequence
//!   number of the first output *not* folded into it. If a crash lands
//!   between the checkpoint rename and the WAL reset, replay skips every
//!   WAL output with `seq < applied` instead of double-applying it.
//!
//! # Wire format (`MFW1`)
//!
//! ```text
//! file   := "MFW1" version:u8 record*
//! record := kind:u8 seq:u64 len:u32 payload:[u8; len] crc32:u32
//! ```
//!
//! Big endian throughout; the CRC covers `kind..payload`. `kind` 1 is a
//! batch of released events (payload: an encoded `BmcLog`, whose stable
//! time sort is the identity on the already-ordered run), `kind` 2 is a
//! collection gap (server, slot, from, to). `seq` is the global sequence
//! number of the record's first output, so a batch of `k` events covers
//! `seq..seq+k`. Decoding is bounds-checked like `MFC1`: a corrupted
//! length can neither over-read nor over-allocate.
//!
//! # Per-shard durability (`MFW2`)
//!
//! [`DurableOnline`] keeps one log in front of the whole engine, so one
//! crashed shard stalls the fleet behind a full replay. The `MFW2`
//! *directory* layout splits durability to shard granularity:
//!
//! ```text
//! root/
//!   meta.bin             "MFW2" version shard_count:u32 crc32
//!   shard-000/
//!     wal.log            MFW1 record log, per-shard sequence numbers
//!     checkpoint.bin     MFD1 container: applied watermark + MFC1 payload
//!     quarantine.log     MFW1 side log of quarantined outputs (optional)
//!   shard-001/ ...
//! ```
//!
//! Each [`DurableShard`] reuses the `MFW1` record codec and the `MFD1`
//! applied-output watermark unchanged — only the sequence numbers are
//! per-shard (the position of the output in *that shard's* routed
//! sub-stream, which is itself deterministic because routing is the pure
//! hash `crate::serve::shard_of`). A shard therefore recovers
//! **independently**: restore its own checkpoint, replay its own longest
//! valid prefix, never read a sibling's files. [`ShardedDurable`] is the
//! unsupervised composition (`crate::supervise` adds restarts, backoff
//! and quarantine on top); on resume the caller re-feeds the stream from
//! the start and each shard skips the prefix it already covered.
//!
//! Every state mutation goes through an *apply guard* — a closure that
//! may apply, skip, or report a crash for each durable output. The
//! default guard just applies; the supervisor's guard wraps the apply in
//! `catch_unwind` and consults its quarantine set, which is what turns a
//! poison record (durable before it ever crashed the shard — the price
//! of write-ahead ordering) from a crash loop into a skipped output.

use crate::checkpoint::{CheckpointError, OnlineCheckpoint, ServeCheckpoint};
use crate::feature_store::FeatureStore;
use crate::ingest::{GapRecord, IngestOutput};
use crate::lake::DataLake;
use crate::online::{Alarm, OnlineConfig, OnlinePredictor, ScoreRecord};
use crate::registry::ModelRegistry;
use crate::serve::{shard_route, ShardedOnline};
use mfp_dram::address::DimmId;
use mfp_dram::bmc::BmcLog;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimTime;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Magic bytes at the head of a WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"MFW1";
/// WAL wire-format version.
pub const WAL_VERSION: u8 = 1;
/// Bytes of `magic ++ version` before the first record.
const HEADER_LEN: usize = 5;
/// Bytes of `kind ++ seq ++ len` before a record's payload.
pub(crate) const RECORD_HEADER_LEN: usize = 13;

/// IEEE CRC-32 (the Ethernet/zip polynomial), table-driven.
///
/// Shared by the WAL record format and the `MFC1`/`MFS1` checkpoint
/// envelopes: one detection primitive for every durability payload.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The data carried by one WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalPayload {
    /// A contiguous, time-ordered run of released events.
    Events(Vec<MemEvent>),
    /// One detected collection hole.
    Gap(GapRecord),
}

/// One WAL record: a payload stamped with the global sequence number of
/// its first output.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Global output sequence number of the record's first output.
    pub seq: u64,
    /// The logged outputs.
    pub payload: WalPayload,
}

impl WalRecord {
    /// Number of ingest outputs this record expands to on replay.
    pub fn outputs(&self) -> u64 {
        match &self.payload {
            WalPayload::Events(events) => events.len() as u64,
            WalPayload::Gap(_) => 1,
        }
    }
}

/// Serializes one record into the `MFW1` record format.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let (kind, payload): (u8, Vec<u8>) = match &record.payload {
        WalPayload::Events(events) => {
            // The run is time-ordered, so BmcLog's stable sort is the
            // identity and the trip is byte-exact.
            let log: BmcLog = events.iter().copied().collect();
            (1, log.encode().to_vec())
        }
        WalPayload::Gap(gap) => {
            let mut p = Vec::with_capacity(21);
            p.extend_from_slice(&gap.dimm.server.0.to_be_bytes());
            p.push(gap.dimm.slot);
            p.extend_from_slice(&gap.from.as_secs().to_be_bytes());
            p.extend_from_slice(&gap.to.as_secs().to_be_bytes());
            (2, p)
        }
    };
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() + 4);
    out.push(kind);
    out.extend_from_slice(&record.seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&out).to_be_bytes());
    out
}

/// The result of scanning a WAL file: the records of the longest valid
/// prefix, plus how much of the file that prefix covers.
#[derive(Debug, Clone, PartialEq)]
pub struct WalContents {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of the valid prefix (file header included); the safe
    /// truncation point for re-opening the file in append mode.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (a torn append, or garbage).
    pub torn_bytes: u64,
}

/// Failure on the WAL/recovery path.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation failed.
    Io(std::io::Error),
    /// The file starts with bytes that are not a (possibly torn) `MFW1`
    /// header — this is not a WAL.
    BadHeader,
    /// The checkpoint file failed to decode.
    Checkpoint(CheckpointError),
    /// The `MFW2` meta file is corrupt or not a meta file.
    BadMeta(&'static str),
    /// The on-disk state was captured with a different shard count than
    /// the caller's stores — resharding a snapshot is unsound (see
    /// [`ServeCheckpoint::restore`]), so this fails as data instead of
    /// panicking inside the restore.
    ShardCountMismatch {
        /// Shards recorded on disk.
        captured: usize,
        /// Feature stores the caller supplied.
        stores: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::BadHeader => write!(f, "not a MFW1 write-ahead log"),
            WalError::Checkpoint(e) => write!(f, "wal checkpoint: {e}"),
            WalError::BadMeta(what) => write!(f, "wal meta: {what}"),
            WalError::ShardCountMismatch { captured, stores } => write!(
                f,
                "wal shard count mismatch: disk has {captured} shards, caller has {stores} stores"
            ),
        }
    }
}

impl Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CheckpointError> for WalError {
    fn from(e: CheckpointError) -> Self {
        WalError::Checkpoint(e)
    }
}

/// Scans a WAL image, returning the longest valid record prefix.
///
/// A record that is truncated, fails its checksum, carries an unknown
/// kind, or whose payload does not decode ends the prefix — everything
/// from that record's first byte on is counted as the torn tail, never
/// replayed, and truncated by recovery. A file shorter than its own
/// header is treated as an empty log torn mid-creation.
///
/// # Errors
///
/// [`WalError::BadHeader`] when the leading bytes mismatch the `MFW1`
/// header (as opposed to merely being cut short).
pub fn scan(data: &[u8]) -> Result<WalContents, WalError> {
    let header = [
        WAL_MAGIC[0],
        WAL_MAGIC[1],
        WAL_MAGIC[2],
        WAL_MAGIC[3],
        WAL_VERSION,
    ];
    if data.len() < HEADER_LEN {
        return if header.starts_with(data) {
            Ok(WalContents {
                records: Vec::new(),
                valid_bytes: 0,
                torn_bytes: data.len() as u64,
            })
        } else {
            Err(WalError::BadHeader)
        };
    }
    if data[..HEADER_LEN] != header {
        return Err(WalError::BadHeader);
    }
    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    loop {
        let rest = &data[offset..];
        if rest.is_empty() {
            break;
        }
        let Some(record) = decode_record(rest) else {
            break;
        };
        let plen = u32::from_be_bytes([rest[9], rest[10], rest[11], rest[12]]) as usize;
        offset += RECORD_HEADER_LEN + plen + 4;
        records.push(record);
    }
    Ok(WalContents {
        records,
        valid_bytes: offset as u64,
        torn_bytes: (data.len() - offset) as u64,
    })
}

/// Decodes the record at the head of `data`; `None` when it is torn,
/// corrupt or unknown (the caller stops scanning there).
pub(crate) fn decode_record(data: &[u8]) -> Option<WalRecord> {
    if data.len() < RECORD_HEADER_LEN + 4 {
        return None;
    }
    let kind = data[0];
    let seq = u64::from_be_bytes([
        data[1], data[2], data[3], data[4], data[5], data[6], data[7], data[8],
    ]);
    let plen = u32::from_be_bytes([data[9], data[10], data[11], data[12]]) as usize;
    // Bounds check before any allocation: a corrupted length cannot
    // over-read the buffer or reserve gigabytes.
    let total = RECORD_HEADER_LEN.checked_add(plen)?.checked_add(4)?;
    if data.len() < total {
        return None;
    }
    let body = &data[..RECORD_HEADER_LEN + plen];
    let crc = &data[RECORD_HEADER_LEN + plen..total];
    if crc32(body) != u32::from_be_bytes([crc[0], crc[1], crc[2], crc[3]]) {
        return None;
    }
    let payload = &body[RECORD_HEADER_LEN..];
    match kind {
        1 => {
            let log = BmcLog::decode(payload).ok()?;
            Some(WalRecord {
                seq,
                payload: WalPayload::Events(log.events().to_vec()),
            })
        }
        2 => {
            if payload.len() != 21 {
                return None;
            }
            let server = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
            let slot = payload[4];
            let from = u64::from_be_bytes([
                payload[5],
                payload[6],
                payload[7],
                payload[8],
                payload[9],
                payload[10],
                payload[11],
                payload[12],
            ]);
            let to = u64::from_be_bytes([
                payload[13],
                payload[14],
                payload[15],
                payload[16],
                payload[17],
                payload[18],
                payload[19],
                payload[20],
            ]);
            Some(WalRecord {
                seq,
                payload: WalPayload::Gap(GapRecord {
                    dimm: DimmId::new(server, slot),
                    from: SimTime::from_secs(from),
                    to: SimTime::from_secs(to),
                }),
            })
        }
        _ => None,
    }
}

/// Execution knobs of the durable engine. None of them affect alarms or
/// scores — only how often bytes hit the disk and how long replay takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Outputs buffered before an automatic [`DurableOnline::flush`]
    /// (clamped to at least 1).
    pub batch: usize,
    /// WAL records between compactions; `u64::MAX` disables compaction.
    pub compact_every: u64,
    /// `fsync` the WAL after every flush (durability against power loss
    /// rather than just process crash; slower).
    pub fsync: bool,
    /// Enable score tracing on the engine from construction — before
    /// replay — so a recovered run's trace is comparable to an uncrashed
    /// one's (testing/verification only; the trace grows unbounded).
    pub record_scores: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            batch: 256,
            compact_every: 64,
            fsync: false,
            record_scores: false,
        }
    }
}

/// What [`DurableOnline::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Outputs already folded into the restored checkpoint (0 without
    /// a checkpoint file).
    pub checkpoint_applied: u64,
    /// Valid WAL records scanned.
    pub wal_records: u64,
    /// WAL outputs replayed into the engine.
    pub outputs_replayed: u64,
    /// WAL outputs skipped because the checkpoint already covered them
    /// (a crash between checkpoint rename and WAL reset).
    pub outputs_skipped: u64,
    /// Bytes of torn tail truncated from the WAL.
    pub torn_tail_bytes: u64,
    /// WAL outputs consumed without applying because the shard's
    /// quarantine side log lists them (per-shard recovery only).
    pub outputs_quarantined: u64,
    /// Per-shard replay aborted: the apply guard reported a crash at
    /// this sequence number (the output is a poison candidate; the
    /// supervisor counts the crash and retries or quarantines).
    pub replay_crashed: Option<u64>,
}

/// Telemetry handles for the durability path, resolved once per engine.
#[derive(Debug)]
struct WalMetrics {
    appends: mfp_obs::Counter,
    append_bytes: mfp_obs::Histogram,
    flushes: mfp_obs::Counter,
    fsyncs: mfp_obs::Counter,
    compactions: mfp_obs::Counter,
    replay_records: mfp_obs::Counter,
    replay_outputs: mfp_obs::Counter,
    replay_skipped: mfp_obs::Counter,
    torn_tails: mfp_obs::Counter,
    flush_seconds: mfp_obs::Histogram,
    replay_seconds: mfp_obs::Histogram,
}

impl WalMetrics {
    fn new() -> Self {
        WalMetrics {
            appends: mfp_obs::counter("wal_appends", &[]),
            append_bytes: mfp_obs::sizes("wal_append_bytes", &[]),
            flushes: mfp_obs::counter("wal_flushes", &[]),
            fsyncs: mfp_obs::counter("wal_fsyncs", &[]),
            compactions: mfp_obs::counter("wal_compactions", &[]),
            replay_records: mfp_obs::counter("wal_replay_records", &[]),
            replay_outputs: mfp_obs::counter("wal_replay_outputs", &[]),
            replay_skipped: mfp_obs::counter("wal_replay_skipped", &[]),
            torn_tails: mfp_obs::counter("wal_torn_tails", &[]),
            flush_seconds: mfp_obs::latency("wal_flush_seconds", &[]),
            replay_seconds: mfp_obs::latency("wal_replay_seconds", &[]),
        }
    }
}

/// Magic bytes of the durable checkpoint container: an `MFS1` (whole
/// engine) or `MFC1` (single shard) payload wrapped with the
/// applied-output watermark.
const CKPT_MAGIC: [u8; 4] = *b"MFD1";
const CKPT_VERSION: u8 = 1;
/// Magic bytes of the `MFW2` per-shard directory meta file.
const META_MAGIC: [u8; 4] = *b"MFW2";
const META_VERSION: u8 = 1;

/// Wraps a checkpoint payload in the `MFD1` container: magic, version,
/// the applied-output watermark, the payload length-prefixed, and a
/// trailing CRC over everything before it.
fn encode_durable_envelope(applied: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 16 + payload.len() + 4);
    out.extend_from_slice(&CKPT_MAGIC);
    out.push(CKPT_VERSION);
    out.extend_from_slice(&applied.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&out).to_be_bytes());
    out
}

/// Unwraps an `MFD1` container, returning the applied watermark and the
/// embedded checkpoint payload (still encoded — the caller knows whether
/// it holds an `MFS1` or `MFC1` snapshot).
fn decode_durable_envelope(data: &[u8]) -> Result<(u64, &[u8]), WalError> {
    if data.len() < HEADER_LEN + 16 + 4 || data[..4] != CKPT_MAGIC || data[4] != CKPT_VERSION {
        return Err(WalError::Checkpoint(CheckpointError::BadMagic));
    }
    let (body, tail) = data.split_at(data.len() - 4);
    if crc32(body) != u32::from_be_bytes([tail[0], tail[1], tail[2], tail[3]]) {
        return Err(WalError::Checkpoint(CheckpointError::BadChecksum));
    }
    let applied = u64::from_be_bytes([
        data[5], data[6], data[7], data[8], data[9], data[10], data[11], data[12],
    ]);
    let plen = u64::from_be_bytes([
        data[13], data[14], data[15], data[16], data[17], data[18], data[19], data[20],
    ]) as usize;
    if body.len() - (HEADER_LEN + 16) != plen {
        return Err(WalError::Checkpoint(CheckpointError::Truncated));
    }
    Ok((applied, &body[HEADER_LEN + 16..]))
}

fn encode_durable_checkpoint(applied: u64, cp: &ServeCheckpoint) -> Vec<u8> {
    encode_durable_envelope(applied, &cp.encode())
}

fn decode_durable_checkpoint(data: &[u8]) -> Result<(u64, ServeCheckpoint), WalError> {
    let (applied, payload) = decode_durable_envelope(data)?;
    Ok((applied, ServeCheckpoint::decode(payload)?))
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// synced, then renamed over the target.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// Syncs a directory's entry table. An atomic rename is only durable
/// against power loss once the *directory* is synced — without this, the
/// checkpoint rename and the WAL reset that follows it can reorder on
/// the platter and recovery would see a stale checkpoint next to an
/// already-emptied log.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Creates a fresh WAL file at `path` containing only the header.
fn create_wal(path: &Path) -> Result<File, WalError> {
    let mut f = File::create(path)?;
    f.write_all(&WAL_MAGIC)?;
    f.write_all(&[WAL_VERSION])?;
    f.sync_data()?;
    Ok(f)
}

/// Resets a WAL to empty via the atomic-rename pattern and re-opens it
/// for append: a crash here leaves either the old full log (outputs
/// skipped on replay) or the fresh empty one.
fn reset_wal(path: &Path) -> Result<File, WalError> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&WAL_MAGIC);
    header.push(WAL_VERSION);
    atomic_write(path, &header)?;
    Ok(OpenOptions::new().append(true).open(path)?)
}

/// Opens (creating if absent) the WAL at `path`: scans the longest valid
/// record prefix, truncates any torn tail (or rewrites a torn header),
/// and returns the scanned contents plus the file positioned for append.
fn recover_wal_file(path: &Path) -> Result<(File, WalContents), WalError> {
    match fs::read(path) {
        Ok(bytes) => {
            let contents = scan(&bytes)?;
            let file = OpenOptions::new().write(true).open(path)?;
            let file = if contents.valid_bytes < HEADER_LEN as u64 {
                file.set_len(0)?;
                let mut f = file;
                f.write_all(&WAL_MAGIC)?;
                f.write_all(&[WAL_VERSION])?;
                f.sync_data()?;
                f
            } else {
                file.set_len(contents.valid_bytes)?;
                let mut f = file;
                std::io::Seek::seek(&mut f, std::io::SeekFrom::End(0))?;
                f
            };
            Ok((file, contents))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok((
            create_wal(path)?,
            WalContents {
                records: Vec::new(),
                valid_bytes: HEADER_LEN as u64,
                torn_bytes: 0,
            },
        )),
        Err(e) => Err(e.into()),
    }
}

/// Groups a run of pending outputs into WAL records starting at sequence
/// number `seq`: contiguous released events batch into one record, each
/// gap gets its own.
pub(crate) fn batch_outputs(pending: &[IngestOutput], mut seq: u64) -> Vec<WalRecord> {
    let mut records = Vec::new();
    let mut run: Vec<MemEvent> = Vec::new();
    for out in pending {
        match out {
            IngestOutput::Released(e) => run.push(*e),
            IngestOutput::Gap(g) => {
                if !run.is_empty() {
                    let n = run.len() as u64;
                    records.push(WalRecord {
                        seq,
                        payload: WalPayload::Events(std::mem::take(&mut run)),
                    });
                    seq += n;
                }
                records.push(WalRecord {
                    seq,
                    payload: WalPayload::Gap(*g),
                });
                seq += 1;
            }
        }
    }
    if !run.is_empty() {
        records.push(WalRecord {
            seq,
            payload: WalPayload::Events(run),
        });
    }
    records
}

/// A [`ShardedOnline`] engine behind a write-ahead log: every accepted
/// ingest output is durable before it mutates predictor state, periodic
/// compaction folds the log into a checkpoint, and [`DurableOnline::open`]
/// recovers from a crash at any WAL byte offset to a state bit-identical
/// to an uncrashed run over the same prefix (see the module docs).
///
/// Directory layout under the engine's root:
///
/// ```text
/// root/
///   wal.log          MFW1 record log (torn tail truncated on open)
///   checkpoint.bin   MFD1 container: applied watermark + MFS1 payload
/// ```
#[derive(Debug)]
pub struct DurableOnline<'a> {
    dir: PathBuf,
    engine: ShardedOnline<'a>,
    stores: &'a [FeatureStore],
    wal: BufWriter<File>,
    pending: Vec<IngestOutput>,
    /// Global sequence number of the next output to be accepted; equals
    /// the number of outputs durably applied once `pending` is empty.
    next_seq: u64,
    records_since_compact: u64,
    cfg: DurableConfig,
    metrics: WalMetrics,
}

impl<'a> DurableOnline<'a> {
    /// Opens (or creates) a durable engine rooted at `dir`, recovering
    /// checkpoint + WAL state if present. `stores` must have the same
    /// length as any previously checkpointed shard count — resharding a
    /// snapshot is unsound for the same reason as
    /// [`ServeCheckpoint::restore`].
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt checkpoint container, or a WAL whose
    /// header is not `MFW1`. A *torn* WAL tail is not an error: it is
    /// measured in the report and truncated.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        dir: impl Into<PathBuf>,
        lake: &'a DataLake,
        stores: &'a [FeatureStore],
        registry: &'a ModelRegistry,
        platform: Platform,
        online: OnlineConfig,
        cfg: DurableConfig,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let metrics = WalMetrics::new();
        let mut report = RecoveryReport::default();
        let replay_span = metrics.replay_seconds.time();

        // 1. Latest checkpoint, if any.
        let ckpt_path = dir.join("checkpoint.bin");
        let mut engine = match fs::read(&ckpt_path) {
            Ok(bytes) => {
                let (applied, cp) = decode_durable_checkpoint(&bytes)?;
                if cp.shards.len() != stores.len() {
                    return Err(WalError::ShardCountMismatch {
                        captured: cp.shards.len(),
                        stores: stores.len(),
                    });
                }
                report.checkpoint_applied = applied;
                cp.restore(lake, stores, registry)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                ShardedOnline::new(lake, stores, registry, platform, online)
            }
            Err(e) => return Err(e.into()),
        };
        engine.set_score_trace(cfg.record_scores);
        let mut next_seq = report.checkpoint_applied;

        // 2. Replay the WAL tail past the checkpoint watermark.
        let (file, contents) = recover_wal_file(&dir.join("wal.log"))?;
        report.wal_records = contents.records.len() as u64;
        report.torn_tail_bytes = contents.torn_bytes;
        if contents.torn_bytes > 0 {
            metrics.torn_tails.incr();
        }
        for record in &contents.records {
            match &record.payload {
                WalPayload::Events(events) => {
                    for (i, e) in events.iter().enumerate() {
                        if record.seq + i as u64 >= report.checkpoint_applied {
                            engine.observe(e);
                            report.outputs_replayed += 1;
                        } else {
                            report.outputs_skipped += 1;
                        }
                    }
                }
                WalPayload::Gap(gap) => {
                    if record.seq >= report.checkpoint_applied {
                        engine.note_gap(gap.dimm);
                        report.outputs_replayed += 1;
                    } else {
                        report.outputs_skipped += 1;
                    }
                }
            }
            next_seq = next_seq.max(record.seq + record.outputs());
        }
        metrics.replay_records.add(report.wal_records);
        metrics.replay_outputs.add(report.outputs_replayed);
        metrics.replay_skipped.add(report.outputs_skipped);
        replay_span.stop();

        Ok((
            DurableOnline {
                dir,
                engine,
                stores,
                wal: BufWriter::new(file),
                pending: Vec::with_capacity(cfg.batch.max(1)),
                next_seq,
                records_since_compact: 0,
                cfg,
                metrics,
            },
            report,
        ))
    }

    /// Accepts one ingest output: buffered, logged on the next flush,
    /// and only then applied to the engine. Flushes automatically every
    /// [`DurableConfig::batch`] outputs.
    pub fn push(&mut self, out: IngestOutput) -> Result<(), WalError> {
        self.pending.push(out);
        if self.pending.len() >= self.cfg.batch.max(1) {
            self.flush()?;
        }
        Ok(())
    }

    /// Makes every buffered output durable, then applies it to the
    /// engine — the write-ahead ordering. Contiguous released-event runs
    /// are batched into one record; each gap gets its own. Triggers
    /// compaction when the record budget is spent.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let span = self.metrics.flush_seconds.time();
        let pending = std::mem::take(&mut self.pending);
        let records = batch_outputs(&pending, self.next_seq);
        for record in &records {
            let bytes = encode_record(record);
            self.wal.write_all(&bytes)?;
            self.metrics.appends.incr();
            self.metrics.append_bytes.record(bytes.len() as f64);
        }
        self.wal.flush()?;
        if self.cfg.fsync {
            self.wal.get_ref().sync_data()?;
            self.metrics.fsyncs.incr();
        }
        self.metrics.flushes.incr();
        span.stop();
        // Durable — now (and only now) mutate predictor state.
        for out in &pending {
            match out {
                IngestOutput::Released(e) => {
                    self.engine.observe(e);
                }
                IngestOutput::Gap(g) => self.engine.note_gap(g.dimm),
            }
            self.next_seq += 1;
        }
        self.records_since_compact += records.len() as u64;
        if self.records_since_compact >= self.cfg.compact_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the whole WAL into a fresh checkpoint and resets the log:
    /// checkpoint first (atomic rename), WAL truncation second, so a
    /// crash between the two merely makes replay skip covered outputs.
    pub fn compact(&mut self) -> Result<(), WalError> {
        self.flush_pending_for_compact()?;
        let cp = ServeCheckpoint::capture(&self.engine, self.stores);
        let bytes = encode_durable_checkpoint(self.next_seq, &cp);
        atomic_write(&self.dir.join("checkpoint.bin"), &bytes)?;
        // Under fsync, persist the checkpoint's directory entry BEFORE
        // the WAL reset rename: power loss must never observe the
        // reset-but-unsynced log next to the pre-compaction checkpoint.
        if self.cfg.fsync {
            fsync_dir(&self.dir)?;
        }
        // Reset the WAL via the same atomic-rename pattern: a crash here
        // leaves either the old full log (outputs skipped on replay) or
        // the fresh empty one.
        self.wal = BufWriter::new(reset_wal(&self.dir.join("wal.log"))?);
        if self.cfg.fsync {
            fsync_dir(&self.dir)?;
        }
        self.records_since_compact = 0;
        self.metrics.compactions.incr();
        Ok(())
    }

    /// Flushes buffered outputs without re-entering compaction.
    fn flush_pending_for_compact(&mut self) -> Result<(), WalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let budget = std::mem::replace(&mut self.cfg.compact_every, u64::MAX);
        let result = self.flush();
        self.cfg.compact_every = budget;
        result
    }

    /// Flushes the buffer and runs every prediction tick up to `until`
    /// (end of stream). Ticks are a deterministic function of durable
    /// state, so they are not logged — recovery replays the WAL and the
    /// caller re-invokes `finish`.
    ///
    /// When compaction is enabled, shutdown ends with a final compaction
    /// (checkpoint rename, then WAL reset, each directory-synced under
    /// [`DurableConfig::fsync`]) so a kill right after `finish` restarts
    /// from the checkpoint instead of replaying the whole log.
    pub fn finish(&mut self, until: SimTime) -> Result<(), WalError> {
        self.flush()?;
        self.engine.finish(until);
        if self.cfg.compact_every != u64::MAX {
            self.compact()?;
        }
        Ok(())
    }

    /// Outputs durably applied so far (the global sequence watermark);
    /// buffered-but-unflushed outputs are not counted.
    pub fn applied(&self) -> u64 {
        self.next_seq
    }

    /// The underlying sharded engine (read access).
    pub fn engine(&self) -> &ShardedOnline<'a> {
        &self.engine
    }

    /// All alarms raised so far, merged by `(time, dimm)`.
    pub fn alarms(&self) -> Vec<Alarm> {
        self.engine.alarms()
    }

    /// All recorded scores (empty unless
    /// [`DurableConfig::record_scores`]).
    pub fn scores(&self) -> Vec<ScoreRecord> {
        self.engine.scores()
    }

    /// Total model invocations across shards.
    pub fn scored(&self) -> u64 {
        self.engine.scored()
    }
}

// ---------------------------------------------------------------- MFW2 --

/// What a guarded apply decided to do with one durable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyVerdict {
    /// The output was applied to the predictor.
    Applied,
    /// The output was deliberately not applied (e.g. quarantined by the
    /// supervisor); the shard's consumed watermark still advances.
    Skipped,
    /// Applying panicked (the guard caught it). The shard's in-memory
    /// state is suspect: drop it and re-open — the output stays durable
    /// in the WAL and replay retries it through the same guard.
    Crashed,
}

/// The supervisor's hook into state mutation: every durable output
/// passes through the guard before (or instead of) touching the
/// predictor. The default guard applies unconditionally; the supervised
/// guard adds `catch_unwind` and poison quarantine.
pub type Guard<'g, 'a> =
    dyn FnMut(&mut OnlinePredictor<'a>, &IngestOutput, u64) -> ApplyVerdict + 'g;

/// Outcome of a guarded flush: either every newly durable output was
/// consumed, or consumption stopped at a crashing output (everything
/// from `seq` on is durable but unapplied — drop the shard and recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStatus {
    /// All durable outputs were applied or skipped.
    Clean,
    /// The guard reported a crash at this per-shard sequence number.
    Crashed {
        /// Per-shard sequence number of the crashing output.
        seq: u64,
    },
}

/// The directory holding shard `shard`'s log, checkpoint and quarantine
/// side log under an `MFW2` root.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// Appends one output to a shard directory's quarantine side log
/// (`quarantine.log`, plain `MFW1` records keyed by per-shard sequence
/// number), creating the log on first use. Recovery skips listed
/// sequence numbers instead of replaying them; deleting the file is the
/// operator's escape hatch to retry everything in it.
pub fn quarantine_output(shard_dir: &Path, seq: u64, out: &IngestOutput) -> Result<(), WalError> {
    let record = WalRecord {
        seq,
        payload: match out {
            IngestOutput::Released(e) => WalPayload::Events(vec![*e]),
            IngestOutput::Gap(g) => WalPayload::Gap(*g),
        },
    };
    let path = shard_dir.join("quarantine.log");
    let mut f = match OpenOptions::new().append(true).open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => create_wal(&path)?,
        Err(e) => return Err(e.into()),
    };
    f.write_all(&encode_record(&record))?;
    f.sync_data()?;
    mfp_obs::counter("serve_shard_quarantined", &[]).incr();
    Ok(())
}

/// Scans a shard directory's quarantine side log; an absent file is an
/// empty quarantine. Only the valid record prefix is honored (a torn
/// quarantine append re-crashes at worst once more, then re-quarantines).
pub fn scan_quarantine(shard_dir: &Path) -> Result<Vec<WalRecord>, WalError> {
    match fs::read(shard_dir.join("quarantine.log")) {
        Ok(bytes) => Ok(scan(&bytes)?.records),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// Validates (or creates) the `MFW2` meta file recording the root's
/// shard count.
pub(crate) fn check_meta(root: &Path, shards: usize) -> Result<(), WalError> {
    let path = root.join("meta.bin");
    match fs::read(&path) {
        Ok(bytes) => {
            if bytes.len() != 4 + 1 + 4 + 4 || bytes[..4] != META_MAGIC || bytes[4] != META_VERSION
            {
                return Err(WalError::BadMeta("not an MFW2 meta file"));
            }
            let (body, tail) = bytes.split_at(bytes.len() - 4);
            if crc32(body) != u32::from_be_bytes([tail[0], tail[1], tail[2], tail[3]]) {
                return Err(WalError::BadMeta("meta checksum mismatch"));
            }
            let captured = u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
            if captured != shards {
                return Err(WalError::ShardCountMismatch {
                    captured,
                    stores: shards,
                });
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let mut out = Vec::with_capacity(13);
            out.extend_from_slice(&META_MAGIC);
            out.push(META_VERSION);
            out.extend_from_slice(&(shards as u32).to_be_bytes());
            out.extend_from_slice(&crc32(&out).to_be_bytes());
            atomic_write(&path, &out)?;
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

/// One predictor shard behind its own `MFW1` log and `MFD1` checkpoint
/// chain — the unit of independent recovery in the `MFW2` layout and the
/// restartable unit `crate::supervise` manages.
///
/// Sequence numbers are per-shard: output `k` is the `k`-th output ever
/// routed to this shard, a stable coordinate across restarts because
/// routing is a pure hash of DIMM identity. Opening never touches a
/// sibling shard's files, so shards recover (and fail) independently.
///
/// All consumption goes through an apply [`Guard`]; after a
/// [`FlushStatus::Crashed`] or a [`RecoveryReport::replay_crashed`] the
/// instance must be dropped and re-opened.
#[derive(Debug)]
pub struct DurableShard<'a> {
    dir: PathBuf,
    predictor: OnlinePredictor<'a>,
    store: &'a FeatureStore,
    wal: BufWriter<File>,
    pending: Vec<IngestOutput>,
    /// Outputs durably on disk (checkpoint watermark + valid log).
    durable_seq: u64,
    /// Outputs applied or skipped; trails `durable_seq` only after a
    /// crash verdict.
    consumed_seq: u64,
    quarantined: BTreeSet<u64>,
    records_since_compact: u64,
    cfg: DurableConfig,
    metrics: WalMetrics,
}

impl<'a> DurableShard<'a> {
    /// Opens (or creates) one shard rooted at `dir`: restores its `MFD1`
    /// checkpoint if present (otherwise resets `store` so an in-process
    /// restart starts clean), loads its quarantine set, then replays its
    /// own longest valid WAL prefix through `guard`. A guard crash
    /// during replay aborts consumption at that output and is reported
    /// in [`RecoveryReport::replay_crashed`]; everything scanned stays
    /// durable.
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt checkpoint container, or a WAL whose
    /// header is not `MFW1`. Torn tails are measured and truncated, not
    /// errors.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        dir: impl Into<PathBuf>,
        lake: &'a DataLake,
        store: &'a FeatureStore,
        registry: &'a ModelRegistry,
        platform: Platform,
        online: OnlineConfig,
        cfg: DurableConfig,
        shard: usize,
        guard: &mut Guard<'_, 'a>,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let metrics = WalMetrics::new();
        let mut report = RecoveryReport::default();
        let replay_span = metrics.replay_seconds.time();

        let quarantined: BTreeSet<u64> = scan_quarantine(&dir)?.iter().map(|r| r.seq).collect();

        // 1. This shard's checkpoint, if any.
        let mut predictor = match fs::read(dir.join("checkpoint.bin")) {
            Ok(bytes) => {
                let (applied, payload) = decode_durable_envelope(&bytes)?;
                let cp = OnlineCheckpoint::decode(payload)?;
                report.checkpoint_applied = applied;
                cp.restore(lake, store, registry)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // No checkpoint: the store may still hold streams from a
                // previous in-process incarnation — recovery is
                // checkpoint + WAL only, so start it empty.
                store.import_streams(Vec::new());
                OnlinePredictor::new(lake, store, registry, platform, online)
            }
            Err(e) => return Err(e.into()),
        };
        predictor.set_score_trace(cfg.record_scores);

        // 2. Replay this shard's WAL tail past the watermark. Nothing
        // here reads another shard's directory.
        let (file, contents) = recover_wal_file(&dir.join("wal.log"))?;
        report.wal_records = contents.records.len() as u64;
        report.torn_tail_bytes = contents.torn_bytes;
        if contents.torn_bytes > 0 {
            metrics.torn_tails.incr();
        }
        let mut durable_seq = report.checkpoint_applied;
        let mut consumed_seq = report.checkpoint_applied;
        for record in &contents.records {
            let outs: Vec<(u64, IngestOutput)> = match &record.payload {
                WalPayload::Events(events) => events
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (record.seq + i as u64, IngestOutput::Released(*e)))
                    .collect(),
                WalPayload::Gap(g) => vec![(record.seq, IngestOutput::Gap(*g))],
            };
            for (seq, out) in &outs {
                durable_seq = durable_seq.max(seq + 1);
                if *seq < report.checkpoint_applied {
                    report.outputs_skipped += 1;
                    continue;
                }
                if report.replay_crashed.is_some() {
                    continue;
                }
                if quarantined.contains(seq) {
                    report.outputs_quarantined += 1;
                    consumed_seq = seq + 1;
                    continue;
                }
                match guard(&mut predictor, out, *seq) {
                    ApplyVerdict::Applied => {
                        report.outputs_replayed += 1;
                        consumed_seq = seq + 1;
                    }
                    ApplyVerdict::Skipped => {
                        report.outputs_quarantined += 1;
                        consumed_seq = seq + 1;
                    }
                    ApplyVerdict::Crashed => report.replay_crashed = Some(*seq),
                }
            }
        }
        metrics.replay_records.add(report.wal_records);
        metrics.replay_outputs.add(report.outputs_replayed);
        metrics.replay_skipped.add(report.outputs_skipped);
        let label = shard.to_string();
        mfp_obs::counter("wal_replay_records", &[("shard", &label)]).add(report.wal_records);
        replay_span.stop();

        Ok((
            DurableShard {
                dir,
                predictor,
                store,
                wal: BufWriter::new(file),
                pending: Vec::with_capacity(cfg.batch.max(1)),
                durable_seq,
                consumed_seq,
                quarantined,
                records_since_compact: 0,
                cfg,
                metrics,
            },
            report,
        ))
    }

    /// Accepts the next output routed to this shard: buffered, logged on
    /// the next flush, then consumed through `guard`.
    pub fn push(
        &mut self,
        out: IngestOutput,
        guard: &mut Guard<'_, 'a>,
    ) -> Result<FlushStatus, WalError> {
        self.pending.push(out);
        if self.pending.len() >= self.cfg.batch.max(1) {
            return self.flush(guard);
        }
        Ok(FlushStatus::Clean)
    }

    /// Makes every buffered output durable, then consumes each through
    /// `guard` — the same write-ahead ordering as [`DurableOnline`]. On
    /// a crash verdict the remaining outputs stay durable but unapplied
    /// and the caller must drop + re-open the shard.
    pub fn flush(&mut self, guard: &mut Guard<'_, 'a>) -> Result<FlushStatus, WalError> {
        if self.pending.is_empty() {
            return Ok(FlushStatus::Clean);
        }
        let span = self.metrics.flush_seconds.time();
        let pending = std::mem::take(&mut self.pending);
        let records = batch_outputs(&pending, self.durable_seq);
        for record in &records {
            let bytes = encode_record(record);
            self.wal.write_all(&bytes)?;
            self.metrics.appends.incr();
            self.metrics.append_bytes.record(bytes.len() as f64);
        }
        self.wal.flush()?;
        if self.cfg.fsync {
            self.wal.get_ref().sync_data()?;
            self.metrics.fsyncs.incr();
        }
        self.metrics.flushes.incr();
        span.stop();
        // Durable — now consume through the guard.
        let base = self.durable_seq;
        self.durable_seq += pending.len() as u64;
        let mut status = FlushStatus::Clean;
        for (i, out) in pending.iter().enumerate() {
            if status != FlushStatus::Clean {
                break;
            }
            let seq = base + i as u64;
            if self.quarantined.contains(&seq) {
                self.consumed_seq = seq + 1;
                continue;
            }
            match guard(&mut self.predictor, out, seq) {
                ApplyVerdict::Crashed => status = FlushStatus::Crashed { seq },
                _ => self.consumed_seq = seq + 1,
            }
        }
        self.records_since_compact += records.len() as u64;
        if status == FlushStatus::Clean && self.records_since_compact >= self.cfg.compact_every {
            self.compact()?;
        }
        Ok(status)
    }

    /// Folds this shard's WAL into a fresh `MFD1` checkpoint and resets
    /// the log (same rename ordering and fsync rules as
    /// [`DurableOnline::compact`]). Requires a clean shard: everything
    /// flushed, nothing unconsumed.
    pub fn compact(&mut self) -> Result<(), WalError> {
        assert!(self.pending.is_empty(), "flush before compacting");
        assert_eq!(
            self.consumed_seq, self.durable_seq,
            "cannot checkpoint a crashed shard"
        );
        let cp = OnlineCheckpoint::capture(&self.predictor, self.store);
        let bytes = encode_durable_envelope(self.durable_seq, &cp.encode());
        atomic_write(&self.dir.join("checkpoint.bin"), &bytes)?;
        if self.cfg.fsync {
            fsync_dir(&self.dir)?;
        }
        self.wal = BufWriter::new(reset_wal(&self.dir.join("wal.log"))?);
        if self.cfg.fsync {
            fsync_dir(&self.dir)?;
        }
        self.records_since_compact = 0;
        self.metrics.compactions.incr();
        Ok(())
    }

    /// Flushes, runs prediction ticks up to `until`, then (with
    /// compaction enabled) folds the final state into a checkpoint. A
    /// crash verdict during the flush is returned without ticking.
    pub fn finish(
        &mut self,
        until: SimTime,
        guard: &mut Guard<'_, 'a>,
    ) -> Result<FlushStatus, WalError> {
        match self.flush(guard)? {
            FlushStatus::Clean => {}
            crashed => return Ok(crashed),
        }
        self.predictor.finish(until);
        if self.cfg.compact_every != u64::MAX {
            self.compact()?;
        }
        Ok(FlushStatus::Clean)
    }

    /// Outputs this shard has consumed (applied or skipped).
    pub fn consumed(&self) -> u64 {
        self.consumed_seq
    }

    /// Outputs durably logged or checkpointed.
    pub fn durable(&self) -> u64 {
        self.durable_seq
    }

    /// Outputs handed to [`DurableShard::push`] so far, including the
    /// still-buffered tail — the caller's re-feed position.
    pub fn fed(&self) -> u64 {
        self.durable_seq + self.pending.len() as u64
    }

    /// Per-shard sequence numbers the quarantine side log lists.
    pub fn quarantined(&self) -> &BTreeSet<u64> {
        &self.quarantined
    }

    /// The shard's predictor (read access).
    pub fn predictor(&self) -> &OnlinePredictor<'a> {
        &self.predictor
    }

    /// Alarms this shard has raised, in raise order.
    pub fn alarms(&self) -> &[Alarm] {
        self.predictor.alarms()
    }

    /// This shard's score trace (empty unless
    /// [`DurableConfig::record_scores`]).
    pub fn score_trace(&self) -> &[ScoreRecord] {
        self.predictor.score_trace()
    }

    /// Model invocations on this shard.
    pub fn scored(&self) -> u64 {
        self.predictor.scored()
    }
}

/// The unsupervised `MFW2` engine: one [`DurableShard`] per feature
/// store behind the pure hash router, each with its own log and
/// checkpoint chain. Produces alarms and scores bit-identical to the
/// sequential predictor (and to [`DurableOnline`]) for the same stream.
///
/// On re-open after a crash the caller re-feeds the stream from the
/// start: [`ShardedDurable::push`] counts the outputs routed to each
/// shard and skips the prefix that shard already recovered, so shards
/// cut at *different* offsets re-synchronize without any cross-shard
/// coordination. `crate::supervise::Supervisor` builds restart, backoff
/// and quarantine handling on top of the same per-shard units.
#[derive(Debug)]
pub struct ShardedDurable<'a> {
    shards: Vec<DurableShard<'a>>,
    /// Outputs routed to each shard by this incarnation's feed.
    seen: Vec<u64>,
    /// Each shard's feed position recovered at open; the skip threshold.
    recovered: Vec<u64>,
}

impl<'a> ShardedDurable<'a> {
    /// Opens (or creates) an `MFW2` root with one shard per store,
    /// recovering every shard independently.
    ///
    /// # Errors
    ///
    /// Everything [`DurableShard::open`] returns, plus
    /// [`WalError::BadMeta`] / [`WalError::ShardCountMismatch`] when the
    /// root's meta file disagrees with `stores`.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        dir: impl Into<PathBuf>,
        lake: &'a DataLake,
        stores: &'a [FeatureStore],
        registry: &'a ModelRegistry,
        platform: Platform,
        online: OnlineConfig,
        cfg: DurableConfig,
    ) -> Result<(Self, Vec<RecoveryReport>), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        check_meta(&dir, stores.len())?;
        let mut shards = Vec::with_capacity(stores.len());
        let mut reports = Vec::with_capacity(stores.len());
        let mut guard = apply_unguarded();
        for (s, store) in stores.iter().enumerate() {
            let (unit, report) = DurableShard::open(
                shard_dir(&dir, s),
                lake,
                store,
                registry,
                platform,
                online,
                cfg,
                s,
                &mut guard,
            )?;
            shards.push(unit);
            reports.push(report);
        }
        let recovered = shards.iter().map(|u| u.fed()).collect();
        Ok((
            ShardedDurable {
                seen: vec![0; shards.len()],
                shards,
                recovered,
            },
            reports,
        ))
    }

    /// Accepts the next output of the canonical stream: routed to its
    /// home shard, skipped if that shard's recovery already covers it.
    pub fn push(&mut self, out: IngestOutput) -> Result<(), WalError> {
        let s = shard_route(&out, self.shards.len());
        self.seen[s] += 1;
        if self.seen[s] <= self.recovered[s] {
            return Ok(());
        }
        let mut guard = apply_unguarded();
        self.shards[s].push(out, &mut guard)?;
        Ok(())
    }

    /// Flushes every shard's buffered outputs.
    pub fn flush(&mut self) -> Result<(), WalError> {
        let mut guard = apply_unguarded();
        for shard in &mut self.shards {
            shard.flush(&mut guard)?;
        }
        Ok(())
    }

    /// Flushes and runs every shard's prediction ticks up to `until`
    /// (compacting at shutdown when enabled, like
    /// [`DurableOnline::finish`]).
    pub fn finish(&mut self, until: SimTime) -> Result<(), WalError> {
        let mut guard = apply_unguarded();
        for shard in &mut self.shards {
            shard.finish(until, &mut guard)?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard (read access).
    pub fn shard(&self, s: usize) -> &DurableShard<'a> {
        &self.shards[s]
    }

    /// Total outputs consumed across shards.
    pub fn consumed(&self) -> u64 {
        self.shards.iter().map(|s| s.consumed()).sum()
    }

    /// All alarms raised so far, merged by `(time, dimm)`.
    pub fn alarms(&self) -> Vec<Alarm> {
        let mut out: Vec<Alarm> = self
            .shards
            .iter()
            .flat_map(|s| s.alarms().iter().copied())
            .collect();
        out.sort_by_key(|a| (a.time, a.dimm));
        out
    }

    /// All recorded scores, merged by `(time, dimm)`.
    pub fn scores(&self) -> Vec<ScoreRecord> {
        let mut out: Vec<ScoreRecord> = self
            .shards
            .iter()
            .flat_map(|s| s.score_trace().iter().copied())
            .collect();
        out.sort_by_key(|r| (r.time, r.dimm));
        out
    }

    /// Total model invocations across shards.
    pub fn scored(&self) -> u64 {
        self.shards.iter().map(|s| s.scored()).sum()
    }
}

/// The default apply guard: apply everything, catch nothing.
fn apply_unguarded<'a>() -> impl FnMut(&mut OnlinePredictor<'a>, &IngestOutput, u64) -> ApplyVerdict
{
    |predictor, out, _seq| {
        predictor.apply(out);
        ApplyVerdict::Applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_store::FeatureStore;
    use crate::online::OnlinePredictor;
    use crate::serve::make_stores;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use mfp_dram::spec::DimmSpec;
    use mfp_features::fault_analysis::FaultThresholds;
    use mfp_features::labeling::ProblemConfig;
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::model::{Algorithm, Model};
    use mfp_ml::risky_ce::RiskyCePattern;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test invocation (parallel-safe).
    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "mfp_wal_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("create scratch dir");
        d
    }

    fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
        let bits: Vec<(u8, u8)> = if flip {
            vec![(1, 20), (5, 21)]
        } else {
            vec![(1, 20)]
        };
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits(bits),
        })
    }

    fn setup(lake: &DataLake, registry: &ModelRegistry) -> Vec<DimmId> {
        let dimms: Vec<DimmId> = (0..8u32).map(|k| DimmId::new(k, (k % 2) as u8)).collect();
        for &id in &dimms {
            lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        }
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            Model::RiskyCe(RiskyCePattern::default()),
        );
        registry.promote(mid);
        dimms
    }

    /// A canonical ingest-output stream: time-ordered released events
    /// (half the fleet risky) with two collection gaps in the middle.
    fn outputs(dimms: &[DimmId]) -> Vec<IngestOutput> {
        let mut out: Vec<IngestOutput> = (0..20 * dimms.len() as u64)
            .map(|k| {
                let d = dimms[(k % dimms.len() as u64) as usize];
                IngestOutput::Released(risky_ce(1_000 + k * 1_800, d, d.server.0 % 2 == 0))
            })
            .collect();
        out.insert(
            40,
            IngestOutput::Gap(GapRecord {
                dimm: dimms[0],
                from: SimTime::from_secs(50_000),
                to: SimTime::from_secs(90_000),
            }),
        );
        out.insert(
            90,
            IngestOutput::Gap(GapRecord {
                dimm: dimms[3],
                from: SimTime::from_secs(120_000),
                to: SimTime::from_secs(170_000),
            }),
        );
        out
    }

    fn oracle(
        lake: &DataLake,
        registry: &ModelRegistry,
        outs: &[IngestOutput],
        end: SimTime,
    ) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            lake,
            &store,
            registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        p.set_score_trace(true);
        for out in outs {
            p.apply(out);
        }
        p.finish(end);
        (p.alarms().to_vec(), p.score_trace().to_vec(), p.scored())
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn record_roundtrip_and_torn_prefix_scan() {
        let id = DimmId::new(3, 1);
        let records = vec![
            WalRecord {
                seq: 0,
                payload: WalPayload::Events(vec![risky_ce(10, id, true), risky_ce(20, id, false)]),
            },
            WalRecord {
                seq: 2,
                payload: WalPayload::Gap(GapRecord {
                    dimm: id,
                    from: SimTime::from_secs(20),
                    to: SimTime::from_secs(400_000),
                }),
            },
            WalRecord {
                seq: 3,
                payload: WalPayload::Events(vec![risky_ce(500_000, id, true)]),
            },
        ];
        let mut image: Vec<u8> = WAL_MAGIC.to_vec();
        image.push(WAL_VERSION);
        let mut boundaries = vec![image.len()];
        for r in &records {
            image.extend_from_slice(&encode_record(r));
            boundaries.push(image.len());
        }
        let full = scan(&image).unwrap();
        assert_eq!(full.records, records);
        assert_eq!(full.valid_bytes, image.len() as u64);
        assert_eq!(full.torn_bytes, 0);

        // Truncation at EVERY byte offset: the scan returns exactly the
        // records whose bytes are fully present, and never errors.
        for cut in 0..image.len() {
            let c = scan(&image[..cut]).unwrap();
            let complete = boundaries
                .iter()
                .filter(|&&b| b <= cut)
                .count()
                .saturating_sub(1);
            assert_eq!(
                c.records.len(),
                complete.min(records.len()),
                "cut at {cut}: wrong record count"
            );
            assert_eq!(c.records[..], records[..c.records.len()]);
        }

        // A flipped bit anywhere in a record body ends the prefix there.
        for i in (HEADER_LEN..image.len()).step_by(7) {
            let mut corrupt = image.clone();
            corrupt[i] ^= 1 << (i % 8);
            let c = scan(&corrupt).unwrap();
            let intact = boundaries.iter().filter(|&&b| b <= i).count() - 1;
            assert!(
                c.records.len() <= intact.min(records.len()).max(0),
                "bit flip at {i} must not extend the valid prefix"
            );
            assert_eq!(c.records[..], records[..c.records.len()]);
        }

        // A non-WAL file is rejected outright.
        assert!(matches!(scan(b"GARBAGE!"), Err(WalError::BadHeader)));
        assert!(matches!(scan(b"XY"), Err(WalError::BadHeader)));
        // A torn header is an empty log, not garbage.
        let torn = scan(b"MFW").unwrap();
        assert!(torn.records.is_empty());
        assert_eq!(torn.torn_bytes, 3);
    }

    #[test]
    fn durable_run_matches_the_sequential_oracle() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, end);
        assert!(
            !ref_alarms.is_empty(),
            "stream must alarm or the test is vacuous"
        );

        for shards in [1usize, 2, 4] {
            let dir = test_dir("clean");
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let cfg = DurableConfig {
                batch: 7,
                record_scores: true,
                ..DurableConfig::default()
            };
            let (mut durable, report) = DurableOnline::open(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                cfg,
            )
            .unwrap();
            assert_eq!(report, RecoveryReport::default());
            for out in &outs {
                durable.push(*out).unwrap();
            }
            durable.finish(end).unwrap();
            assert_eq!(durable.alarms(), ref_alarms, "{shards} shards: alarms");
            assert_eq!(durable.scores(), ref_scores, "{shards} shards: scores");
            assert_eq!(durable.scored(), ref_scored);
            assert_eq!(durable.applied(), outs.len() as u64);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn truncating_the_wal_anywhere_recovers_bit_identically() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, end);

        for shards in [1usize, 2, 4] {
            // Write the complete WAL once (no compaction, so the file
            // covers the whole stream).
            let dir = test_dir("sweep");
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let cfg = DurableConfig {
                batch: 5,
                compact_every: u64::MAX,
                record_scores: true,
                ..DurableConfig::default()
            };
            let (mut writer, _) = DurableOnline::open(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                cfg,
            )
            .unwrap();
            for out in &outs {
                writer.push(*out).unwrap();
            }
            writer.flush().unwrap();
            drop(writer);
            let image = fs::read(dir.join("wal.log")).unwrap();
            let boundaries: Vec<usize> = {
                let mut b = vec![HEADER_LEN];
                let mut off = HEADER_LEN;
                while off < image.len() {
                    let plen = u32::from_be_bytes([
                        image[off + 9],
                        image[off + 10],
                        image[off + 11],
                        image[off + 12],
                    ]) as usize;
                    off += RECORD_HEADER_LEN + plen + 4;
                    b.push(off);
                }
                b
            };
            // Crash at every record boundary plus torn offsets sampled
            // across the whole file (densely for the single-shard config,
            // sparsely for the rest — torn-tail handling is
            // shard-independent, so the expensive part of the sweep does
            // not need to be repeated per shard count).
            let mut cuts: Vec<usize> = boundaries.clone();
            let step = if shards == 1 { 461 } else { 1847 };
            cuts.extend((0..image.len()).step_by(step));
            cuts.sort_unstable();
            cuts.dedup();
            for cut in cuts {
                let crash_dir = test_dir("sweep_cut");
                fs::write(crash_dir.join("wal.log"), &image[..cut]).unwrap();
                let (mut resumed, report) = DurableOnline::open(
                    &crash_dir,
                    &lake,
                    &stores,
                    &registry,
                    Platform::IntelPurley,
                    OnlineConfig::default(),
                    cfg,
                )
                .unwrap();
                let m = report.outputs_replayed as usize;
                assert!(m <= outs.len());
                if cut > 0 && boundaries.binary_search(&cut).is_err() {
                    assert!(report.torn_tail_bytes > 0, "mid-record cut at {cut}");
                }
                for out in &outs[m..] {
                    resumed.push(*out).unwrap();
                }
                resumed.finish(end).unwrap();
                assert_eq!(
                    resumed.alarms(),
                    ref_alarms,
                    "{shards} shards, crash at byte {cut}: alarms diverged"
                );
                assert_eq!(
                    resumed.scores(),
                    ref_scores,
                    "{shards} shards, crash at byte {cut}: scores diverged"
                );
                assert_eq!(resumed.scored(), ref_scored);
                assert_eq!(resumed.applied(), outs.len() as u64);
                let _ = fs::remove_dir_all(&crash_dir);
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn compaction_bounds_the_wal_and_recovery_still_matches() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, _, ref_scored) = oracle(&lake, &registry, &outs, end);

        let dir = test_dir("compact");
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let cfg = DurableConfig {
            batch: 5,
            compact_every: 4,
            fsync: true,
            ..DurableConfig::default()
        };
        let (mut durable, _) = DurableOnline::open(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            cfg,
        )
        .unwrap();
        for out in &outs {
            durable.push(*out).unwrap();
        }
        durable.flush().unwrap();
        drop(durable);
        assert!(
            dir.join("checkpoint.bin").exists(),
            "compaction must checkpoint"
        );
        let wal_len = fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(
            wal_len < 2_000,
            "compaction must bound the log (got {wal_len} bytes)"
        );

        // Crash after the stream: reopen, finish, compare.
        let restore_stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let (mut resumed, report) = DurableOnline::open(
            &dir,
            &lake,
            &restore_stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            cfg,
        )
        .unwrap();
        assert!(report.checkpoint_applied > 0);
        assert_eq!(
            report.checkpoint_applied + report.outputs_replayed,
            outs.len() as u64
        );
        resumed.finish(end).unwrap();
        assert_eq!(resumed.alarms(), ref_alarms);
        assert_eq!(resumed.scored(), ref_scored);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_skips_outputs_the_checkpoint_already_covers() {
        // Simulate a crash between the checkpoint rename and the WAL
        // reset: pair a *full* WAL with a checkpoint that covers all of
        // it. Replay must skip, not double-apply.
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, _, ref_scored) = oracle(&lake, &registry, &outs, end);

        // Full WAL, no compaction.
        let wal_dir = test_dir("skipsrc");
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let nocompact = DurableConfig {
            batch: 5,
            compact_every: u64::MAX,
            ..DurableConfig::default()
        };
        let (mut writer, _) = DurableOnline::open(
            &wal_dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            nocompact,
        )
        .unwrap();
        for out in &outs {
            writer.push(*out).unwrap();
        }
        writer.flush().unwrap();
        // Checkpoint covering the whole stream, taken from the live
        // engine (what compaction writes just before resetting the WAL).
        let cp = ServeCheckpoint::capture(writer.engine(), &stores);
        let ckpt = encode_durable_checkpoint(outs.len() as u64, &cp);
        drop(writer);

        let crash_dir = test_dir("skip");
        fs::copy(wal_dir.join("wal.log"), crash_dir.join("wal.log")).unwrap();
        fs::write(crash_dir.join("checkpoint.bin"), &ckpt).unwrap();
        let restore_stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let (mut resumed, report) = DurableOnline::open(
            &crash_dir,
            &lake,
            &restore_stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            nocompact,
        )
        .unwrap();
        assert_eq!(report.checkpoint_applied, outs.len() as u64);
        assert_eq!(
            report.outputs_replayed, 0,
            "covered outputs must be skipped"
        );
        assert_eq!(report.outputs_skipped, outs.len() as u64);
        resumed.finish(end).unwrap();
        assert_eq!(resumed.alarms(), ref_alarms);
        assert_eq!(resumed.scored(), ref_scored);
        let _ = fs::remove_dir_all(&wal_dir);
        let _ = fs::remove_dir_all(&crash_dir);
    }

    #[test]
    fn corrupt_checkpoint_is_detected_not_restored() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let _ = setup(&lake, &registry);
        let dir = test_dir("badckpt");
        fs::write(
            dir.join("checkpoint.bin"),
            b"MFD1\x01garbage-that-is-long-enough....",
        )
        .unwrap();
        let stores = make_stores(1, ProblemConfig::default(), FaultThresholds::default());
        let err = DurableOnline::open(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            DurableConfig::default(),
        )
        .err()
        .expect("corrupt checkpoint must not restore");
        assert!(matches!(err, WalError::Checkpoint(_)), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    // ------------------------------------------------------ MFW2 tests --

    fn traced() -> DurableConfig {
        DurableConfig {
            batch: 5,
            compact_every: u64::MAX,
            record_scores: true,
            ..DurableConfig::default()
        }
    }

    #[test]
    fn sharded_durable_matches_the_sequential_oracle() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, end);

        for shards in [1usize, 2, 4] {
            let dir = test_dir("mfw2clean");
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let (mut sd, reports) = ShardedDurable::open(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                traced(),
            )
            .unwrap();
            assert_eq!(reports.len(), shards);
            for r in &reports {
                assert_eq!(*r, RecoveryReport::default());
            }
            for out in &outs {
                sd.push(*out).unwrap();
            }
            sd.finish(end).unwrap();
            assert_eq!(sd.alarms(), ref_alarms, "{shards} shards: alarms");
            assert_eq!(sd.scores(), ref_scores, "{shards} shards: scores");
            assert_eq!(sd.scored(), ref_scored);
            assert_eq!(sd.consumed(), outs.len() as u64);
            // Every shard got its own directory with its own log.
            for s in 0..shards {
                assert!(shard_dir(&dir, s).join("wal.log").exists());
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn shards_cut_at_different_offsets_recover_independently() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&lake, &registry, &outs, end);
        let shards = 4usize;

        // Each sweep iteration tears every shard's WAL at a *different*
        // relative offset, then recovers the whole root by re-feeding
        // the canonical stream (covered outputs are skipped per shard).
        for cuts in [
            [0.0f64, 0.3, 0.7, 1.0],
            [0.95, 0.05, 0.5, 0.85],
            [1.0, 1.0, 0.01, 0.99],
        ] {
            let dir = test_dir("mfw2cut");
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let (mut sd, _) = ShardedDurable::open(
                &dir,
                &lake,
                &stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                traced(),
            )
            .unwrap();
            for out in &outs {
                sd.push(*out).unwrap();
            }
            sd.flush().unwrap();
            drop(sd);

            for (s, frac) in cuts.iter().enumerate() {
                let path = shard_dir(&dir, s).join("wal.log");
                let image = fs::read(&path).unwrap();
                let keep = (image.len() as f64 * frac) as usize;
                fs::write(&path, &image[..keep]).unwrap();
            }

            let restore = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let (mut resumed, reports) = ShardedDurable::open(
                &dir,
                &lake,
                &restore,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
                traced(),
            )
            .unwrap();
            let replayed: u64 = reports.iter().map(|r| r.outputs_replayed).sum();
            assert!(replayed <= outs.len() as u64);
            for out in &outs {
                resumed.push(*out).unwrap();
            }
            resumed.finish(end).unwrap();
            assert_eq!(resumed.alarms(), ref_alarms, "cuts {cuts:?}: alarms");
            assert_eq!(resumed.scores(), ref_scores, "cuts {cuts:?}: scores");
            assert_eq!(resumed.scored(), ref_scored, "cuts {cuts:?}: scored");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn single_shard_recovery_never_reads_sibling_files() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let shards = 2usize;

        let dir = test_dir("sibling");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let (mut sd, _) = ShardedDurable::open(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
        )
        .unwrap();
        for out in &outs {
            sd.push(*out).unwrap();
        }
        sd.flush().unwrap();
        drop(sd);

        // Baseline: shard 0 recovered alone, before any sabotage.
        let probe = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut guard = apply_unguarded();
        let (unit, baseline) = DurableShard::open(
            shard_dir(&dir, 0),
            &lake,
            &probe,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            0,
            &mut guard,
        )
        .unwrap();
        let baseline_alarms = unit.alarms().to_vec();
        drop(unit);

        // Vandalize every sibling file: garbage WAL, garbage checkpoint,
        // garbage quarantine log.
        let sib = shard_dir(&dir, 1);
        fs::write(sib.join("wal.log"), b"NOT-A-WAL-AT-ALL................").unwrap();
        fs::write(sib.join("checkpoint.bin"), b"JUNKJUNKJUNKJUNKJUNK").unwrap();
        fs::write(sib.join("quarantine.log"), b"ALSO-GARBAGE").unwrap();

        let probe2 = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut guard2 = apply_unguarded();
        let (unit2, after) = DurableShard::open(
            shard_dir(&dir, 0),
            &lake,
            &probe2,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            0,
            &mut guard2,
        )
        .unwrap();
        assert_eq!(
            after, baseline,
            "sibling garbage must not change shard 0 recovery"
        );
        assert_eq!(unit2.alarms(), baseline_alarms);
        drop(unit2);

        // Sanity: the sabotage IS visible to anyone who actually reads
        // shard 1 — proving shard 0's immunity is isolation, not luck.
        let probe3 = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut guard3 = apply_unguarded();
        let err = DurableShard::open(
            shard_dir(&dir, 1),
            &lake,
            &probe3,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            1,
            &mut guard3,
        )
        .err()
        .expect("vandalized shard 1 must fail to open");
        assert!(
            matches!(err, WalError::BadHeader | WalError::Checkpoint(_)),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_file_mismatch_and_corruption_are_typed_errors() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let _ = setup(&lake, &registry);
        let dir = test_dir("meta");
        let two = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let (sd, _) = ShardedDurable::open(
            &dir,
            &lake,
            &two,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
        )
        .unwrap();
        assert_eq!(sd.shard_count(), 2);
        drop(sd);

        // Reopening with a different shard count is a typed refusal, not
        // silent re-partitioning (per-shard seqs would be garbage).
        let three = make_stores(3, ProblemConfig::default(), FaultThresholds::default());
        let err = ShardedDurable::open(
            &dir,
            &lake,
            &three,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
        )
        .err()
        .expect("shard-count mismatch must not open");
        assert!(
            matches!(
                err,
                WalError::ShardCountMismatch {
                    captured: 2,
                    stores: 3
                }
            ),
            "got {err}"
        );

        // A corrupt meta file is corrupt data, not a panic.
        fs::write(dir.join("meta.bin"), b"MFW2junk.....").unwrap();
        let err = ShardedDurable::open(
            &dir,
            &lake,
            &two,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
        )
        .err()
        .expect("corrupt meta must not open");
        assert!(matches!(err, WalError::BadMeta(_)), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_compacts_at_shutdown_so_a_kill_after_it_loses_nothing() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);
        let (ref_alarms, _, ref_scored) = oracle(&lake, &registry, &outs, end);

        let dir = test_dir("shutdown");
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let cfg = DurableConfig {
            batch: 4,
            compact_every: 64, // would never trigger mid-stream here
            fsync: true,
            ..DurableConfig::default()
        };
        let (mut durable, _) = DurableOnline::open(
            &dir,
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            cfg,
        )
        .unwrap();
        for out in &outs {
            durable.push(*out).unwrap();
        }
        durable.finish(end).unwrap();
        drop(durable);

        // Kill-at-shutdown: the process dies right after finish returns.
        // The shutdown compaction must have folded EVERYTHING into the
        // checkpoint — reopen restores it with zero replay work.
        let restore = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let (mut resumed, report) = DurableOnline::open(
            &dir,
            &lake,
            &restore,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            cfg,
        )
        .unwrap();
        assert_eq!(
            report.checkpoint_applied,
            outs.len() as u64,
            "all outputs checkpointed"
        );
        assert_eq!(report.wal_records, 0, "WAL reset at shutdown");
        assert_eq!(report.outputs_replayed, 0);
        resumed.finish(end).unwrap();
        assert_eq!(resumed.alarms(), ref_alarms);
        assert_eq!(resumed.scored(), ref_scored);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_log_roundtrips_and_recovery_skips_listed_outputs() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let outs = outputs(&dimms);
        let end = SimTime::from_secs(40 * 86_400);

        let dir = test_dir("quarantine");
        let sdir = shard_dir(&dir, 0);
        fs::create_dir_all(&sdir).unwrap();
        assert!(
            scan_quarantine(&sdir).unwrap().is_empty(),
            "absent log is empty"
        );

        // Round-trip an event output and a gap output through the log.
        quarantine_output(&sdir, 3, &outs[3]).unwrap();
        quarantine_output(&sdir, 40, &outs[40]).unwrap(); // the gap
        let q = scan_quarantine(&sdir).unwrap();
        assert_eq!(q.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 40]);
        match (&q[0].payload, &outs[3]) {
            (WalPayload::Events(es), IngestOutput::Released(e)) => assert_eq!(es[..], [*e]),
            other => panic!("wrong quarantine payload: {other:?}"),
        }
        match (&q[1].payload, &outs[40]) {
            (WalPayload::Gap(g), IngestOutput::Gap(want)) => assert_eq!(g, want),
            other => panic!("wrong quarantine payload: {other:?}"),
        }

        // A shard opened over that quarantine set consumes the full
        // stream but applies the filtered one.
        let filtered: Vec<IngestOutput> = outs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 40)
            .map(|(_, o)| *o)
            .collect();
        let (ref_alarms, _, ref_scored) = oracle(&lake, &registry, &filtered, end);

        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut guard = apply_unguarded();
        let (mut unit, report) = DurableShard::open(
            &sdir,
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            0,
            &mut guard,
        )
        .unwrap();
        assert_eq!(report.outputs_quarantined, 0, "nothing in the WAL yet");
        for out in &outs {
            unit.push(*out, &mut guard).unwrap();
        }
        assert_eq!(unit.finish(end, &mut guard).unwrap(), FlushStatus::Clean);
        assert_eq!(
            unit.consumed(),
            outs.len() as u64,
            "quarantined outputs still consume"
        );
        assert_eq!(
            unit.alarms(),
            ref_alarms,
            "state equals the filtered oracle"
        );
        assert_eq!(unit.scored(), ref_scored);
        let _ = fs::remove_dir_all(&dir);
    }
}
