//! Sharded, pipelined online serving: fleet-scale prediction with the
//! single-predictor determinism contract intact.
//!
//! [`OnlinePredictor`] folds one platform's event stream sequentially;
//! at a million DIMMs that single fold is wall-clock-bound while every
//! DIMM's state — vote streak, cooldown entry, degraded cache, rolling
//! feature window — is independent of every other DIMM's. This module
//! partitions that state by a **stable DIMM hash** ([`shard_of`]) into
//! `shards` sub-predictors, each owning its own [`FeatureStore`], and
//! drives them either synchronously ([`ShardedOnline`]) or as a
//! backpressured pipeline on a scoped worker pool ([`serve_pipeline`]):
//! ingest → validate → route → score → alarm, with bounded channels at
//! every hand-off.
//!
//! # Determinism argument
//!
//! The engine inherits the bar set by `mfp_sim::sharded`: for a fixed
//! event stream the alarms **and scores** are bit-identical to the
//! sequential [`OnlinePredictor`] at any shard/worker count.
//!
//! * **Routing** is a pure function of the DIMM id ([`shard_of`], a
//!   SplitMix64 finalizer over `(server, slot)`): no load balancing, no
//!   arrival-order dependence, so a DIMM lives in exactly one shard for
//!   the lifetime of the deployment.
//! * **Per-DIMM state is closed under sharding.** A prediction tick at
//!   time `T` scores a DIMM from its own rolling window (events `< T`)
//!   and its own streak/cooldown entries only; `observe` runs every due
//!   tick *before* ingesting the event that crossed it, so a shard
//!   seeing the time-ordered subsequence of its own DIMMs executes each
//!   tick against exactly the state the sequential fold would have had.
//! * **Merge order.** Within one tick the sequential predictor walks
//!   candidates in ascending `DimmId` order, so its alarm (and score)
//!   log is sorted by `(time, dimm_id)` — and per-event `seq` never ties
//!   because one tick scores a DIMM at most once. Each shard's log is
//!   sorted by the same key, the key is total across shards (a DIMM has
//!   one home), so merging shard logs by `(time, dimm_id)` reproduces
//!   the sequential log exactly.
//! * **Workers are grouping only.** Shard `s` is pinned to worker
//!   `s % workers` and each worker channel is FIFO, so per-shard event
//!   order equals release order regardless of worker count.
//!
//! The contract assumes the input stream is time-ordered per DIMM — the
//! order [`Ingestor`](crate::ingest::Ingestor) releases. [`serve_pipeline`]
//! enforces this by construction (the router consumes `ingest_bounded`);
//! [`ShardedOnline`] trusts its caller the same way `OnlinePredictor`
//! does, and rejects stragglers per shard with the same watermark rule.
//!
//! # Backpressure
//!
//! Producer → ingest and router → worker hops are all
//! `sync_channel(channel_capacity)` of `batch`-sized chunks: a slow
//! scorer blocks the router, a blocked router blocks the producer, and
//! peak resident state is `O(workers × batch × capacity)` events on top
//! of the per-shard windows — fleet size never enters the bound.

use crate::checkpoint::{OnlineCheckpoint, ServeCheckpoint};
use crate::feature_store::FeatureStore;
use crate::ingest::{ingest_bounded, IngestConfig, IngestOutput, IngestStats};
use crate::lake::DataLake;
use crate::online::{Alarm, OnlineConfig, OnlinePredictor, ScoreRecord};
use crate::registry::ModelRegistry;
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimTime;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use std::collections::BTreeMap;
use std::sync::mpsc::sync_channel;
use std::time::Instant;

/// Stable shard assignment: a SplitMix64 finalizer over the DIMM's
/// `(server, slot)` coordinates, reduced mod `shards`. Pure — no state,
/// no arrival order — so the fleet partition is a function of identity
/// alone and survives restarts and resharding-free redeploys.
pub fn shard_of(dimm: DimmId, shards: usize) -> usize {
    let raw = ((dimm.server.0 as u64) << 8) | dimm.slot as u64;
    let mut z = raw.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// Routes one normalized ingest output to its home shard: the DIMM the
/// output concerns, through [`shard_of`]. Gap notices follow the DIMM
/// they describe so streak resets land on the shard that scores it.
pub fn shard_route(out: &crate::ingest::IngestOutput, shards: usize) -> usize {
    match out {
        crate::ingest::IngestOutput::Released(e) => shard_of(e.dimm(), shards),
        crate::ingest::IngestOutput::Gap(g) => shard_of(g.dimm, shards),
    }
}

/// Builds one [`FeatureStore`] per shard with identical configuration.
/// The slice outlives the engine (predictors borrow their stores), so
/// callers hold it and pass `&stores` to [`ShardedOnline::new`] /
/// [`ServeCheckpoint::restore`].
pub fn make_stores(
    shards: usize,
    problem: ProblemConfig,
    thresholds: FaultThresholds,
) -> Vec<FeatureStore> {
    (0..shards.max(1))
        .map(|_| FeatureStore::new(problem, thresholds))
        .collect()
}

/// Execution knobs of the serving pipeline. Mirroring
/// `mfp_sim::sharded::ShardConfig`: none of them affect alarms or
/// scores, only throughput and memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Predictor partitions (clamped to at least 1).
    pub shards: usize,
    /// Scoring threads (clamped to `1..=shards`); shard `s` is pinned to
    /// worker `s % workers`.
    pub workers: usize,
    /// Batches each bounded hand-off channel may hold before the sender
    /// blocks (clamped to at least 1).
    pub channel_capacity: usize,
    /// Events per routed batch (clamped to at least 1).
    pub batch: usize,
    /// Per-shard predictor configuration.
    pub online: OnlineConfig,
    /// Record every model invocation into [`ServeOutcome::scores`]
    /// (unbounded memory — testing/verification only).
    pub record_scores: bool,
    /// Capture a [`ServeCheckpoint`] of the final sharded state.
    pub capture_checkpoint: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            channel_capacity: 4,
            batch: 256,
            online: OnlineConfig::default(),
            record_scores: false,
            capture_checkpoint: false,
        }
    }
}

impl ServeConfig {
    /// A config with `shards` shards and `workers` workers.
    pub fn new(shards: usize, workers: usize) -> Self {
        ServeConfig {
            shards,
            workers,
            ..ServeConfig::default()
        }
    }
}

/// The synchronous sharded engine: `shards` independent
/// [`OnlinePredictor`]s behind a pure hash router. This is the unit the
/// pipeline distributes and the unit [`ServeCheckpoint`] snapshots; it
/// is also directly useful where threads are unwanted (tests, replay).
#[derive(Debug)]
pub struct ShardedOnline<'a> {
    pub(crate) shards: Vec<OnlinePredictor<'a>>,
}

impl<'a> ShardedOnline<'a> {
    /// Creates one predictor per store in `stores` (one store per
    /// shard — build them with [`make_stores`]).
    pub fn new(
        lake: &'a DataLake,
        stores: &'a [FeatureStore],
        registry: &'a ModelRegistry,
        platform: Platform,
        cfg: OnlineConfig,
    ) -> Self {
        assert!(!stores.is_empty(), "at least one shard store is required");
        ShardedOnline {
            shards: stores
                .iter()
                .map(|store| OnlinePredictor::new(lake, store, registry, platform, cfg))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes one event to its home shard; returns whether that shard's
    /// predictor accepted it (same watermark rule as
    /// [`OnlinePredictor::observe`]).
    pub fn observe(&mut self, event: &MemEvent) -> bool {
        let s = shard_of(event.dimm(), self.shards.len());
        self.shards[s].observe(event)
    }

    /// Routes a detected collection hole to the DIMM's home shard.
    pub fn note_gap(&mut self, dimm: DimmId) {
        let s = shard_of(dimm, self.shards.len());
        self.shards[s].note_gap(dimm);
    }

    /// Flushes every shard's prediction ticks up to `until`.
    pub fn finish(&mut self, until: SimTime) {
        for shard in &mut self.shards {
            shard.finish(until);
        }
    }

    /// Enables or disables score tracing on every shard.
    pub fn set_score_trace(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.set_score_trace(on);
        }
    }

    /// All alarms raised so far, merged by `(time, dimm)` — bit-identical
    /// to the sequential predictor's alarm log for the same stream.
    pub fn alarms(&self) -> Vec<Alarm> {
        let mut out: Vec<Alarm> = self
            .shards
            .iter()
            .flat_map(|s| s.alarms().iter().copied())
            .collect();
        out.sort_by_key(|a| (a.time, a.dimm));
        out
    }

    /// All recorded scores, merged by `(time, dimm)` (empty unless
    /// tracing is on).
    pub fn scores(&self) -> Vec<ScoreRecord> {
        let mut out: Vec<ScoreRecord> = self
            .shards
            .iter()
            .flat_map(|s| s.score_trace().iter().copied())
            .collect();
        out.sort_by_key(|r| (r.time, r.dimm));
        out
    }

    /// Total model invocations across shards.
    pub fn scored(&self) -> u64 {
        self.shards.iter().map(|s| s.scored()).sum()
    }

    /// Total stale rejections across shards.
    pub fn stale_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.stale_rejected()).sum()
    }

    /// Routes one normalized ingest output to its home shard — the
    /// single entry point `crate::wal` replays through, mirroring
    /// [`OnlinePredictor::apply`]. Returns whether it was accepted.
    pub fn apply(&mut self, out: &IngestOutput) -> bool {
        match out {
            IngestOutput::Released(e) => self.observe(e),
            IngestOutput::Gap(g) => {
                self.note_gap(g.dimm);
                true
            }
        }
    }
}

/// A non-fatal serving fault: the pipeline degrades (drops the affected
/// work, keeps the pool running) and reports it in
/// [`ServeOutcome::errors`] instead of aborting a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A routed item landed on a worker that does not own its home
    /// shard — a router/worker disagreement that previously panicked
    /// with `expect("routed to home worker")`. The item is dropped.
    Misrouted {
        /// The item's DIMM.
        dimm: DimmId,
        /// The shard the receiving worker computed.
        shard: usize,
        /// The worker that received the item.
        worker: usize,
    },
    /// Checkpoint capture was requested but a shard produced no
    /// snapshot, so no coherent [`ServeCheckpoint`] exists — previously
    /// `expect("capture enabled on every shard")`. The outcome carries
    /// `checkpoint: None`.
    MissingCapture {
        /// The shard without a snapshot.
        shard: usize,
    },
    /// The shard owning a DIMM exhausted its restart budget and is out
    /// of the merge: its DIMMs degrade to this error instead of wedging
    /// or silently vanishing from fleet-wide results (see
    /// `crate::procserve::ProcOutcome::dimm_status`).
    ShardUnavailable {
        /// The failed shard.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Misrouted { dimm, shard, worker } => write!(
                f,
                "event for dimm {dimm:?} (shard {shard}) reached worker {worker}, which does not own it"
            ),
            ServeError::MissingCapture { shard } => {
                write!(f, "shard {shard} produced no checkpoint during capture")
            }
            ServeError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is past its restart budget and unavailable")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-shard serving telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardServeStats {
    /// Shard index, `0..shards`.
    pub shard: usize,
    /// Events routed to this shard.
    pub events: u64,
    /// Model invocations this shard ran.
    pub scored: u64,
    /// Alarms this shard raised.
    pub alarms: u64,
    /// Stale events this shard rejected.
    pub stale_rejected: u64,
}

/// Whole-pipeline execution telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Effective shard count.
    pub shards: usize,
    /// Effective worker count (≤ shards).
    pub workers: usize,
    /// Events the router forwarded to shards.
    pub events_routed: u64,
    /// Collection holes the router forwarded.
    pub gaps_routed: u64,
    /// Median per-event `observe` latency in seconds (histogram bucket
    /// upper bound).
    pub p50_score_secs: f64,
    /// 99th-percentile per-event `observe` latency in seconds.
    pub p99_score_secs: f64,
    /// Per-shard breakdown, ordered by shard index.
    pub per_shard: Vec<ShardServeStats>,
}

/// Result of a pipelined serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Alarms merged by `(time, dimm)` — the sequential alarm log.
    pub alarms: Vec<Alarm>,
    /// Scores merged by `(time, dimm)` (empty unless
    /// [`ServeConfig::record_scores`]).
    pub scores: Vec<ScoreRecord>,
    /// Total model invocations.
    pub scored: u64,
    /// Total stale rejections (zero for ingestor-released streams).
    pub stale_rejected: u64,
    /// The ingestor's lifetime counters.
    pub ingest: IngestStats,
    /// Execution statistics.
    pub stats: ServeStats,
    /// Final sharded state (only when
    /// [`ServeConfig::capture_checkpoint`]).
    pub checkpoint: Option<ServeCheckpoint>,
    /// Non-fatal faults the pipeline degraded through (misroutes,
    /// partial captures), ordered by shard. Empty on a healthy run.
    pub errors: Vec<ServeError>,
}

/// Histogram bounds for per-event serving latency: 10 ns to 178 ms,
/// four buckets per decade. `default_latency_buckets` bottoms out at
/// 1 µs, above a typical `observe` call, so the serving path uses this
/// finer grid.
pub fn score_latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(30);
    let mut decade = 1e-8;
    while decade < 0.15 {
        for mantissa in [1.0, 1.78, 3.16, 5.62] {
            bounds.push(decade * mantissa);
        }
        decade *= 10.0;
    }
    bounds
}

/// One unit of routed work (shard recomputed at the receiver — the hash
/// is cheaper than widening the wire struct).
#[derive(Debug, Clone, Copy)]
enum Routed {
    Event(MemEvent),
    Gap(DimmId),
}

impl Routed {
    fn dimm(self) -> DimmId {
        match self {
            Routed::Event(e) => e.dimm(),
            Routed::Gap(d) => d,
        }
    }
}

/// One shard's final state, handed back by its worker.
struct ShardResult {
    shard: usize,
    alarms: Vec<Alarm>,
    scores: Vec<ScoreRecord>,
    events: u64,
    scored: u64,
    stale_rejected: u64,
    checkpoint: Option<OnlineCheckpoint>,
    errors: Vec<ServeError>,
}

/// Runs the full pipelined dataflow: `producer` (own thread) →
/// [`ingest_bounded`] (validate/dedup/re-sequence, calling thread) →
/// hash router → `workers` scoring threads owning `shards`
/// [`OnlinePredictor`]s → deterministic `(time, dimm)` merge.
///
/// Alarms (and scores, when recorded) are bit-identical to feeding the
/// same released stream through one sequential [`OnlinePredictor`],
/// at any shard/worker count — see the module docs for the argument.
/// Like the sequential predictor, the engine serves a single platform:
/// route other platforms' events to their own pipeline.
///
/// # Examples
///
/// ```
/// use mfp_mlops::prelude::*;
/// use mfp_dram::geometry::Platform;
/// use mfp_dram::time::SimTime;
/// use mfp_features::fault_analysis::FaultThresholds;
/// use mfp_features::labeling::ProblemConfig;
/// use mfp_mlops::serve::{serve_pipeline, ServeConfig};
///
/// let lake = DataLake::new();
/// let registry = ModelRegistry::new(); // nothing promoted: no alarms
/// let outcome = serve_pipeline(
///     &lake,
///     &registry,
///     Platform::IntelPurley,
///     ProblemConfig::default(),
///     FaultThresholds::default(),
///     IngestConfig::default(),
///     &ServeConfig::new(4, 2),
///     SimTime::from_secs(86_400),
///     |_emit| {},
/// );
/// assert!(outcome.alarms.is_empty());
/// assert_eq!(outcome.stats.shards, 4);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn serve_pipeline<P>(
    lake: &DataLake,
    registry: &ModelRegistry,
    platform: Platform,
    problem: ProblemConfig,
    thresholds: FaultThresholds,
    icfg: IngestConfig,
    scfg: &ServeConfig,
    end: SimTime,
    producer: P,
) -> ServeOutcome
where
    P: FnOnce(&mut dyn FnMut(MemEvent)) + Send,
{
    let span = mfp_obs::latency("serve_pipeline_seconds", &[]).time();
    let shards = scfg.shards.max(1);
    let workers = scfg.workers.clamp(1, shards);
    let capacity = scfg.channel_capacity.max(1);
    let batch = scfg.batch.max(1);
    let stores = make_stores(shards, problem, thresholds);
    let bounds = score_latency_bounds();
    // One detached histogram feeds the outcome's p50/p99; the global
    // series mirrors it for dashboards.
    let latency = mfp_obs::Histogram::new(&bounds);
    let global_latency = mfp_obs::histogram("serve_score_seconds", &[], &bounds);
    let routed_counter = mfp_obs::counter("serve_events_routed", &[]);
    let gap_counter = mfp_obs::counter("serve_gaps_routed", &[]);

    let (result_tx, result_rx) = std::sync::mpsc::channel::<ShardResult>();
    let mut ingest_stats = IngestStats::default();
    let mut events_routed = 0u64;
    let mut gaps_routed = 0u64;
    std::thread::scope(|s| {
        let mut worker_txs = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = sync_channel::<Vec<Routed>>(capacity);
            worker_txs.push(tx);
            let result_tx = result_tx.clone();
            let stores = &stores;
            let latency = latency.clone();
            let global_latency = global_latency.clone();
            let online = scfg.online;
            let record_scores = scfg.record_scores;
            let capture = scfg.capture_checkpoint;
            s.spawn(move || {
                // Predictors are built in-thread: shard state never
                // crosses a thread boundary while live.
                let mut preds: BTreeMap<usize, (OnlinePredictor<'_>, u64)> = (0..shards)
                    .filter(|shard| shard % workers == w)
                    .map(|shard| {
                        let mut p =
                            OnlinePredictor::new(lake, &stores[shard], registry, platform, online);
                        p.set_score_trace(record_scores);
                        (shard, (p, 0u64))
                    })
                    .collect();
                let mut errors: Vec<ServeError> = Vec::new();
                for chunk in rx {
                    for item in chunk {
                        let shard = shard_of(item.dimm(), shards);
                        // A misroute means router and worker disagree on
                        // the hash — drop the item and report, rather
                        // than panicking the whole scoring pool.
                        let Some((pred, events)) = preds.get_mut(&shard) else {
                            errors.push(ServeError::Misrouted {
                                dimm: item.dimm(),
                                shard,
                                worker: w,
                            });
                            continue;
                        };
                        match item {
                            Routed::Event(e) => {
                                let start = Instant::now();
                                pred.observe(&e);
                                let secs = start.elapsed().as_secs_f64();
                                latency.record(secs);
                                global_latency.record(secs);
                                *events += 1;
                            }
                            Routed::Gap(d) => pred.note_gap(d),
                        }
                    }
                }
                let mut errors = Some(errors);
                for (shard, (mut pred, events)) in preds {
                    pred.finish(end);
                    let checkpoint =
                        capture.then(|| OnlineCheckpoint::capture(&pred, &stores[shard]));
                    let _ = result_tx.send(ShardResult {
                        shard,
                        scores: pred.trace.take().unwrap_or_default(),
                        scored: pred.scored(),
                        stale_rejected: pred.stale_rejected(),
                        alarms: std::mem::take(&mut pred.alarms),
                        events,
                        checkpoint,
                        // The worker's accumulated faults ride its first
                        // shard result.
                        errors: errors.take().unwrap_or_default(),
                    });
                }
            });
        }
        drop(result_tx);

        // Router (calling thread): consume the hardened release stream,
        // batch per worker, block when a worker's channel is full.
        let mut buffers: Vec<Vec<Routed>> = vec![Vec::with_capacity(batch); workers];
        ingest_stats = ingest_bounded(lake, icfg, capacity, batch, producer, |out| {
            let item = match out {
                IngestOutput::Released(e) => {
                    events_routed += 1;
                    Routed::Event(e)
                }
                IngestOutput::Gap(g) => {
                    gaps_routed += 1;
                    Routed::Gap(g.dimm)
                }
            };
            let w = shard_of(item.dimm(), shards) % workers;
            buffers[w].push(item);
            if buffers[w].len() >= batch {
                let full = std::mem::replace(&mut buffers[w], Vec::with_capacity(batch));
                let _ = worker_txs[w].send(full);
            }
        });
        for (w, buf) in buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                let _ = worker_txs[w].send(buf);
            }
        }
        drop(worker_txs);
    });
    routed_counter.add(events_routed);
    gap_counter.add(gaps_routed);

    let mut results: Vec<ShardResult> = result_rx.into_iter().collect();
    results.sort_by_key(|r| r.shard);
    let mut alarms: Vec<Alarm> = results
        .iter()
        .flat_map(|r| r.alarms.iter().copied())
        .collect();
    alarms.sort_by_key(|a| (a.time, a.dimm));
    let mut scores: Vec<ScoreRecord> = results
        .iter()
        .flat_map(|r| r.scores.iter().copied())
        .collect();
    scores.sort_by_key(|r| (r.time, r.dimm));
    let mut errors: Vec<ServeError> = results
        .iter_mut()
        .flat_map(|r| std::mem::take(&mut r.errors))
        .collect();
    let checkpoint = if scfg.capture_checkpoint {
        // A shard that produced no snapshot makes the set incoherent:
        // degrade to `None` and report which shard, instead of aborting.
        let mut shards_cp = Vec::with_capacity(results.len());
        let mut complete = true;
        for r in &results {
            match &r.checkpoint {
                Some(cp) => shards_cp.push(cp.clone()),
                None => {
                    errors.push(ServeError::MissingCapture { shard: r.shard });
                    complete = false;
                }
            }
        }
        complete.then_some(ServeCheckpoint { shards: shards_cp })
    } else {
        None
    };
    if !errors.is_empty() {
        mfp_obs::counter("serve_errors", &[]).add(errors.len() as u64);
    }
    let per_shard: Vec<ShardServeStats> = results
        .iter()
        .map(|r| ShardServeStats {
            shard: r.shard,
            events: r.events,
            scored: r.scored,
            alarms: r.alarms.len() as u64,
            stale_rejected: r.stale_rejected,
        })
        .collect();
    let outcome = ServeOutcome {
        scored: results.iter().map(|r| r.scored).sum(),
        stale_rejected: results.iter().map(|r| r.stale_rejected).sum(),
        alarms,
        scores,
        ingest: ingest_stats,
        stats: ServeStats {
            shards,
            workers,
            events_routed,
            gaps_routed,
            p50_score_secs: latency.quantile(0.5),
            p99_score_secs: latency.quantile(0.99),
            per_shard,
        },
        checkpoint,
        errors,
    };
    mfp_obs::counter("serve_pipeline_runs", &[]).incr();
    mfp_obs::counter("serve_alarms_merged", &[]).add(outcome.alarms.len() as u64);
    span.stop();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_store::FeatureStore;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use mfp_dram::spec::DimmSpec;
    use mfp_dram::time::SimDuration;
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::model::{Algorithm, Model};
    use mfp_ml::risky_ce::RiskyCePattern;

    const NDIMMS: u32 = 12;

    fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
        let bits: Vec<(u8, u8)> = if flip {
            vec![(1, 20), (5, 21)]
        } else {
            vec![(1, 20)]
        };
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits(bits),
        })
    }

    fn setup(lake: &DataLake, registry: &ModelRegistry) -> Vec<DimmId> {
        let dimms: Vec<DimmId> = (0..NDIMMS).map(|k| DimmId::new(k, (k % 2) as u8)).collect();
        for &id in &dimms {
            lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        }
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            Model::RiskyCe(RiskyCePattern::default()),
        );
        registry.promote(mid);
        dimms
    }

    /// A multi-DIMM stream where risky DIMMs alarm and benign ones never
    /// do; strictly increasing timestamps.
    fn stream(dimms: &[DimmId]) -> Vec<MemEvent> {
        (0..30 * dimms.len() as u64)
            .map(|k| {
                let d = dimms[(k % dimms.len() as u64) as usize];
                // Half the fleet carries the risky signature.
                risky_ce(1_000 + k * 1_800, d, d.server.0 % 2 == 0)
            })
            .collect()
    }

    fn sequential_oracle(
        lake: &DataLake,
        registry: &ModelRegistry,
        events: &[MemEvent],
        cfg: OnlineConfig,
        end: SimTime,
    ) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(lake, &store, registry, Platform::IntelPurley, cfg);
        p.set_score_trace(true);
        for e in events {
            p.observe(e);
        }
        p.finish(end);
        (p.alarms().to_vec(), p.score_trace().to_vec(), p.scored())
    }

    #[test]
    fn shard_of_is_stable_and_in_bounds() {
        for server in 0..200u32 {
            for slot in 0..4u8 {
                let d = DimmId::new(server, slot);
                for shards in [1usize, 2, 3, 8, 64] {
                    let s = shard_of(d, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of(d, shards), "routing must be pure");
                }
            }
        }
        assert_eq!(shard_of(DimmId::new(1, 0), 0), 0, "zero shards clamps");
    }

    #[test]
    fn shard_of_spreads_a_fleet() {
        let shards = 8usize;
        let mut counts = vec![0u32; shards];
        for server in 0..4_000u32 {
            counts[shard_of(DimmId::new(server, 0), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 300,
                "shard {s} got {c} of 4000 DIMMs — hash is badly skewed"
            );
        }
    }

    #[test]
    fn sharded_core_matches_sequential_for_any_shard_count() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let events = stream(&dimms);
        let end =
            SimTime::from_secs(events.last().unwrap().time().as_secs()) + SimDuration::days(2);
        let cfg = OnlineConfig {
            degraded_grace: SimDuration::hours(12),
            ..OnlineConfig::default()
        };
        let (alarms, scores, scored) = sequential_oracle(&lake, &registry, &events, cfg, end);
        assert!(
            !alarms.is_empty(),
            "stream must alarm or the test is vacuous"
        );

        for shards in [1usize, 2, 3, 4, 8] {
            let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
            let mut engine =
                ShardedOnline::new(&lake, &stores, &registry, Platform::IntelPurley, cfg);
            engine.set_score_trace(true);
            for e in &events {
                engine.observe(e);
            }
            engine.finish(end);
            assert_eq!(
                engine.alarms(),
                alarms,
                "alarms diverged at {shards} shards"
            );
            assert_eq!(
                engine.scores(),
                scores,
                "scores diverged at {shards} shards"
            );
            assert_eq!(engine.scored(), scored);
            assert_eq!(engine.stale_rejected(), 0);
        }
    }

    #[test]
    fn pipeline_matches_sequential_across_the_worker_matrix() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let events = stream(&dimms);
        let end =
            SimTime::from_secs(events.last().unwrap().time().as_secs()) + SimDuration::days(2);
        let cfg = OnlineConfig::default();
        let (alarms, scores, scored) = sequential_oracle(&lake, &registry, &events, cfg, end);
        assert!(!alarms.is_empty());

        for (shards, workers) in [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4), (8, 3)] {
            let scfg = ServeConfig {
                record_scores: true,
                online: cfg,
                batch: 7, // deliberately odd: exercise partial batches
                ..ServeConfig::new(shards, workers)
            };
            let outcome = serve_pipeline(
                &lake,
                &registry,
                Platform::IntelPurley,
                ProblemConfig::default(),
                FaultThresholds::default(),
                IngestConfig::default(),
                &scfg,
                end,
                |emit| {
                    for e in &events {
                        emit(*e);
                    }
                },
            );
            assert_eq!(
                outcome.alarms, alarms,
                "alarms diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(
                outcome.scores, scores,
                "scores diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(outcome.scored, scored);
            assert_eq!(outcome.stale_rejected, 0);
            assert!(
                outcome.errors.is_empty(),
                "healthy run must report no faults"
            );
            assert_eq!(outcome.ingest.released, events.len() as u64);
            assert_eq!(outcome.stats.events_routed, events.len() as u64);
            assert_eq!(outcome.stats.shards, shards);
            assert_eq!(outcome.stats.workers, workers.min(shards));
            assert_eq!(outcome.stats.per_shard.len(), shards);
            assert_eq!(
                outcome
                    .stats
                    .per_shard
                    .iter()
                    .map(|s| s.events)
                    .sum::<u64>(),
                events.len() as u64
            );
            assert_eq!(
                outcome
                    .stats
                    .per_shard
                    .iter()
                    .map(|s| s.scored)
                    .sum::<u64>(),
                scored
            );
        }
    }

    #[test]
    fn pipeline_routes_gaps_to_the_home_shard() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        // Sparse risky stream with a long per-DIMM hole in the middle.
        let mut events: Vec<MemEvent> = Vec::new();
        for k in 0..8u64 {
            for &d in &dimms[..4] {
                events.push(risky_ce(10_000 + k * 3_600, d, true));
            }
        }
        for k in 0..8u64 {
            for &d in &dimms[..4] {
                events.push(risky_ce(2_000_000 + k * 3_600, d, true));
            }
        }
        events.sort_by_key(|e| e.time());
        let end = SimTime::from_secs(2_200_000);
        let icfg = IngestConfig {
            gap_threshold: Some(SimDuration::days(7)),
            ..IngestConfig::default()
        };

        // Oracle: sequential predictor fed through the same bounded
        // ingest, gaps forwarded in release order.
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut oracle = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let stats = ingest_bounded(
            &lake,
            icfg,
            4,
            16,
            |emit| {
                for e in &events {
                    emit(*e);
                }
            },
            |out| match out {
                IngestOutput::Released(e) => {
                    oracle.observe(&e);
                }
                IngestOutput::Gap(g) => oracle.note_gap(g.dimm),
            },
        );
        oracle.finish(end);
        assert!(stats.gaps > 0, "the stream must contain a detectable hole");

        let outcome = serve_pipeline(
            &lake,
            &registry,
            Platform::IntelPurley,
            ProblemConfig::default(),
            FaultThresholds::default(),
            icfg,
            &ServeConfig::new(4, 2),
            end,
            |emit| {
                for e in &events {
                    emit(*e);
                }
            },
        );
        assert_eq!(outcome.alarms, oracle.alarms());
        assert_eq!(outcome.stats.gaps_routed, stats.gaps);
        assert_eq!(outcome.ingest.gaps, stats.gaps);
    }

    #[test]
    fn pipeline_checkpoint_resumes_bit_identically() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let events = stream(&dimms);
        let split = events.len() / 2;
        let end =
            SimTime::from_secs(events.last().unwrap().time().as_secs()) + SimDuration::days(2);
        let cfg = OnlineConfig::default();
        let (ref_alarms, _, ref_scored) = sequential_oracle(&lake, &registry, &events, cfg, end);

        // Serve the first half, checkpoint, encode to the wire.
        let shards = 4usize;
        let scfg = ServeConfig {
            capture_checkpoint: true,
            online: cfg,
            ..ServeConfig::new(shards, 2)
        };
        let mid = SimTime::from_secs(events[split - 1].time().as_secs());
        let first = serve_pipeline(
            &lake,
            &registry,
            Platform::IntelPurley,
            ProblemConfig::default(),
            FaultThresholds::default(),
            IngestConfig::default(),
            &scfg,
            mid,
            |emit| {
                for e in &events[..split] {
                    emit(*e);
                }
            },
        );
        let wire = first.checkpoint.expect("capture was requested").encode();

        // Restore into a synchronous engine and replay the suffix.
        let decoded = ServeCheckpoint::decode(&wire).expect("wire round-trip");
        let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let mut resumed = decoded.restore(&lake, &stores, &registry);
        for e in &events[split..] {
            resumed.observe(e);
        }
        resumed.finish(end);
        assert_eq!(resumed.alarms(), ref_alarms);
        assert_eq!(resumed.scored(), ref_scored);
    }

    #[test]
    fn latency_stats_are_populated() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let events = stream(&dimms);
        let end = SimTime::from_secs(events.last().unwrap().time().as_secs());
        let outcome = serve_pipeline(
            &lake,
            &registry,
            Platform::IntelPurley,
            ProblemConfig::default(),
            FaultThresholds::default(),
            IngestConfig::default(),
            &ServeConfig::new(2, 2),
            end,
            |emit| {
                for e in &events {
                    emit(*e);
                }
            },
        );
        assert!(outcome.stats.p50_score_secs > 0.0);
        assert!(outcome.stats.p99_score_secs >= outcome.stats.p50_score_secs);
        let bounds = score_latency_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
    }

    #[test]
    fn serve_errors_describe_the_fault() {
        let misroute = ServeError::Misrouted {
            dimm: DimmId::new(7, 1),
            shard: 3,
            worker: 0,
        };
        let text = misroute.to_string();
        assert!(
            text.contains("shard 3") && text.contains("worker 0"),
            "{text}"
        );
        let partial = ServeError::MissingCapture { shard: 5 };
        assert!(partial.to_string().contains("shard 5"));
    }

    #[test]
    fn apply_routes_outputs_like_observe_and_note_gap() {
        use crate::ingest::{GapRecord, IngestOutput};
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = setup(&lake, &registry);
        let events = stream(&dimms);
        let end = SimTime::from_secs(events.last().unwrap().time().as_secs());
        let stores_a = make_stores(3, ProblemConfig::default(), FaultThresholds::default());
        let stores_b = make_stores(3, ProblemConfig::default(), FaultThresholds::default());
        let mk = |stores| {
            ShardedOnline::new(
                &lake,
                stores,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
            )
        };
        let (mut direct, mut via_apply) = (mk(&stores_a), mk(&stores_b));
        let gap = GapRecord {
            dimm: dimms[0],
            from: SimTime::from_secs(1),
            to: SimTime::from_secs(2),
        };
        for e in &events {
            direct.observe(e);
            assert!(via_apply.apply(&IngestOutput::Released(*e)));
        }
        direct.note_gap(gap.dimm);
        assert!(via_apply.apply(&IngestOutput::Gap(gap)));
        direct.finish(end);
        via_apply.finish(end);
        assert_eq!(direct.alarms(), via_apply.alarms());
        assert_eq!(direct.scored(), via_apply.scored());
    }
}
