//! VM mitigation on alarms and the *measured* VM Interruption Reduction
//! Rate (paper §IV, Fig. 2).
//!
//! On each alarm the cloud service attempts proactive live migration of
//! the host's VMs; a fraction `y_c` falls back to cold migration (live
//! migration or memory mitigation infeasible), which interrupts the VMs.
//! Missed failures interrupt every VM on the host. The engine counts
//! interruptions with and without prediction and reports the empirical
//! VIRR alongside the analytic formula `(1 - y_c/precision) * recall`.

use crate::online::Alarm;
use mfp_dram::address::DimmId;
use mfp_dram::time::SimTime;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Mitigation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// Average VMs per server (`V_a`).
    pub vms_per_server: f64,
    /// Cold-migration fraction (`y_c`).
    pub cold_fraction: f64,
    /// RNG seed for the per-VM cold-migration draw.
    pub seed: u64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig {
            vms_per_server: 10.0,
            cold_fraction: 0.1,
            seed: 5,
        }
    }
}

/// Outcome of the mitigation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationReport {
    /// Correctly predicted failures (alarm before the UE).
    pub tp: u32,
    /// Alarms on DIMMs that did not fail.
    pub fp: u32,
    /// Failures with no prior alarm.
    pub fn_: u32,
    /// Interruptions without prediction: `V_a * (TP + FN)`.
    pub interruptions_without: f64,
    /// Interruptions with prediction: cold-migrated VMs + missed failures.
    pub interruptions_with: f64,
    /// Empirical VIRR: `(V - V') / V`.
    pub virr_measured: f64,
    /// Analytic VIRR: `(1 - y_c / precision) * recall`.
    pub virr_analytic: f64,
}

/// Replays alarms against ground-truth UE times and simulates migrations.
///
/// `ue_times` maps each failed DIMM to its UE instant. An alarm counts as a
/// true positive when it fires strictly before the UE (the online layer
/// already enforces the lead-time margin by construction of its features).
pub fn evaluate_mitigation(
    alarms: &[Alarm],
    ue_times: &BTreeMap<DimmId, SimTime>,
    cfg: &MitigationConfig,
) -> MitigationReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut alarmed: BTreeSet<DimmId> = BTreeSet::new();
    let mut saved: BTreeSet<DimmId> = BTreeSet::new();
    let mut tp = 0u32;
    let mut fp = 0u32;
    let mut cold_vms = 0.0f64;

    for alarm in alarms {
        if !alarmed.insert(alarm.dimm) {
            continue; // already handled
        }
        let is_tp = ue_times.get(&alarm.dimm).is_some_and(|&ue| alarm.time < ue);
        if is_tp {
            tp += 1;
            saved.insert(alarm.dimm);
        } else {
            fp += 1;
        }
        // Each VM on the host migrates; a fraction goes cold.
        let vms = cfg.vms_per_server.round() as u32;
        for _ in 0..vms {
            if rng.random::<f64>() < cfg.cold_fraction {
                cold_vms += 1.0;
            }
        }
    }

    // A failure counts as missed unless a timely (pre-UE) alarm saved it.
    let fn_ = ue_times.keys().filter(|d| !saved.contains(d)).count() as u32;

    let v = cfg.vms_per_server * (tp + fn_) as f64;
    let v_prime = cold_vms + cfg.vms_per_server * fn_ as f64;
    let virr_measured = if v > 0.0 { (v - v_prime) / v } else { 0.0 };

    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        0.0
    };
    let recall = if tp + fn_ > 0 {
        tp as f64 / (tp + fn_) as f64
    } else {
        0.0
    };
    let virr_analytic = if precision > 0.0 {
        (1.0 - cfg.cold_fraction / precision) * recall
    } else {
        0.0
    };

    MitigationReport {
        tp,
        fp,
        fn_,
        interruptions_without: v,
        interruptions_with: v_prime,
        virr_measured,
        virr_analytic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alarm(server: u32, t: u64) -> Alarm {
        Alarm {
            dimm: DimmId::new(server, 0),
            time: SimTime::from_secs(t),
            score: 0.9,
        }
    }

    #[test]
    fn perfect_prediction_approaches_one_minus_yc() {
        let alarms: Vec<Alarm> = (0..50).map(|i| alarm(i, 100)).collect();
        let ue_times: BTreeMap<DimmId, SimTime> = (0..50)
            .map(|i| (DimmId::new(i, 0), SimTime::from_secs(1_000)))
            .collect();
        let r = evaluate_mitigation(&alarms, &ue_times, &MitigationConfig::default());
        assert_eq!((r.tp, r.fp, r.fn_), (50, 0, 0));
        // Measured VIRR ~ 1 - y_c (cold fraction of migrated VMs), noisy
        // through the per-VM draw.
        assert!((r.virr_measured - 0.9).abs() < 0.06, "{}", r.virr_measured);
        assert!((r.virr_analytic - 0.9).abs() < 1e-9);
    }

    #[test]
    fn missed_failures_cost_full_interruptions() {
        let ue_times: BTreeMap<DimmId, SimTime> = (0..10)
            .map(|i| (DimmId::new(i, 0), SimTime::from_secs(1_000)))
            .collect();
        let r = evaluate_mitigation(&[], &ue_times, &MitigationConfig::default());
        assert_eq!((r.tp, r.fp, r.fn_), (0, 0, 10));
        assert_eq!(r.virr_measured, 0.0);
        assert_eq!(r.interruptions_with, r.interruptions_without);
    }

    #[test]
    fn low_precision_can_make_virr_negative() {
        // 2 true alarms, 60 false ones: precision ~0.03 < y_c = 0.1.
        let mut alarms: Vec<Alarm> = (0..2).map(|i| alarm(i, 100)).collect();
        alarms.extend((100..160).map(|i| alarm(i, 100)));
        let ue_times: BTreeMap<DimmId, SimTime> = (0..2)
            .map(|i| (DimmId::new(i, 0), SimTime::from_secs(1_000)))
            .collect();
        let r = evaluate_mitigation(&alarms, &ue_times, &MitigationConfig::default());
        assert!(r.virr_measured < 0.0, "{}", r.virr_measured);
        assert!(r.virr_analytic < 0.0);
    }

    #[test]
    fn alarm_after_ue_is_not_a_tp() {
        let alarms = vec![alarm(0, 2_000)];
        let ue_times: BTreeMap<DimmId, SimTime> =
            [(DimmId::new(0, 0), SimTime::from_secs(1_000))].into();
        let r = evaluate_mitigation(&alarms, &ue_times, &MitigationConfig::default());
        assert_eq!((r.tp, r.fp, r.fn_), (0, 1, 1));
    }

    #[test]
    fn duplicate_alarms_count_once() {
        let alarms = vec![alarm(0, 100), alarm(0, 200), alarm(0, 300)];
        let ue_times: BTreeMap<DimmId, SimTime> =
            [(DimmId::new(0, 0), SimTime::from_secs(1_000))].into();
        let r = evaluate_mitigation(&alarms, &ue_times, &MitigationConfig::default());
        assert_eq!((r.tp, r.fp), (1, 0));
    }

    #[test]
    fn measured_tracks_analytic() {
        // Mixed outcome: 8 TP, 4 FP, 2 FN.
        let mut alarms: Vec<Alarm> = (0..8).map(|i| alarm(i, 100)).collect();
        alarms.extend((100..104).map(|i| alarm(i, 100)));
        let ue_times: BTreeMap<DimmId, SimTime> = (0..10)
            .map(|i| (DimmId::new(i, 0), SimTime::from_secs(1_000)))
            .collect();
        let r = evaluate_mitigation(&alarms, &ue_times, &MitigationConfig::default());
        assert_eq!((r.tp, r.fp, r.fn_), (8, 4, 2));
        assert!(
            (r.virr_measured - r.virr_analytic).abs() < 0.12,
            "measured {} vs analytic {}",
            r.virr_measured,
            r.virr_analytic
        );
    }
}
