//! Checkpoint/restore for the online prediction path.
//!
//! A process crash must not change what the fleet is told: restoring a
//! checkpoint and replaying the remaining events has to produce the
//! *bit-identical* alarm sequence an uninterrupted run would have raised.
//! [`OnlineCheckpoint`] therefore captures every piece of state the
//! [`OnlinePredictor`](crate::online::OnlinePredictor) folds over — tick
//! cursor, watermark, vote streaks, cooldown entries, raised alarms,
//! degraded-mode feature cache — plus the
//! [`FeatureStore`](crate::feature_store::FeatureStore)'s per-DIMM rolling
//! event windows, which are the predictor's only other mutable input.
//!
//! Serialization is a hand-rolled binary format in the style of
//! `mfp_dram::bmc` (magic + version + length-prefixed sections, big
//! endian, `f32` as raw bits); per-DIMM event windows are embedded as
//! encoded `BmcLog` payloads so the wire format is shared with the
//! collectors'. No serde, no floating-point text round-trips, nothing
//! that could perturb a bit.

use crate::feature_store::FeatureStore;
use crate::lake::DataLake;
use crate::online::{Alarm, OnlineConfig, OnlinePredictor, ScoreRecord};
use crate::registry::ModelRegistry;
use crate::serve::ShardedOnline;
use bytes::{BufMut, Bytes, BytesMut};
use mfp_dram::address::DimmId;
use mfp_dram::bmc::{BmcLog, DecodeError};
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use std::error::Error;
use std::fmt;

/// Magic bytes at the head of an encoded checkpoint.
const MAGIC: [u8; 4] = *b"MFC1";
/// Checkpoint wire-format version. v2 appended a trailing CRC32 so a
/// torn or bit-flipped payload is *detected* instead of silently
/// restoring perturbed state (the recovery invariant depends on it).
/// v3 appends the optional score trace so restore resumes a traced
/// predictor without replaying history; v2 payloads still decode (their
/// trace restores as `None`).
const VERSION: u8 = 3;
/// Oldest wire-format version [`verify_envelope`] still accepts.
const MIN_VERSION: u8 = 2;
/// Magic bytes at the head of an encoded *sharded* checkpoint.
const SERVE_MAGIC: [u8; 4] = *b"MFS1";

/// Appends the payload CRC and freezes the buffer: every checkpoint wire
/// payload is `header ++ body ++ crc32(header ++ body)`.
fn seal(mut buf: BytesMut) -> Bytes {
    let crc = crate::wal::crc32(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Checks magic, version and the trailing CRC32; returns the payload
/// between the 5-byte header and the 4-byte checksum along with the
/// envelope's version, so decoders can accept the historical formats in
/// `MIN_VERSION..=VERSION`.
fn verify_envelope<'a>(
    data: &'a [u8],
    magic: &[u8; 4],
) -> Result<(&'a [u8], u8), CheckpointError> {
    let mut c = Cursor { data };
    if c.bytes(4)? != magic {
        return Err(CheckpointError::BadMagic);
    }
    let version = c.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CheckpointError::BadVersion(version));
    }
    if data.len() < 9 {
        return Err(CheckpointError::Truncated);
    }
    let (body, tail) = data.split_at(data.len() - 4);
    let want = u32::from_be_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crate::wal::crc32(body) != want {
        return Err(CheckpointError::BadChecksum);
    }
    Ok((&body[5..], version))
}

/// A point-in-time snapshot of the online prediction state.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineCheckpoint {
    /// Platform the predictor serves.
    pub platform: Platform,
    /// Predictor configuration at capture time.
    pub cfg: OnlineConfig,
    /// Next prediction tick due.
    pub next_tick: SimTime,
    /// Last executed tick (the stale-event watermark).
    pub watermark: SimTime,
    /// Model invocations so far.
    pub scored: u64,
    /// Stale events rejected so far.
    pub stale_rejected: u64,
    /// Per-DIMM consecutive-vote streaks.
    pub streaks: Vec<(DimmId, u32)>,
    /// Per-DIMM cooldown entries.
    pub last_alarm: Vec<(DimmId, SimTime)>,
    /// Alarms raised so far.
    pub alarms: Vec<Alarm>,
    /// Degraded-mode cache: last successfully served row per DIMM.
    pub last_good: Vec<(DimmId, SimTime, Vec<f32>)>,
    /// The feature store's per-DIMM rolling event windows.
    pub streams: Vec<(DimmId, Vec<MemEvent>)>,
    /// The score trace, when tracing was enabled at capture time (v3;
    /// restores as `None` from a v2 payload, which predates the field).
    pub trace: Option<Vec<ScoreRecord>>,
}

impl OnlineCheckpoint {
    /// Captures the predictor's folded state plus the feature store's
    /// rolling windows (the store must be the one the predictor serves
    /// from).
    pub fn capture(predictor: &OnlinePredictor<'_>, store: &FeatureStore) -> Self {
        mfp_obs::counter("checkpoint_captures", &[]).incr();
        OnlineCheckpoint {
            platform: predictor.platform,
            cfg: predictor.cfg,
            next_tick: predictor.next_tick,
            watermark: predictor.watermark,
            scored: predictor.scored,
            stale_rejected: predictor.stale_rejected,
            streaks: predictor.streaks.iter().map(|(d, s)| (*d, *s)).collect(),
            last_alarm: predictor.last_alarm.iter().map(|(d, t)| (*d, *t)).collect(),
            alarms: predictor.alarms.clone(),
            last_good: predictor
                .last_good
                .iter()
                .map(|(d, (t, row))| (*d, *t, row.clone()))
                .collect(),
            streams: store.export_streams(),
            trace: predictor.trace.clone(),
        }
    }

    /// Rebuilds a predictor (and refills `store`) from this checkpoint.
    /// Replaying the post-checkpoint event suffix through the result
    /// yields the alarm sequence of an uninterrupted run, bit for bit.
    pub fn restore<'a>(
        &self,
        lake: &'a DataLake,
        store: &'a FeatureStore,
        registry: &'a ModelRegistry,
    ) -> OnlinePredictor<'a> {
        mfp_obs::counter("checkpoint_restores", &[]).incr();
        store.import_streams(self.streams.clone());
        let mut p = OnlinePredictor::new(lake, store, registry, self.platform, self.cfg);
        p.next_tick = self.next_tick;
        p.watermark = self.watermark;
        p.scored = self.scored;
        p.stale_rejected = self.stale_rejected;
        p.streaks = self.streaks.iter().copied().collect();
        p.last_alarm = self.last_alarm.iter().copied().collect();
        p.alarms = self.alarms.clone();
        p.last_good = self
            .last_good
            .iter()
            .map(|(d, t, row)| (*d, (*t, row.clone())))
            .collect();
        p.trace = self.trace.clone();
        p
    }

    /// Serializes the checkpoint into its binary format.
    pub fn encode(&self) -> Bytes {
        self.encode_versioned(VERSION)
    }

    /// Serializes at a specific historical wire version — v2 drops the
    /// score trace (the field it predates). Kept crate-private for the
    /// compatibility tests; production writers always emit `VERSION`.
    pub(crate) fn encode_versioned(&self, version: u8) -> Bytes {
        debug_assert!((MIN_VERSION..=VERSION).contains(&version));
        let mut buf = BytesMut::with_capacity(256 + self.streams.len() * 64);
        buf.put_slice(&MAGIC);
        buf.put_u8(version);
        let platform = Platform::ALL
            .iter()
            .position(|p| *p == self.platform)
            .unwrap_or(0) as u8;
        buf.put_u8(platform);
        buf.put_u64(self.cfg.prediction_interval.as_secs());
        buf.put_u64(self.cfg.votes as u64);
        buf.put_u64(self.cfg.alarm_cooldown.as_secs());
        buf.put_u64(self.cfg.degraded_grace.as_secs());
        buf.put_u64(self.next_tick.as_secs());
        buf.put_u64(self.watermark.as_secs());
        buf.put_u64(self.scored);
        buf.put_u64(self.stale_rejected);
        buf.put_u64(self.streaks.len() as u64);
        for (d, s) in &self.streaks {
            put_dimm(&mut buf, *d);
            buf.put_u32(*s);
        }
        buf.put_u64(self.last_alarm.len() as u64);
        for (d, t) in &self.last_alarm {
            put_dimm(&mut buf, *d);
            buf.put_u64(t.as_secs());
        }
        buf.put_u64(self.alarms.len() as u64);
        for a in &self.alarms {
            put_dimm(&mut buf, a.dimm);
            buf.put_u64(a.time.as_secs());
            buf.put_u32(a.score.to_bits());
        }
        buf.put_u64(self.last_good.len() as u64);
        for (d, t, row) in &self.last_good {
            put_dimm(&mut buf, *d);
            buf.put_u64(t.as_secs());
            buf.put_u64(row.len() as u64);
            for v in row {
                buf.put_u32(v.to_bits());
            }
        }
        buf.put_u64(self.streams.len() as u64);
        for (d, events) in &self.streams {
            put_dimm(&mut buf, *d);
            // Embedded collector wire format; BmcLog's stable sort keeps
            // the already-ordered window byte-identical through the trip.
            let log: BmcLog = events.iter().copied().collect();
            let payload = log.encode();
            buf.put_u64(payload.len() as u64);
            buf.put_slice(&payload);
        }
        if version >= 3 {
            match &self.trace {
                None => buf.put_u8(0),
                Some(trace) => {
                    buf.put_u8(1);
                    buf.put_u64(trace.len() as u64);
                    for r in trace {
                        buf.put_u64(r.time.as_secs());
                        put_dimm(&mut buf, r.dimm);
                        buf.put_u32(r.score.to_bits());
                    }
                }
            }
        }
        seal(buf)
    }

    /// Deserializes a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on truncation, bad magic/version, a
    /// checksum mismatch (torn write or bit rot), an unknown platform
    /// index, or a malformed embedded event log.
    pub fn decode(data: &[u8]) -> Result<OnlineCheckpoint, CheckpointError> {
        let (payload, version) = verify_envelope(data, &MAGIC)?;
        let mut c = Cursor { data: payload };
        let pidx = c.u8()?;
        let platform = *Platform::ALL
            .get(pidx as usize)
            .ok_or(CheckpointError::BadPlatform(pidx))?;
        let cfg = OnlineConfig {
            prediction_interval: SimDuration::secs(c.u64()?),
            votes: c.u64()? as usize,
            alarm_cooldown: SimDuration::secs(c.u64()?),
            degraded_grace: SimDuration::secs(c.u64()?),
        };
        let next_tick = SimTime::from_secs(c.u64()?);
        let watermark = SimTime::from_secs(c.u64()?);
        let scored = c.u64()?;
        let stale_rejected = c.u64()?;
        let n = c.len()?;
        let mut streaks = Vec::with_capacity(n);
        for _ in 0..n {
            let d = c.dimm()?;
            streaks.push((d, c.u32()?));
        }
        let n = c.len()?;
        let mut last_alarm = Vec::with_capacity(n);
        for _ in 0..n {
            let d = c.dimm()?;
            last_alarm.push((d, SimTime::from_secs(c.u64()?)));
        }
        let n = c.len()?;
        let mut alarms = Vec::with_capacity(n);
        for _ in 0..n {
            let dimm = c.dimm()?;
            let time = SimTime::from_secs(c.u64()?);
            let score = f32::from_bits(c.u32()?);
            alarms.push(Alarm { dimm, time, score });
        }
        let n = c.len()?;
        let mut last_good = Vec::with_capacity(n);
        for _ in 0..n {
            let d = c.dimm()?;
            let t = SimTime::from_secs(c.u64()?);
            let rl = c.len()?;
            let mut row = Vec::with_capacity(rl);
            for _ in 0..rl {
                row.push(f32::from_bits(c.u32()?));
            }
            last_good.push((d, t, row));
        }
        let n = c.len()?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            let d = c.dimm()?;
            let plen = c.len()?;
            let payload = c.bytes(plen)?;
            let log = BmcLog::decode(payload).map_err(CheckpointError::BadLog)?;
            streams.push((d, log.events().to_vec()));
        }
        let trace = if version >= 3 {
            match c.u8()? {
                0 => None,
                1 => {
                    let n = c.len()?;
                    let mut t = Vec::with_capacity(n);
                    for _ in 0..n {
                        let time = SimTime::from_secs(c.u64()?);
                        let dimm = c.dimm()?;
                        let score = f32::from_bits(c.u32()?);
                        t.push(ScoreRecord { time, dimm, score });
                    }
                    Some(t)
                }
                // Anything else is corruption the CRC failed to catch
                // only in adversarial constructions; refuse it.
                _ => return Err(CheckpointError::Truncated),
            }
        } else {
            None
        };
        Ok(OnlineCheckpoint {
            platform,
            cfg,
            next_tick,
            watermark,
            scored,
            stale_rejected,
            streaks,
            last_alarm,
            alarms,
            last_good,
            streams,
            trace,
        })
    }
}

/// A point-in-time snapshot of a sharded serving engine
/// ([`ShardedOnline`] / `crate::serve::serve_pipeline`): one
/// [`OnlineCheckpoint`] per shard, ordered by shard index.
///
/// The wire format wraps each shard's `MFC1` payload length-prefixed
/// under an `MFS1` header, so a shard payload can be inspected (or
/// restored alone) with the single-predictor decoder. Restoring
/// requires the **same shard count** the snapshot was taken with —
/// shard routing is a pure function of `(dimm, shards)`, so changing
/// the count would re-home DIMMs away from their serialized state;
/// [`ServeCheckpoint::restore`] asserts this.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheckpoint {
    /// Per-shard snapshots, index `i` belonging to shard `i`.
    pub shards: Vec<OnlineCheckpoint>,
}

impl ServeCheckpoint {
    /// Captures every shard of the engine (with `stores[i]` being shard
    /// `i`'s feature store, as built by `crate::serve::make_stores`).
    ///
    /// # Panics
    ///
    /// Panics when `stores.len()` differs from the engine's shard count;
    /// [`ServeCheckpoint::try_capture`] reports the same condition as a
    /// typed error instead.
    pub fn capture(engine: &ShardedOnline<'_>, stores: &[FeatureStore]) -> Self {
        Self::try_capture(engine, stores).expect("one feature store per shard")
    }

    /// Fallible [`ServeCheckpoint::capture`]: a store slice whose length
    /// disagrees with the engine's shard count — caller-supplied data,
    /// not a library invariant — comes back as
    /// [`CheckpointError::ShardCount`] instead of a panic.
    pub fn try_capture(
        engine: &ShardedOnline<'_>,
        stores: &[FeatureStore],
    ) -> Result<Self, CheckpointError> {
        if engine.shard_count() != stores.len() {
            return Err(CheckpointError::ShardCount {
                captured: engine.shard_count(),
                stores: stores.len(),
            });
        }
        Ok(ServeCheckpoint {
            shards: engine
                .shards
                .iter()
                .zip(stores)
                .map(|(p, s)| OnlineCheckpoint::capture(p, s))
                .collect(),
        })
    }

    /// Rebuilds a sharded engine (refilling `stores`) from this
    /// checkpoint. Replaying the post-checkpoint suffix yields the
    /// alarm/score sequence of an uninterrupted run, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `stores.len()` differs from the captured shard count
    /// (see the type docs for why resharding a snapshot is unsound);
    /// [`ServeCheckpoint::try_restore`] reports the same condition as a
    /// typed error instead.
    pub fn restore<'a>(
        &self,
        lake: &'a DataLake,
        stores: &'a [FeatureStore],
        registry: &'a ModelRegistry,
    ) -> ShardedOnline<'a> {
        self.try_restore(lake, stores, registry)
            .expect("restore requires the captured shard count")
    }

    /// Fallible [`ServeCheckpoint::restore`]: a shard count mismatch —
    /// typically an on-disk snapshot meeting a reconfigured deployment,
    /// i.e. input-derived state — comes back as
    /// [`CheckpointError::ShardCount`] instead of a panic.
    pub fn try_restore<'a>(
        &self,
        lake: &'a DataLake,
        stores: &'a [FeatureStore],
        registry: &'a ModelRegistry,
    ) -> Result<ShardedOnline<'a>, CheckpointError> {
        if self.shards.len() != stores.len() {
            return Err(CheckpointError::ShardCount {
                captured: self.shards.len(),
                stores: stores.len(),
            });
        }
        Ok(ShardedOnline {
            shards: self
                .shards
                .iter()
                .zip(stores)
                .map(|(cp, store)| cp.restore(lake, store, registry))
                .collect(),
        })
    }

    /// Serializes the sharded checkpoint into its binary format.
    pub fn encode(&self) -> Bytes {
        let payloads: Vec<Bytes> = self.shards.iter().map(|cp| cp.encode()).collect();
        let total: usize = payloads.iter().map(|p| p.len() + 8).sum();
        let mut buf = BytesMut::with_capacity(5 + 8 + total);
        buf.put_slice(&SERVE_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64(payloads.len() as u64);
        for payload in payloads {
            buf.put_u64(payload.len() as u64);
            buf.put_slice(&payload);
        }
        seal(buf)
    }

    /// Deserializes a sharded checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on truncation, bad magic/version, a
    /// checksum mismatch, or any malformed embedded shard payload.
    pub fn decode(data: &[u8]) -> Result<ServeCheckpoint, CheckpointError> {
        let (payload, _version) = verify_envelope(data, &SERVE_MAGIC)?;
        let mut c = Cursor { data: payload };
        let n = c.len()?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let plen = c.len()?;
            let payload = c.bytes(plen)?;
            shards.push(OnlineCheckpoint::decode(payload)?);
        }
        Ok(ServeCheckpoint { shards })
    }
}

fn put_dimm(buf: &mut BytesMut, d: DimmId) {
    buf.put_u32(d.server.0);
    buf.put_u8(d.slot);
}

/// Bounds-checked big-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.data.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A u64 length field, sanity-bounded by the remaining payload so a
    /// corrupted count cannot trigger a huge allocation.
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        if n > self.data.len() as u64 {
            return Err(CheckpointError::Truncated);
        }
        Ok(n as usize)
    }

    fn dimm(&mut self) -> Result<DimmId, CheckpointError> {
        let server = self.u32()?;
        let slot = self.u8()?;
        Ok(DimmId::new(server, slot))
    }
}

/// Failure decoding a checkpoint payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// Input ended before a complete record.
    Truncated,
    /// Leading magic bytes did not match.
    BadMagic,
    /// Unsupported checkpoint version.
    BadVersion(u8),
    /// Trailing CRC32 did not match the payload (torn write / bit rot).
    BadChecksum,
    /// Platform index outside `Platform::ALL`.
    BadPlatform(u8),
    /// An embedded event log failed to decode.
    BadLog(DecodeError),
    /// A sharded capture/restore was attempted with a store slice whose
    /// length disagrees with the checkpointed (or engine's) shard count.
    ShardCount {
        /// Shards in the snapshot (or engine).
        captured: usize,
        /// Feature stores the caller supplied.
        stores: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::BadPlatform(p) => write!(f, "unknown platform index {p}"),
            CheckpointError::BadLog(e) => write!(f, "embedded event log: {e}"),
            CheckpointError::ShardCount { captured, stores } => write!(
                f,
                "checkpoint holds {captured} shards but {stores} stores were supplied"
            ),
        }
    }
}

impl Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_store::FeatureStore;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use mfp_dram::spec::DimmSpec;
    use mfp_features::fault_analysis::FaultThresholds;
    use mfp_features::labeling::ProblemConfig;
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::model::{Algorithm, Model};
    use mfp_ml::risky_ce::RiskyCePattern;

    fn risky_ce(t: u64, dimm: DimmId) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits([(1, 20), (5, 21)]),
        })
    }

    fn setup(lake: &DataLake, registry: &ModelRegistry, dimms: &[DimmId]) {
        for &id in dimms {
            lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        }
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            Model::RiskyCe(RiskyCePattern::default()),
        );
        registry.promote(mid);
    }

    fn store() -> FeatureStore {
        FeatureStore::new(ProblemConfig::default(), FaultThresholds::default())
    }

    /// A stream mixing two DIMMs, gaps and bursts across several days.
    fn stream(dimms: &[DimmId]) -> Vec<MemEvent> {
        (0..48u64)
            .map(|k| risky_ce(5_000 + k * 5_400, dimms[(k % dimms.len() as u64) as usize]))
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = [DimmId::new(1, 0), DimmId::new(2, 1)];
        setup(&lake, &registry, &dimms);
        let s = store();
        let mut p = OnlinePredictor::new(
            &lake,
            &s,
            &registry,
            Platform::IntelPurley,
            OnlineConfig {
                degraded_grace: SimDuration::days(1),
                ..OnlineConfig::default()
            },
        );
        p.set_score_trace(true);
        for e in stream(&dimms) {
            p.observe(&e);
        }
        p.finish(SimTime::from_secs(4 * 86_400));
        let cp = OnlineCheckpoint::capture(&p, &s);
        assert!(!cp.streams.is_empty());
        assert!(
            cp.trace.as_ref().is_some_and(|t| !t.is_empty()),
            "tracing was on, so the v3 trace section must carry records"
        );
        let bytes = cp.encode();
        let back = OnlineCheckpoint::decode(&bytes).unwrap();
        assert_eq!(back, cp, "checkpoint must round-trip bit-exactly");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            OnlineCheckpoint::decode(b"xx"),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            OnlineCheckpoint::decode(b"XXXX\x01\x00"),
            Err(CheckpointError::BadMagic)
        );
        assert_eq!(
            OnlineCheckpoint::decode(b"MFC1\x09\x00"),
            Err(CheckpointError::BadVersion(9))
        );
        // v1 payloads (pre-CRC) are rejected by version, not misread.
        assert_eq!(
            OnlineCheckpoint::decode(b"MFC1\x01\x77"),
            Err(CheckpointError::BadVersion(1))
        );
        // A correctly sealed envelope still rejects a bad platform index,
        // at the current version and at the oldest accepted one.
        for version in [2u8, 3] {
            let mut sealed = vec![b'M', b'F', b'C', b'1', version, 0x77];
            sealed.extend_from_slice(&crate::wal::crc32(&sealed).to_be_bytes());
            assert_eq!(
                OnlineCheckpoint::decode(&sealed),
                Err(CheckpointError::BadPlatform(0x77))
            );
        }
        // Corrupted length field: bounded, not a huge allocation.
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let s = store();
        let p = OnlinePredictor::new(
            &lake,
            &s,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let bytes = OnlineCheckpoint::capture(&p, &s).encode();
        let cut = &bytes[..bytes.len() - 4];
        assert_eq!(
            OnlineCheckpoint::decode(cut),
            Err(CheckpointError::BadChecksum)
        );
    }

    #[test]
    fn sharded_checkpoint_roundtrips_and_rejects_garbage() {
        use crate::serve::{make_stores, ShardedOnline};
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = [DimmId::new(1, 0), DimmId::new(2, 1), DimmId::new(3, 0)];
        setup(&lake, &registry, &dimms);
        let stores = make_stores(3, ProblemConfig::default(), FaultThresholds::default());
        let mut engine = ShardedOnline::new(
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        for e in stream(&dimms) {
            engine.observe(&e);
        }
        let cp = ServeCheckpoint::capture(&engine, &stores);
        assert_eq!(cp.shards.len(), 3);
        let wire = cp.encode();
        let back = ServeCheckpoint::decode(&wire).unwrap();
        assert_eq!(back, cp, "sharded checkpoint must round-trip bit-exactly");

        assert_eq!(
            ServeCheckpoint::decode(b"xx"),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            ServeCheckpoint::decode(b"XXXX\x01\x00"),
            Err(CheckpointError::BadMagic)
        );
        assert_eq!(
            ServeCheckpoint::decode(b"MFS1\x09\x00"),
            Err(CheckpointError::BadVersion(9))
        );
        let cut = &wire[..wire.len() - 3];
        assert_eq!(
            ServeCheckpoint::decode(cut),
            Err(CheckpointError::BadChecksum)
        );
        // A single-predictor payload is not a sharded checkpoint.
        let single = cp.shards[0].encode();
        assert_eq!(
            ServeCheckpoint::decode(&single),
            Err(CheckpointError::BadMagic)
        );
    }

    /// Builds a small but non-trivial pair of wire payloads (single and
    /// sharded) for the torn-write sweeps below.
    fn sweep_payloads() -> (Bytes, Bytes) {
        use crate::serve::{make_stores, ShardedOnline};
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = [DimmId::new(1, 0), DimmId::new(2, 1)];
        setup(&lake, &registry, &dimms);
        let s = store();
        let mut p = OnlinePredictor::new(
            &lake,
            &s,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        for e in stream(&dimms).into_iter().take(12) {
            p.observe(&e);
        }
        let single = OnlineCheckpoint::capture(&p, &s).encode();
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let mut engine = ShardedOnline::new(
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        for e in stream(&dimms).into_iter().take(12) {
            engine.observe(&e);
        }
        let sharded = ServeCheckpoint::capture(&engine, &stores).encode();
        (single, sharded)
    }

    #[test]
    fn truncation_at_every_byte_offset_is_detected() {
        let (single, sharded) = sweep_payloads();
        assert!(OnlineCheckpoint::decode(&single).is_ok());
        assert!(ServeCheckpoint::decode(&sharded).is_ok());
        for cut in 0..single.len() {
            assert!(
                OnlineCheckpoint::decode(&single[..cut]).is_err(),
                "MFC1 truncated to {cut} bytes must not decode"
            );
        }
        for cut in 0..sharded.len() {
            assert!(
                ServeCheckpoint::decode(&sharded[..cut]).is_err(),
                "MFS1 truncated to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn single_bit_corruption_is_detected() {
        let (single, sharded) = sweep_payloads();
        // Every byte, one rotating bit per byte: flips in the header are
        // caught by magic/version checks, everywhere else by the CRC.
        for (wire, name) in [(&single, "MFC1"), (&sharded, "MFS1")] {
            for i in 0..wire.len() {
                let mut flipped = wire.to_vec();
                flipped[i] ^= 1 << (i % 8);
                let err = if *name == *"MFC1" {
                    OnlineCheckpoint::decode(&flipped).err()
                } else {
                    ServeCheckpoint::decode(&flipped).err()
                };
                assert!(
                    err.is_some(),
                    "{name}: bit flip at byte {i} must not decode"
                );
            }
        }
    }

    #[test]
    fn restore_from_v2_checkpoint_matches_the_rebuild_path() {
        // A pre-trace (v2) envelope must still decode, and restoring
        // from it must reproduce what rebuilding from scratch would:
        // identical alarms and invocation counts over the same suffix.
        // The v3 envelope of the same state additionally carries the
        // score trace through the crash.
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = [DimmId::new(1, 0), DimmId::new(2, 1)];
        setup(&lake, &registry, &dimms);
        let events = stream(&dimms);
        let end = SimTime::from_secs(6 * 86_400);
        let cut = events.len() / 2;

        let ref_store = store();
        let mut reference = OnlinePredictor::new(
            &lake,
            &ref_store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        reference.set_score_trace(true);
        for e in &events {
            reference.observe(e);
        }
        reference.finish(end);
        assert!(!reference.score_trace().is_empty());

        let s1 = store();
        let mut first = OnlinePredictor::new(
            &lake,
            &s1,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        first.set_score_trace(true);
        for e in &events[..cut] {
            first.observe(e);
        }
        let cp = OnlineCheckpoint::capture(&first, &s1);
        let v2 = cp.encode_versioned(2);
        let v3 = cp.encode();
        assert_eq!(v2[4], 2);
        assert_eq!(v3[4], 3);

        let old = OnlineCheckpoint::decode(&v2).unwrap();
        assert_eq!(old.trace, None, "v2 predates the trace section");
        assert_eq!(old.alarms, cp.alarms);
        assert_eq!(old.streams, cp.streams);
        let s2 = store();
        let mut resumed = old.restore(&lake, &s2, &registry);
        for e in &events[cut..] {
            resumed.observe(e);
        }
        resumed.finish(end);
        assert_eq!(resumed.alarms(), reference.alarms());
        assert_eq!(resumed.scored(), reference.scored());

        let s3 = store();
        let mut traced = OnlineCheckpoint::decode(&v3).unwrap().restore(&lake, &s3, &registry);
        for e in &events[cut..] {
            traced.observe(e);
        }
        traced.finish(end);
        assert_eq!(traced.alarms(), reference.alarms());
        assert_eq!(
            traced.score_trace(),
            reference.score_trace(),
            "a v3 restore must carry the pre-crash score trace through"
        );
    }

    #[test]
    fn try_capture_reports_shard_count_as_typed_error() {
        use crate::serve::{make_stores, ShardedOnline};
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let engine = ShardedOnline::new(
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let other = make_stores(3, ProblemConfig::default(), FaultThresholds::default());
        let err = ServeCheckpoint::try_capture(&engine, &other).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::ShardCount {
                captured: 2,
                stores: 3
            }
        );
        assert!(ServeCheckpoint::try_capture(&engine, &stores).is_ok());
    }

    #[test]
    fn try_restore_reports_shard_count_as_typed_error() {
        use crate::serve::{make_stores, ShardedOnline};
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let engine = ShardedOnline::new(
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let cp = ServeCheckpoint::capture(&engine, &stores);
        let other = make_stores(4, ProblemConfig::default(), FaultThresholds::default());
        let err = cp.try_restore(&lake, &other, &registry).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::ShardCount {
                captured: 2,
                stores: 4
            }
        );
        assert!(cp.try_restore(&lake, &stores, &registry).is_ok());
    }

    #[test]
    #[should_panic(expected = "captured shard count")]
    fn sharded_restore_rejects_a_different_shard_count() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        use crate::serve::{make_stores, ShardedOnline};
        let stores = make_stores(2, ProblemConfig::default(), FaultThresholds::default());
        let engine = ShardedOnline::new(
            &lake,
            &stores,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let cp = ServeCheckpoint::capture(&engine, &stores);
        let other = make_stores(4, ProblemConfig::default(), FaultThresholds::default());
        let _ = cp.restore(&lake, &other, &registry);
    }

    #[test]
    fn crash_at_any_event_restores_identical_alarms() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        let dimms = [DimmId::new(1, 0), DimmId::new(2, 1)];
        setup(&lake, &registry, &dimms);
        let events = stream(&dimms);
        let end = SimTime::from_secs(6 * 86_400);
        let cfg = OnlineConfig {
            degraded_grace: SimDuration::hours(18),
            ..OnlineConfig::default()
        };

        // Uninterrupted reference run.
        let ref_store = store();
        let mut reference =
            OnlinePredictor::new(&lake, &ref_store, &registry, Platform::IntelPurley, cfg);
        for e in &events {
            reference.observe(e);
        }
        reference.finish(end);
        assert!(
            !reference.alarms().is_empty(),
            "the stream must alarm or the test proves nothing"
        );

        // Crash after every prefix length, restore through the wire
        // format, replay the suffix: alarms must match bit for bit.
        for cut in 0..=events.len() {
            let s1 = store();
            let mut first = OnlinePredictor::new(&lake, &s1, &registry, Platform::IntelPurley, cfg);
            for e in &events[..cut] {
                first.observe(e);
            }
            let wire = OnlineCheckpoint::capture(&first, &s1).encode();
            drop(first);

            let cp = OnlineCheckpoint::decode(&wire).unwrap();
            let s2 = store();
            let mut resumed = cp.restore(&lake, &s2, &registry);
            for e in &events[cut..] {
                resumed.observe(e);
            }
            resumed.finish(end);
            assert_eq!(
                resumed.alarms(),
                reference.alarms(),
                "crash at event {cut} must not change the alarm sequence"
            );
            assert_eq!(resumed.scored(), reference.scored());
        }
    }
}
