//! Monitoring and feedback (paper §VII): dashboards over every phase of
//! the MLOps workflow, live precision/recall from cloud-service feedback,
//! and the retraining trigger.

use crate::drift::DriftReport;
use mfp_dram::address::DimmId;
use mfp_dram::time::SimTime;
use mfp_obs::series_name;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A monotonically increasing counter or a last-value gauge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Cumulative count.
    Counter(u64),
    /// Last observed value.
    Gauge(f64),
}

/// The metrics dashboard: named counters and gauges, as rendered in both
/// the testing and production environments.
#[derive(Debug, Default)]
pub struct Dashboard {
    metrics: RwLock<BTreeMap<String, MetricValue>>,
}

impl Dashboard {
    /// Creates an empty dashboard.
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Increments a counter (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        let mut m = self.metrics.write();
        let e = m.entry(name.to_string()).or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(c) = e {
            *c += by;
        }
    }

    /// Sets a gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        self.metrics
            .write()
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Reads one metric.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.metrics.read().get(name).copied()
    }

    /// Snapshot of all metrics.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.metrics.read().clone()
    }

    /// Imports a process-telemetry snapshot ([`mfp_obs::Snapshot`]) into the
    /// dashboard, so the §VII rendering covers every instrumented layer
    /// (simulator, feature assembly, training, online serving).
    ///
    /// Counters are imported as counters (replacing any previous import of
    /// the same series — `mfp-obs` counters are already cumulative), gauges
    /// as gauges, and each histogram contributes `<name>_count` plus
    /// `<name>_p99` entries.
    pub fn import_telemetry(&self, snap: &mfp_obs::Snapshot) {
        let mut m = self.metrics.write();
        for c in &snap.counters {
            m.insert(
                series_name(&c.name, &c.labels),
                MetricValue::Counter(c.value),
            );
        }
        for g in &snap.gauges {
            m.insert(series_name(&g.name, &g.labels), MetricValue::Gauge(g.value));
        }
        for h in &snap.histograms {
            let base = series_name(&h.name, &h.labels);
            m.insert(format!("{base}_count"), MetricValue::Counter(h.count));
            m.insert(format!("{base}_p99"), MetricValue::Gauge(h.p99));
        }
    }

    /// Renders a plain-text dashboard.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.metrics.read().iter() {
            match value {
                MetricValue::Counter(c) => out.push_str(&format!("{name:<40} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name:<40} {g:.4}\n")),
            }
        }
        out
    }
}

/// Feedback collector: matches alarms against later UE outcomes to track
/// live precision / recall, the signal the paper feeds back "to enhance
/// algorithm accuracy and ensure fairness".
#[derive(Debug, Default)]
pub struct FeedbackLoop {
    alarmed: RwLock<BTreeMap<DimmId, SimTime>>,
    failed: RwLock<BTreeMap<DimmId, SimTime>>,
}

impl FeedbackLoop {
    /// Creates an empty loop.
    pub fn new() -> Self {
        FeedbackLoop::default()
    }

    /// Records an alarm (first one per DIMM wins).
    pub fn record_alarm(&self, dimm: DimmId, at: SimTime) {
        self.alarmed.write().entry(dimm).or_insert(at);
    }

    /// Records an observed UE.
    pub fn record_ue(&self, dimm: DimmId, at: SimTime) {
        self.failed.write().entry(dimm).or_insert(at);
    }

    /// Live (precision, recall) so far: an alarm is correct when the DIMM
    /// failed after it.
    pub fn live_precision_recall(&self) -> (f64, f64) {
        let alarmed = self.alarmed.read();
        let failed = self.failed.read();
        let tp = alarmed
            .iter()
            .filter(|(d, &t)| failed.get(d).is_some_and(|&ue| ue > t))
            .count() as f64;
        let precision = if alarmed.is_empty() {
            0.0
        } else {
            tp / alarmed.len() as f64
        };
        let recall = if failed.is_empty() {
            0.0
        } else {
            tp / failed.len() as f64
        };
        (precision, recall)
    }
}

/// Retraining policy: fires when drift is severe or live precision sinks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainPolicy {
    /// PSI above which retraining triggers.
    pub psi_threshold: f64,
    /// Live precision below which retraining triggers (given enough
    /// feedback volume).
    pub min_precision: f64,
    /// Minimum alarms before precision feedback is trusted.
    pub min_alarms: usize,
}

impl Default for RetrainPolicy {
    fn default() -> Self {
        RetrainPolicy {
            psi_threshold: 0.2,
            min_precision: 0.2,
            min_alarms: 20,
        }
    }
}

impl RetrainPolicy {
    /// Decides whether to retrain; returns the triggering reason.
    pub fn should_retrain(&self, drift: &DriftReport, feedback: &FeedbackLoop) -> Option<String> {
        if drift.drifted(self.psi_threshold) {
            return Some(format!(
                "feature drift: max PSI {:.3} > {:.3}",
                drift.max_psi(),
                self.psi_threshold
            ));
        }
        let n_alarms = feedback.alarmed.read().len();
        if n_alarms >= self.min_alarms {
            let (precision, _) = feedback.live_precision_recall();
            if precision < self.min_precision {
                return Some(format!(
                    "live precision {precision:.3} < {:.3} over {n_alarms} alarms",
                    self.min_precision
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FeatureDrift;

    #[test]
    fn counters_and_gauges() {
        let d = Dashboard::new();
        d.incr("events_ingested", 10);
        d.incr("events_ingested", 5);
        d.gauge("model_f1", 0.61);
        assert_eq!(d.get("events_ingested"), Some(MetricValue::Counter(15)));
        assert_eq!(d.get("model_f1"), Some(MetricValue::Gauge(0.61)));
        let text = d.render();
        assert!(text.contains("events_ingested"));
        assert!(text.contains("0.6100"));
    }

    #[test]
    fn telemetry_snapshot_imports_into_dashboard() {
        // Feed process telemetry through real mfp-obs handles, then import
        // the snapshot. Counters are global across parallel tests, so only
        // series owned by this test get exact assertions.
        mfp_obs::counter("monitor_import_test_total", &[("k", "v")]).add(7);
        mfp_obs::gauge("monitor_import_test_level", &[]).set(0.25);
        let h = mfp_obs::latency("monitor_import_test_seconds", &[]);
        h.record(0.001);
        let snap = mfp_obs::global().snapshot();
        let d = Dashboard::new();
        d.import_telemetry(&snap);
        assert_eq!(
            d.get("monitor_import_test_total{k=v}"),
            Some(MetricValue::Counter(7))
        );
        assert_eq!(
            d.get("monitor_import_test_level"),
            Some(MetricValue::Gauge(0.25))
        );
        match d.get("monitor_import_test_seconds_count") {
            Some(MetricValue::Counter(n)) => assert!(n >= 1),
            other => panic!("missing histogram count: {other:?}"),
        }
        assert!(matches!(
            d.get("monitor_import_test_seconds_p99"),
            Some(MetricValue::Gauge(_))
        ));
        let text = d.render();
        assert!(text.contains("monitor_import_test_total{k=v}"));
    }

    #[test]
    fn failover_telemetry_surfaces_in_the_dashboard_snapshot() {
        // The self-healing serving path (crate::supervise + per-shard
        // WALs) reports through these exact series; pin the names so the
        // dashboard always carries restart/quarantine/replay state.
        mfp_obs::counter("serve_shard_restarts", &[]).add(2);
        mfp_obs::counter("serve_shard_quarantined", &[]).incr();
        mfp_obs::counter("serve_shard_panics", &[]).add(3);
        mfp_obs::counter("serve_shard_hangs", &[]).incr();
        mfp_obs::counter("serve_shard_kills", &[]).incr();
        mfp_obs::counter("wal_replay_records", &[("shard", "0")]).add(5);
        mfp_obs::gauge("serve_live_shards", &[]).set(4.0);
        let d = Dashboard::new();
        d.import_telemetry(&mfp_obs::global().snapshot());
        // Counters are process-global across parallel tests, so assert
        // presence and floors, not exact values.
        for series in [
            "serve_shard_restarts",
            "serve_shard_quarantined",
            "serve_shard_panics",
            "serve_shard_hangs",
            "serve_shard_kills",
            "wal_replay_records{shard=0}",
        ] {
            match d.get(series) {
                Some(MetricValue::Counter(n)) => assert!(n >= 1, "{series} too low"),
                other => panic!("{series} missing from dashboard: {other:?}"),
            }
        }
        assert!(matches!(
            d.get("serve_live_shards"),
            Some(MetricValue::Gauge(v)) if v >= 0.0
        ));
        let snapshot = d.snapshot();
        assert!(snapshot.contains_key("serve_shard_restarts"));
    }

    #[test]
    fn feedback_precision_recall() {
        let f = FeedbackLoop::new();
        f.record_alarm(DimmId::new(1, 0), SimTime::from_secs(10));
        f.record_alarm(DimmId::new(2, 0), SimTime::from_secs(10));
        f.record_ue(DimmId::new(1, 0), SimTime::from_secs(100)); // tp
        f.record_ue(DimmId::new(3, 0), SimTime::from_secs(100)); // fn
        let (p, r) = f.live_precision_recall();
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alarm_after_failure_is_not_correct() {
        let f = FeedbackLoop::new();
        f.record_ue(DimmId::new(1, 0), SimTime::from_secs(50));
        f.record_alarm(DimmId::new(1, 0), SimTime::from_secs(100));
        let (p, r) = f.live_precision_recall();
        assert_eq!((p, r), (0.0, 0.0));
    }

    #[test]
    fn retrain_on_drift() {
        let policy = RetrainPolicy::default();
        let drift = DriftReport {
            features: vec![FeatureDrift {
                name: "ce_5d".into(),
                psi: 0.5,
            }],
        };
        let reason = policy.should_retrain(&drift, &FeedbackLoop::new());
        assert!(reason.unwrap().contains("drift"));
    }

    #[test]
    fn retrain_on_bad_precision_needs_volume() {
        let policy = RetrainPolicy {
            min_alarms: 3,
            ..Default::default()
        };
        let no_drift = DriftReport { features: vec![] };
        let f = FeedbackLoop::new();
        f.record_alarm(DimmId::new(1, 0), SimTime::from_secs(10));
        // Too few alarms: no trigger.
        assert!(policy.should_retrain(&no_drift, &f).is_none());
        f.record_alarm(DimmId::new(2, 0), SimTime::from_secs(10));
        f.record_alarm(DimmId::new(3, 0), SimTime::from_secs(10));
        // 3 alarms, zero correct: precision 0 triggers.
        let reason = policy.should_retrain(&no_drift, &f);
        assert!(reason.unwrap().contains("precision"));
    }
}
