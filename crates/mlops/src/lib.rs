//! # mfp-mlops
//!
//! The MLOps framework of the paper's §VII / Fig. 6, as an in-process
//! library:
//!
//! * [`lake`] — the data pipeline's landing zone: partitioned event store +
//!   DIMM catalog, fed by the binary BMC wire format.
//! * [`ingest`] — hardened ingestion for hostile telemetry: validation
//!   with per-reason rejection counters, bounded dedup, watermark-based
//!   re-sequencing with quarantine, and collection-gap detection.
//! * [`checkpoint`] — crash/restore for the online path: bit-exact
//!   serialization of predictor + feature-stream state.
//! * [`feature_store`] — transformation (batch + streaming), storage,
//!   cataloging and serving of features, with an executable train/serve
//!   consistency check.
//! * [`registry`] — versioned, stage-tracked model storage
//!   (staging → production → archived, with rollback).
//! * [`cicd`] — the deployment pipeline: integration tests, benchmark
//!   non-regression gate, canary precision gate, automatic promotion.
//! * [`online`] — streaming prediction with alarm voting and cooldown.
//! * [`serve`] — the sharded, pipelined serving engine: DIMM-hash
//!   partitioned predictors on a backpressured worker pool, bit-identical
//!   to the sequential predictor at any shard/worker count.
//! * [`mitigation`] — VM migration on alarms and the *measured* VIRR.
//! * [`drift`] — PSI feature-drift detection.
//! * [`monitor`] — dashboards, live precision/recall feedback, and the
//!   retraining policy.
//! * [`lifecycle`] — the checkpointed orchestrator that ties monitoring,
//!   drift and CI/CD into the paper's continuous-improvement loop.
//! * [`wal`] — the durability layer: a checksummed write-ahead log with
//!   checkpoint compaction and crash recovery that replays to
//!   bit-identical alarms and scores from any torn-write offset, at
//!   whole-engine (`MFW1`/`MFD1`) or per-shard (`MFW2`) granularity.
//! * [`supervise`] — self-healing serving: shards run as restartable
//!   units with panic capture, heartbeat hang detection, deterministic
//!   bounded backoff, and poison-record quarantine, gated by a seeded
//!   crash-chaos injector against the sequential oracle.
//! * [`procserve`] — process-isolated serving: each shard in its own
//!   OS process behind a crc32-framed `MFP1` pipe protocol, supervised
//!   through real `SIGKILL`s, exit-status capture and heartbeat
//!   deadlines, recovering bit-identically from its per-shard WAL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cicd;
pub mod drift;
pub mod feature_store;
pub mod ingest;
pub mod lake;
pub mod lifecycle;
pub mod mitigation;
pub mod monitor;
pub mod online;
pub mod procserve;
pub mod registry;
pub mod serve;
pub mod supervise;
pub mod wal;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::checkpoint::{CheckpointError, OnlineCheckpoint, ServeCheckpoint};
    pub use crate::cicd::{run_pipeline, PipelineConfig, PipelineRun, StageResult};
    pub use crate::drift::{psi_report, psi_report_excluding, DriftReport};
    pub use crate::feature_store::{FeatureStore, FeatureView};
    pub use crate::ingest::{
        ingest_bounded, normalize, GapRecord, IngestConfig, IngestOutput, IngestStats, Ingestor,
        RejectReason,
    };
    pub use crate::lake::{DataLake, DiskLake, LakeError};
    pub use crate::lifecycle::{run_lifecycle, Checkpoint, LifecycleConfig};
    pub use crate::mitigation::{evaluate_mitigation, MitigationConfig, MitigationReport};
    pub use crate::monitor::{Dashboard, FeedbackLoop, MetricValue, RetrainPolicy};
    pub use crate::online::{Alarm, OnlineConfig, OnlinePredictor, ScoreRecord};
    pub use crate::registry::{ModelEntry, ModelRegistry, Stage};
    pub use crate::serve::{
        make_stores, serve_pipeline, shard_of, shard_route, ServeConfig, ServeError, ServeOutcome,
        ServeStats, ShardServeStats, ShardedOnline,
    };
    pub use crate::procserve::{
        shard_worker_main, ModelSpec, ProcConfig, ProcError, ProcOutcome, ProcReport,
        ProcSupervisor, WorkerCommand, WorkerSpec, WORKER_ENV,
    };
    pub use crate::supervise::{
        ChaosEvent, ChaosKind, ChaosPlan, SuperviseConfig, SupervisedOutcome, Supervisor,
        SupervisorReport,
    };
    pub use crate::wal::{
        ApplyVerdict, DurableConfig, DurableOnline, DurableShard, FlushStatus, RecoveryReport,
        ShardedDurable, WalError,
    };
}
