//! The CI/CD deployment pipeline (paper §VII): automated integration,
//! testing and promotion of newly trained models into production.
//!
//! A candidate passes three gates before promotion:
//!
//! 1. **Integration tests** — the model produces valid probabilities on a
//!    probe set and handles edge rows without panicking.
//! 2. **Benchmark gate** — DIMM-level F1 on the held-out benchmark must not
//!    regress against the current production model beyond a tolerance.
//! 3. **Canary evaluation** — the candidate is scored on the most recent
//!    window and its precision must clear a floor (VIRR would otherwise go
//!    negative in production).

use crate::registry::ModelRegistry;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimTime;
use mfp_features::dataset::SampleSet;
use mfp_ml::metrics::{best_vote_threshold, dimm_level_vote, Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use serde::{Deserialize, Serialize};

/// Pipeline gate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Allowed F1 regression against production before rejection.
    pub f1_tolerance: f64,
    /// Minimum canary precision (below this VIRR turns negative fast).
    pub min_canary_precision: f64,
    /// Alarm votes used at evaluation (consecutive samples >= threshold).
    pub votes: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            f1_tolerance: 0.02,
            min_canary_precision: 0.12,
            votes: 2,
        }
    }
}

/// Outcome of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageResult {
    /// Stage name.
    pub stage: String,
    /// Whether the gate passed.
    pub passed: bool,
    /// Human-readable detail.
    pub detail: String,
}

/// Outcome of a full pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineRun {
    /// Registry id of the candidate (present once registered).
    pub model_id: Option<u64>,
    /// Per-stage results, in execution order.
    pub stages: Vec<StageResult>,
    /// Whether the candidate reached production.
    pub deployed: bool,
}

/// Trains, validates and (when all gates pass) promotes a model.
///
/// `train` fits the model; `benchmark` tunes the threshold and measures the
/// registered evaluation; `canary` stands for the freshest window.
#[allow(clippy::too_many_arguments)] // the pipeline's stages each need their split
pub fn run_pipeline(
    registry: &ModelRegistry,
    cfg: &PipelineConfig,
    algorithm: Algorithm,
    platform: Platform,
    now: SimTime,
    train: &SampleSet,
    benchmark: &SampleSet,
    canary: &SampleSet,
) -> PipelineRun {
    let mut run = PipelineRun {
        model_id: None,
        stages: Vec::new(),
        deployed: false,
    };

    // Train the candidate.
    let model = Model::train(algorithm, train);

    // Gate 1: integration tests.
    let probe_ok = integration_test(&model, benchmark);
    run.stages.push(StageResult {
        stage: "integration".into(),
        passed: probe_ok,
        detail: if probe_ok {
            "probabilities valid on probe rows".into()
        } else {
            "invalid probability output".into()
        },
    });
    if !probe_ok {
        return run;
    }

    // Threshold tuning + benchmark evaluation.
    let scores = model.predict_set(benchmark);
    let threshold = best_vote_threshold(benchmark, &scores, cfg.votes);
    let (y_true, y_pred) = dimm_level_vote(benchmark, &scores, threshold, cfg.votes);
    let eval = Evaluation::from_confusion(Confusion::from_predictions(&y_true, &y_pred), threshold);

    // Gate 2: benchmark non-regression.
    let production_f1 = registry
        .production(platform)
        .map(|e| e.benchmark.f1)
        .unwrap_or(0.0);
    let bench_ok = eval.f1 + cfg.f1_tolerance >= production_f1;
    run.stages.push(StageResult {
        stage: "benchmark".into(),
        passed: bench_ok,
        detail: format!(
            "candidate F1 {:.3} vs production F1 {:.3}",
            eval.f1, production_f1
        ),
    });
    if !bench_ok {
        return run;
    }

    // Gate 3: canary precision.
    let canary_eval = if canary.is_empty() {
        None
    } else {
        let c_scores = model.predict_set(canary);
        let (cy, cp) = dimm_level_vote(canary, &c_scores, threshold, cfg.votes);
        Some(Evaluation::from_confusion(
            Confusion::from_predictions(&cy, &cp),
            threshold,
        ))
    };
    let canary_ok = canary_eval
        .map(|e| e.precision >= cfg.min_canary_precision || e.confusion.tp + e.confusion.fp == 0)
        .unwrap_or(true);
    run.stages.push(StageResult {
        stage: "canary".into(),
        passed: canary_ok,
        detail: match canary_eval {
            Some(e) => format!("canary precision {:.3}", e.precision),
            None => "no canary data; gate skipped".into(),
        },
    });
    if !canary_ok {
        return run;
    }

    // Register + promote.
    let id = registry.register(algorithm, platform, now, eval, threshold, model);
    registry.promote(id);
    run.model_id = Some(id);
    run.deployed = true;
    run
}

/// Integration test: valid probabilities on real and edge-case rows.
fn integration_test(model: &Model, probe: &SampleSet) -> bool {
    let take = probe.len().min(64);
    for i in 0..take {
        let p = model.predict_proba(probe.row(i));
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return false;
        }
    }
    if probe.dim() > 0 {
        let zeros = vec![0.0f32; probe.dim()];
        let big = vec![1e6f32; probe.dim()];
        for row in [&zeros, &big] {
            let p = model.predict_proba(row);
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Stage;
    use mfp_dram::address::DimmId;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Synthetic standard-schema set where eb_complex drives the label.
    fn labelled_set(seed: u64, n: usize, signal: bool) -> SampleSet {
        let mut s = SampleSet::new();
        let idx = s.schema.iter().position(|x| x == "eb_complex").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let mut row: Vec<f32> = (0..s.schema.len()).map(|_| rng.random::<f32>()).collect();
            let y = i % 12 == 0;
            row[idx] = if y && signal { 5.0 } else { 0.0 };
            // a handful of samples per dimm so votes can accumulate
            s.push(
                row,
                y,
                DimmId::new((i / 3) as u32, 0),
                SimTime::from_secs(i as u64 * 60),
            );
        }
        s
    }

    #[test]
    fn good_candidate_deploys() {
        let reg = ModelRegistry::new();
        let train = labelled_set(1, 400, true);
        let bench = labelled_set(2, 200, true);
        let canary = labelled_set(3, 100, true);
        let run = run_pipeline(
            &reg,
            &PipelineConfig::default(),
            Algorithm::LightGbm,
            Platform::K920,
            SimTime::ZERO,
            &train,
            &bench,
            &canary,
        );
        assert!(run.deployed, "{:?}", run.stages);
        assert!(reg.production(Platform::K920).is_some());
        assert_eq!(run.stages.len(), 3);
        assert!(run.stages.iter().all(|s| s.passed));
    }

    #[test]
    fn regression_is_rejected() {
        let reg = ModelRegistry::new();
        // First: deploy a strong model.
        let run1 = run_pipeline(
            &reg,
            &PipelineConfig::default(),
            Algorithm::LightGbm,
            Platform::K920,
            SimTime::ZERO,
            &labelled_set(1, 400, true),
            &labelled_set(2, 200, true),
            &labelled_set(3, 100, true),
        );
        assert!(run1.deployed);
        let production_before = reg.production(Platform::K920).unwrap().id;
        // Then: a candidate trained on signal-free data cannot beat it.
        let run2 = run_pipeline(
            &reg,
            &PipelineConfig::default(),
            Algorithm::RandomForest,
            Platform::K920,
            SimTime::from_secs(100),
            &labelled_set(4, 400, false),
            &labelled_set(5, 200, false),
            &labelled_set(6, 100, false),
        );
        assert!(!run2.deployed);
        assert_eq!(
            reg.production(Platform::K920).unwrap().id,
            production_before
        );
        let bench_stage = run2.stages.iter().find(|s| s.stage == "benchmark").unwrap();
        assert!(!bench_stage.passed);
    }

    #[test]
    fn empty_canary_skips_gate() {
        let reg = ModelRegistry::new();
        let run = run_pipeline(
            &reg,
            &PipelineConfig::default(),
            Algorithm::LightGbm,
            Platform::IntelPurley,
            SimTime::ZERO,
            &labelled_set(1, 400, true),
            &labelled_set(2, 200, true),
            &SampleSet::new(),
        );
        assert!(run.deployed);
        let canary_stage = run.stages.iter().find(|s| s.stage == "canary").unwrap();
        assert!(canary_stage.detail.contains("skipped"));
    }

    #[test]
    fn registry_entry_has_stage_production() {
        let reg = ModelRegistry::new();
        let run = run_pipeline(
            &reg,
            &PipelineConfig::default(),
            Algorithm::RandomForest,
            Platform::IntelWhitley,
            SimTime::ZERO,
            &labelled_set(7, 300, true),
            &labelled_set(8, 150, true),
            &labelled_set(9, 80, true),
        );
        let id = run.model_id.unwrap();
        assert_eq!(reg.get(id).unwrap().stage, Stage::Production);
    }
}
