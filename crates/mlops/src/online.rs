//! Online prediction: streaming events through the feature store and the
//! production model, raising de-duplicated alarms (paper §VII, "online
//! prediction" + "Cloud Service").

use crate::feature_store::FeatureStore;
use crate::lake::DataLake;
use crate::registry::ModelRegistry;
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A raised failure alarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The DIMM predicted to fail.
    pub dimm: DimmId,
    /// When the alarm fired.
    pub time: SimTime,
    /// Model score at firing time.
    pub score: f32,
}

/// Online predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Re-scoring interval Δi_p (the paper uses 5 minutes; coarser values
    /// trade latency for throughput).
    pub prediction_interval: SimDuration,
    /// Consecutive above-threshold scores required before alarming.
    pub votes: usize,
    /// Suppress further alarms for one DIMM after this long.
    pub alarm_cooldown: SimDuration,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            prediction_interval: SimDuration::hours(6),
            votes: 2,
            alarm_cooldown: SimDuration::days(30),
        }
    }
}

/// Streaming predictor over one platform's events.
#[derive(Debug)]
pub struct OnlinePredictor<'a> {
    lake: &'a DataLake,
    store: &'a FeatureStore,
    registry: &'a ModelRegistry,
    platform: Platform,
    cfg: OnlineConfig,
    next_tick: SimTime,
    streaks: BTreeMap<DimmId, u32>,
    last_alarm: BTreeMap<DimmId, SimTime>,
    alarms: Vec<Alarm>,
    scored: u64,
}

impl<'a> OnlinePredictor<'a> {
    /// Creates a predictor bound to the platform's production model.
    pub fn new(
        lake: &'a DataLake,
        store: &'a FeatureStore,
        registry: &'a ModelRegistry,
        platform: Platform,
        cfg: OnlineConfig,
    ) -> Self {
        OnlinePredictor {
            lake,
            store,
            registry,
            platform,
            cfg,
            next_tick: SimTime::ZERO + cfg.prediction_interval,
            streaks: BTreeMap::new(),
            last_alarm: BTreeMap::new(),
            alarms: Vec::new(),
            scored: 0,
        }
    }

    /// Feeds one event (events must arrive in time order); runs any due
    /// prediction ticks first.
    pub fn observe(&mut self, event: &MemEvent) {
        while event.time() >= self.next_tick {
            let tick = self.next_tick;
            self.tick(tick);
            self.next_tick += self.cfg.prediction_interval;
        }
        self.store.stream_ingest(event);
    }

    /// Flushes prediction ticks up to `until` (end of stream).
    pub fn finish(&mut self, until: SimTime) {
        while self.next_tick <= until {
            let tick = self.next_tick;
            self.tick(tick);
            self.next_tick += self.cfg.prediction_interval;
        }
    }

    fn tick(&mut self, now: SimTime) {
        let Some(production) = self.registry.production(self.platform) else {
            return;
        };
        for dimm in self.store.active_dimms(now) {
            let Some(row) = self.store.serve(self.lake, dimm, now) else {
                continue;
            };
            let score = production.model.predict_proba(&row);
            self.scored += 1;
            let streak = self.streaks.entry(dimm).or_insert(0);
            if score >= production.threshold {
                *streak += 1;
            } else {
                *streak = 0;
            }
            if *streak as usize >= self.cfg.votes {
                let cooling = self
                    .last_alarm
                    .get(&dimm)
                    .is_some_and(|&t| now < t + self.cfg.alarm_cooldown);
                if !cooling {
                    self.alarms.push(Alarm {
                        dimm,
                        time: now,
                        score,
                    });
                    self.last_alarm.insert(dimm, now);
                }
            }
        }
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Number of model invocations (monitoring counter).
    pub fn scored(&self) -> u64 {
        self.scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use mfp_dram::spec::DimmSpec;
    use mfp_features::fault_analysis::FaultThresholds;
    use mfp_features::labeling::ProblemConfig;
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::model::{Algorithm, Model};
    use mfp_ml::risky_ce::RiskyCePattern;

    /// A CE carrying the Purley risky signature (accumulates to 2 DQs with
    /// a 4-beat interval within one device).
    fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
        let bits: Vec<(u8, u8)> = if flip {
            vec![(1, 20), (5, 21)]
        } else {
            vec![(1, 20)]
        };
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits(bits),
        })
    }

    fn setup(lake: &DataLake, registry: &ModelRegistry) {
        let id = DimmId::new(1, 0);
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        let entry_model = Model::RiskyCe(RiskyCePattern::default());
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            entry_model,
        );
        registry.promote(mid);
    }

    #[test]
    fn risky_stream_raises_one_alarm() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        // A day of risky CEs every 2 hours.
        for k in 0..36u64 {
            p.observe(&risky_ce(k * 7200, id, true));
        }
        p.finish(SimTime::from_secs(4 * 86_400));
        assert_eq!(
            p.alarms().len(),
            1,
            "votes + cooldown must deduplicate alarms"
        );
        assert!(p.scored() > 0);
        assert_eq!(p.alarms()[0].dimm, id);
    }

    #[test]
    fn benign_stream_stays_silent() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        for k in 0..36u64 {
            p.observe(&risky_ce(k * 7200, id, false));
        }
        p.finish(SimTime::from_secs(4 * 86_400));
        assert!(p.alarms().is_empty());
    }

    #[test]
    fn no_production_model_means_no_alarms() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new(); // nothing promoted
        lake.register_dimm(DimmId::new(1, 0), Platform::IntelPurley, DimmSpec::default());
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        for k in 0..10u64 {
            p.observe(&risky_ce(k * 7200, DimmId::new(1, 0), true));
        }
        p.finish(SimTime::from_secs(86_400));
        assert!(p.alarms().is_empty());
        assert_eq!(p.scored(), 0);
    }
}
