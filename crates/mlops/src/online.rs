//! Online prediction: streaming events through the feature store and the
//! production model, raising de-duplicated alarms (paper §VII, "online
//! prediction" + "Cloud Service").

use crate::feature_store::FeatureStore;
use crate::lake::DataLake;
use crate::registry::ModelRegistry;
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A raised failure alarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The DIMM predicted to fail.
    pub dimm: DimmId,
    /// When the alarm fired.
    pub time: SimTime,
    /// Model score at firing time.
    pub score: f32,
}

/// One model invocation, recorded when score tracing is enabled (see
/// [`OnlinePredictor::set_score_trace`]): the raw material for proving
/// two serving topologies bit-identical, not just alarm-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreRecord {
    /// The prediction tick that produced the score.
    pub time: SimTime,
    /// The scored DIMM.
    pub dimm: DimmId,
    /// Raw model output.
    pub score: f32,
}

/// Online predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Re-scoring interval Δi_p (the paper uses 5 minutes; coarser values
    /// trade latency for throughput).
    pub prediction_interval: SimDuration,
    /// Consecutive above-threshold scores required before alarming.
    pub votes: usize,
    /// Suppress further alarms for one DIMM after this long.
    pub alarm_cooldown: SimDuration,
    /// Degraded-mode grace: when a DIMM's stream goes quiet, keep scoring
    /// it with its last successfully served feature row for this long
    /// before giving up on it. `ZERO` (the default) disables degraded
    /// scoring — quiet DIMMs simply leave the active set.
    pub degraded_grace: SimDuration,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            prediction_interval: SimDuration::hours(6),
            votes: 2,
            alarm_cooldown: SimDuration::days(30),
            degraded_grace: SimDuration::ZERO,
        }
    }
}

/// Telemetry handles for the online path, resolved once per predictor.
#[derive(Debug)]
struct OnlineMetrics {
    ticks: mfp_obs::Counter,
    scores: mfp_obs::Counter,
    alarms: mfp_obs::Counter,
    cooldown_suppressed: mfp_obs::Counter,
    streaks_reset: mfp_obs::Counter,
    entries_pruned: mfp_obs::Counter,
    stale_rejected: mfp_obs::Counter,
    gap_streak_resets: mfp_obs::Counter,
    degraded_scores: mfp_obs::Counter,
    tick_seconds: mfp_obs::Histogram,
}

impl OnlineMetrics {
    fn for_platform(platform: Platform) -> Self {
        let p = platform.to_string();
        let labels: &[(&str, &str)] = &[("platform", p.as_str())];
        OnlineMetrics {
            ticks: mfp_obs::counter("online_ticks", labels),
            scores: mfp_obs::counter("online_scores", labels),
            alarms: mfp_obs::counter("online_alarms", labels),
            cooldown_suppressed: mfp_obs::counter("online_cooldown_suppressed", labels),
            streaks_reset: mfp_obs::counter("online_streaks_reset", labels),
            entries_pruned: mfp_obs::counter("online_entries_pruned", labels),
            stale_rejected: mfp_obs::counter("online_stale_rejected", labels),
            gap_streak_resets: mfp_obs::counter("online_gap_streak_resets", labels),
            degraded_scores: mfp_obs::counter("online_degraded_scores", labels),
            tick_seconds: mfp_obs::latency("online_tick_seconds", labels),
        }
    }
}

/// Streaming predictor over one platform's events.
#[derive(Debug)]
pub struct OnlinePredictor<'a> {
    lake: &'a DataLake,
    store: &'a FeatureStore,
    registry: &'a ModelRegistry,
    pub(crate) platform: Platform,
    pub(crate) cfg: OnlineConfig,
    pub(crate) next_tick: SimTime,
    /// Last executed prediction tick: events stamped before it would land
    /// inside windows already served and are rejected by [`Self::observe`].
    pub(crate) watermark: SimTime,
    pub(crate) streaks: BTreeMap<DimmId, u32>,
    pub(crate) last_alarm: BTreeMap<DimmId, SimTime>,
    pub(crate) alarms: Vec<Alarm>,
    pub(crate) scored: u64,
    pub(crate) stale_rejected: u64,
    /// Last successfully served feature row per DIMM, kept only when
    /// `cfg.degraded_grace > 0` (degraded-mode scoring cache).
    pub(crate) last_good: BTreeMap<DimmId, (SimTime, Vec<f32>)>,
    /// Optional per-invocation score log (diagnostic only, not part of
    /// the checkpointed state); `None` unless tracing was enabled.
    pub(crate) trace: Option<Vec<ScoreRecord>>,
    metrics: OnlineMetrics,
}

impl<'a> OnlinePredictor<'a> {
    /// Creates a predictor bound to the platform's production model.
    pub fn new(
        lake: &'a DataLake,
        store: &'a FeatureStore,
        registry: &'a ModelRegistry,
        platform: Platform,
        cfg: OnlineConfig,
    ) -> Self {
        OnlinePredictor {
            lake,
            store,
            registry,
            platform,
            cfg,
            next_tick: SimTime::ZERO + cfg.prediction_interval,
            watermark: SimTime::ZERO,
            streaks: BTreeMap::new(),
            last_alarm: BTreeMap::new(),
            alarms: Vec::new(),
            scored: 0,
            stale_rejected: 0,
            last_good: BTreeMap::new(),
            trace: None,
            metrics: OnlineMetrics::for_platform(platform),
        }
    }

    /// Turns score tracing on or off. While on, every model invocation is
    /// appended to [`Self::score_trace`] — the evidence used to prove the
    /// sharded serving engine produces bit-identical *scores*, not just
    /// bit-identical alarms. Off by default; the trace grows without bound
    /// while enabled, so leave it off in production loops.
    pub fn set_score_trace(&mut self, on: bool) {
        if on {
            self.trace.get_or_insert_with(Vec::new);
        } else {
            self.trace = None;
        }
    }

    /// The recorded score trace (empty unless tracing is enabled).
    pub fn score_trace(&self) -> &[ScoreRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Feeds one event; runs any due prediction ticks first. Returns
    /// whether the event was accepted: events stamped before the last
    /// executed tick are rejected (and counted) instead of being spliced
    /// into rolling windows that prediction already consumed — feed
    /// hostile streams through `crate::ingest::Ingestor` so stragglers
    /// are re-sequenced or quarantined before they reach this point.
    pub fn observe(&mut self, event: &MemEvent) -> bool {
        if event.time() < self.watermark {
            self.stale_rejected += 1;
            self.metrics.stale_rejected.incr();
            return false;
        }
        while event.time() >= self.next_tick {
            let tick = self.next_tick;
            self.tick(tick);
            self.next_tick += self.cfg.prediction_interval;
        }
        self.store.stream_ingest(event);
        true
    }

    /// Flushes prediction ticks up to `until` (end of stream).
    pub fn finish(&mut self, until: SimTime) {
        while self.next_tick <= until {
            let tick = self.next_tick;
            self.tick(tick);
            self.next_tick += self.cfg.prediction_interval;
        }
    }

    fn tick(&mut self, now: SimTime) {
        // The tick consumes every window ending at `now`; later events
        // stamped before it would silently rewrite served history, so the
        // watermark advances even when no model is in production.
        self.watermark = now;
        let Some(production) = self.registry.production(self.platform) else {
            return;
        };
        let _span = self.metrics.tick_seconds.time();
        self.metrics.ticks.incr();
        // `active_dimms` walks a BTreeMap, so the Vec is already sorted and
        // deduplicated — membership below is a binary search, and the merged
        // walk over (live, degraded) preserves the old set-union order
        // without materializing the union.
        let active = self.store.active_dimms(now);
        // Degraded mode: DIMMs whose stream went quiet keep their last
        // successfully served feature row for `degraded_grace` and stay
        // scoreable — a collector outage must not blind the predictor to
        // a module that was trending towards failure.
        let grace = self.cfg.degraded_grace;
        let mut degraded: Vec<DimmId> = Vec::new();
        if grace > SimDuration::ZERO {
            self.last_good.retain(|_, (t, _)| now <= *t + grace);
            degraded.extend(
                self.last_good
                    .keys()
                    .copied()
                    .filter(|d| active.binary_search(d).is_err()),
            );
        }
        // A DIMM that went quiet since the last tick produced no score, so
        // its votes are no longer consecutive — the streak must restart
        // from zero when (if) it comes back.
        let before = self.streaks.len();
        let last_good = &self.last_good;
        self.streaks
            .retain(|d, _| active.binary_search(d).is_ok() || last_good.contains_key(d));
        self.metrics
            .streaks_reset
            .add((before - self.streaks.len()) as u64);
        // Expired cooldown entries can never suppress again; dropping them
        // keeps the map bounded by the fleet's recently-alarmed set rather
        // than growing for the life of the process.
        let before = self.last_alarm.len();
        self.last_alarm
            .retain(|_, t| now < *t + self.cfg.alarm_cooldown);
        self.metrics
            .entries_pruned
            .add((before - self.last_alarm.len()) as u64);
        // Sorted merge of the live and degraded candidate lists (both
        // sorted, disjoint by construction).
        let mut live_iter = active.iter().peekable();
        let mut degraded_iter = degraded.iter().peekable();
        loop {
            let live = match (live_iter.peek(), degraded_iter.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(d)) => a < d,
            };
            let dimm = if live {
                *live_iter.next().expect("peeked")
            } else {
                *degraded_iter.next().expect("peeked")
            };
            let score = if live {
                let Some(row) = self.store.serve(self.lake, dimm, now) else {
                    continue;
                };
                let score = production.model.predict_proba(&row);
                if grace > SimDuration::ZERO {
                    // Move the served row into the cache — no clone.
                    self.last_good.insert(dimm, (now, row));
                }
                score
            } else {
                // Quiet DIMM inside the grace window: score the cached
                // last-known-good row (borrowed in place) rather than a
                // half-empty window.
                let Some((_, row)) = self.last_good.get(&dimm) else {
                    continue;
                };
                self.metrics.degraded_scores.incr();
                production.model.predict_proba(row)
            };
            self.scored += 1;
            self.metrics.scores.incr();
            if let Some(trace) = &mut self.trace {
                trace.push(ScoreRecord {
                    time: now,
                    dimm,
                    score,
                });
            }
            let streak = self.streaks.entry(dimm).or_insert(0);
            if score >= production.threshold {
                *streak += 1;
            } else {
                *streak = 0;
            }
            if *streak as usize >= self.cfg.votes {
                let cooling = self
                    .last_alarm
                    .get(&dimm)
                    .is_some_and(|&t| now < t + self.cfg.alarm_cooldown);
                if cooling {
                    self.metrics.cooldown_suppressed.incr();
                } else {
                    self.alarms.push(Alarm {
                        dimm,
                        time: now,
                        score,
                    });
                    self.last_alarm.insert(dimm, now);
                    self.metrics.alarms.incr();
                }
            }
        }
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Number of model invocations (monitoring counter).
    pub fn scored(&self) -> u64 {
        self.scored
    }

    /// Events rejected for preceding the last processed tick.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected
    }

    /// The last executed prediction tick; [`Self::observe`] rejects
    /// events stamped before it.
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Records a detected collection hole on `dimm` (reported by
    /// `crate::ingest::Ingestor`): scores on opposite sides of a hole are
    /// not consecutive, so the vote streak restarts — the online analogue
    /// of the gap-aware offline voting in `mfp_ml::metrics`. The degraded
    /// cache is dropped too; a row served before the hole no longer
    /// represents the stream that resumed after it.
    pub fn note_gap(&mut self, dimm: DimmId) {
        if self.streaks.remove(&dimm).is_some() {
            self.metrics.gap_streak_resets.incr();
        }
        self.last_good.remove(&dimm);
    }

    /// Feeds one normalized ingest output — the single entry point the
    /// WAL replays through, so live serving and crash recovery cannot
    /// diverge on how an output maps onto predictor state. Returns
    /// whether it was accepted ([`Self::observe`] semantics; gaps are
    /// always accepted).
    pub fn apply(&mut self, out: &crate::ingest::IngestOutput) -> bool {
        match out {
            crate::ingest::IngestOutput::Released(e) => self.observe(e),
            crate::ingest::IngestOutput::Gap(g) => {
                self.note_gap(g.dimm);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use mfp_dram::spec::DimmSpec;
    use mfp_features::fault_analysis::FaultThresholds;
    use mfp_features::labeling::ProblemConfig;
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::model::{Algorithm, Model};
    use mfp_ml::risky_ce::RiskyCePattern;

    /// A CE carrying the Purley risky signature (accumulates to 2 DQs with
    /// a 4-beat interval within one device).
    fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
        let bits: Vec<(u8, u8)> = if flip {
            vec![(1, 20), (5, 21)]
        } else {
            vec![(1, 20)]
        };
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits(bits),
        })
    }

    fn setup(lake: &DataLake, registry: &ModelRegistry) {
        let id = DimmId::new(1, 0);
        lake.register_dimm(id, Platform::IntelPurley, DimmSpec::default());
        let entry_model = Model::RiskyCe(RiskyCePattern::default());
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            entry_model,
        );
        registry.promote(mid);
    }

    #[test]
    fn risky_stream_raises_one_alarm() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        // A day of risky CEs every 2 hours.
        for k in 0..36u64 {
            p.observe(&risky_ce(k * 7200, id, true));
        }
        p.finish(SimTime::from_secs(4 * 86_400));
        assert_eq!(
            p.alarms().len(),
            1,
            "votes + cooldown must deduplicate alarms"
        );
        assert!(p.scored() > 0);
        assert_eq!(p.alarms()[0].dimm, id);
    }

    #[test]
    fn benign_stream_stays_silent() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        for k in 0..36u64 {
            p.observe(&risky_ce(k * 7200, id, false));
        }
        p.finish(SimTime::from_secs(4 * 86_400));
        assert!(p.alarms().is_empty());
    }

    #[test]
    fn inactivity_resets_vote_streaks() {
        // Regression: a DIMM that dropped out of the active set kept its
        // partial vote streak frozen, so a single above-threshold score
        // after weeks of silence completed the "consecutive" vote and
        // alarmed. Votes separated by inactivity are not consecutive.
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        // A 4-hour observation window (< the 6-hour tick interval) keeps a
        // lone CE's DIMM active for exactly one tick.
        let problem = ProblemConfig {
            observation: SimDuration::hours(4),
            ..ProblemConfig::default()
        };
        let store = FeatureStore::new(problem, FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        // One risky CE, scored by exactly one tick: streak reaches 1 of 2.
        p.observe(&risky_ce(20_000, id, true));
        p.finish(SimTime::from_secs(86_400));
        assert!(p.alarms().is_empty());
        assert!(
            !p.streaks.contains_key(&id),
            "streak must be dropped once the DIMM leaves the active set"
        );
        // Ten days later one more risky CE arrives — again exactly one
        // scoring tick. A single vote after a long gap must not alarm.
        p.observe(&risky_ce(884_000, id, true));
        p.finish(SimTime::from_secs(950_000));
        assert!(
            p.alarms().is_empty(),
            "votes separated by inactivity must not accumulate"
        );
    }

    #[test]
    fn expired_cooldown_entries_are_pruned() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        for k in 0..36u64 {
            p.observe(&risky_ce(k * 7200, id, true));
        }
        p.finish(SimTime::from_secs(4 * 86_400));
        assert_eq!(p.alarms().len(), 1);
        assert!(p.last_alarm.contains_key(&id), "cooldown entry while hot");
        // Ticking far past the cooldown horizon drops the bookkeeping for
        // the long-silent DIMM instead of holding it forever.
        p.finish(SimTime::from_secs(40 * 86_400));
        assert!(p.last_alarm.is_empty(), "expired cooldown must be pruned");
        assert!(p.streaks.is_empty(), "inactive streaks must be pruned");
        assert_eq!(p.alarms().len(), 1, "pruning must not re-alarm");
    }

    #[test]
    fn stale_events_are_rejected_at_the_watermark() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        // Crossing t=86_400 runs ticks up to d1+00:00; the watermark is
        // now the last executed tick.
        assert!(p.observe(&risky_ce(90_000, id, true)));
        assert_eq!(p.watermark(), SimTime::from_secs(86_400));
        // A straggler from before the watermark would splice history into
        // windows prediction already consumed — rejected, counted.
        assert!(!p.observe(&risky_ce(50_000, id, true)));
        assert_eq!(p.stale_rejected(), 1);
        // At or after the watermark is still legal (windows are half-open).
        assert!(p.observe(&risky_ce(86_400, id, true)));
        assert_eq!(p.stale_rejected(), 1);
    }

    #[test]
    fn degraded_mode_scores_quiet_dimms_with_last_good_row() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        // 4-hour observation: a lone CE keeps its DIMM active for exactly
        // one 6-hour tick, then the stream is "quiet".
        let problem = ProblemConfig {
            observation: SimDuration::hours(4),
            ..ProblemConfig::default()
        };
        let id = DimmId::new(1, 0);
        // Baseline: without grace a single risky CE gets one vote and the
        // predictor never alarms.
        let store = FeatureStore::new(problem, FaultThresholds::default());
        let mut base = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        base.observe(&risky_ce(20_000, id, true));
        base.finish(SimTime::from_secs(2 * 86_400));
        assert!(base.alarms().is_empty());
        let base_scored = base.scored();
        // Degraded mode: the cached last-known-good row keeps voting while
        // the stream is quiet, completing the consecutive votes.
        let store = FeatureStore::new(problem, FaultThresholds::default());
        let mut degraded = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig {
                degraded_grace: SimDuration::days(1),
                ..OnlineConfig::default()
            },
        );
        degraded.observe(&risky_ce(20_000, id, true));
        degraded.finish(SimTime::from_secs(2 * 86_400));
        assert!(
            degraded.scored() > base_scored,
            "grace must keep the quiet DIMM scoreable"
        );
        assert_eq!(
            degraded.alarms().len(),
            1,
            "votes must accumulate across the quiet period"
        );
        // The cache expires after the grace window.
        assert!(
            degraded.last_good.is_empty(),
            "expired last-good rows must be pruned"
        );
    }

    #[test]
    fn note_gap_restarts_vote_streaks() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new();
        setup(&lake, &registry);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        let id = DimmId::new(1, 0);
        // Build a one-vote streak (one tick worth of risky CEs).
        for k in 0..4u64 {
            p.observe(&risky_ce(k * 7200, id, true));
        }
        p.finish(SimTime::from_secs(21_601));
        assert_eq!(p.streaks.get(&id), Some(&1));
        // A collection hole was detected: votes across it are not
        // consecutive.
        p.note_gap(id);
        assert!(!p.streaks.contains_key(&id));
    }

    #[test]
    fn no_production_model_means_no_alarms() {
        let lake = DataLake::new();
        let registry = ModelRegistry::new(); // nothing promoted
        lake.register_dimm(
            DimmId::new(1, 0),
            Platform::IntelPurley,
            DimmSpec::default(),
        );
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        for k in 0..10u64 {
            p.observe(&risky_ce(k * 7200, DimmId::new(1, 0), true));
        }
        p.finish(SimTime::from_secs(86_400));
        assert!(p.alarms().is_empty());
        assert_eq!(p.scored(), 0);
    }
}
