//! The model lifecycle orchestrator: the paper's closing promise —
//! "continuous enhancement and maintenance of failure prediction
//! performance" (§VII) — as an executable loop.
//!
//! At every checkpoint the orchestrator materializes fresh training and
//! benchmark windows from the lake, consults the drift report and the
//! retraining policy, and (re)runs the CI/CD pipeline when either demands
//! it. Every decision is recorded, giving the audit trail the paper's
//! monitoring dashboards render.

use crate::cicd::{run_pipeline, PipelineConfig};
use crate::drift::psi_report_excluding;
use crate::feature_store::FeatureStore;
use crate::lake::DataLake;
use crate::monitor::{FeedbackLoop, RetrainPolicy};
use crate::registry::ModelRegistry;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_ml::model::Algorithm;
use serde::{Deserialize, Serialize};

/// Lifecycle configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// How often the orchestrator wakes up.
    pub checkpoint_interval: SimDuration,
    /// Length of the training window ending at each checkpoint.
    pub train_window: SimDuration,
    /// Length of the benchmark window (the tail of the training window is
    /// reserved for it).
    pub benchmark_window: SimDuration,
    /// Negative-downsampling factor for training.
    pub negative_keep: usize,
    /// Retraining triggers.
    pub policy: RetrainPolicy,
    /// Deployment gates.
    pub pipeline: PipelineConfig,
    /// Algorithm to (re)train.
    pub algorithm: Algorithm,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            checkpoint_interval: SimDuration::days(30),
            train_window: SimDuration::days(90),
            benchmark_window: SimDuration::days(30),
            negative_keep: 8,
            policy: RetrainPolicy::default(),
            pipeline: PipelineConfig::default(),
            algorithm: Algorithm::LightGbm,
        }
    }
}

/// What happened at one checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The checkpoint instant.
    pub at: SimTime,
    /// Why retraining ran, or why it was skipped.
    pub decision: String,
    /// Whether a pipeline run was attempted.
    pub retrained: bool,
    /// Whether a new model reached production.
    pub deployed: bool,
    /// Production benchmark F1 after the checkpoint (if any model serves).
    pub production_f1: Option<f64>,
}

/// Runs the lifecycle loop over `[from, until]`.
///
/// The lake must already contain the platform's events (the online
/// ingestion path is orthogonal). Returns one record per checkpoint.
#[allow(clippy::too_many_arguments)] // orchestration wires the whole §VII stack
pub fn run_lifecycle(
    lake: &DataLake,
    store: &FeatureStore,
    registry: &ModelRegistry,
    feedback: &FeedbackLoop,
    platform: Platform,
    cfg: &LifecycleConfig,
    from: SimTime,
    until: SimTime,
) -> Vec<Checkpoint> {
    let mut out = Vec::new();
    let mut t = from;
    while t <= until {
        let train_start = t.saturating_sub(cfg.train_window);
        let bench_start = t.saturating_sub(cfg.benchmark_window);
        let train = store
            .materialize(lake, platform, train_start, bench_start)
            .downsample_negatives(cfg.negative_keep);
        let benchmark = store.materialize(lake, platform, bench_start, t);

        let production = registry.production(platform);
        let (decision, retrain) = if train.positives() == 0 {
            ("no positive training samples in window".to_string(), false)
        } else if production.is_none() {
            ("no production model: initial training".to_string(), true)
        } else if benchmark.is_empty() {
            ("no benchmark data".to_string(), false)
        } else {
            // Drift between the production model's era and the fresh window.
            let reference = store.materialize(lake, platform, train_start, bench_start);
            let drift = psi_report_excluding(
                &reference,
                &benchmark,
                10,
                &mfp_features::extract::CUMULATIVE_FEATURES,
            );
            match cfg.policy.should_retrain(&drift, feedback) {
                Some(reason) => (reason, true),
                None => (format!("healthy (max PSI {:.3})", drift.max_psi()), false),
            }
        };

        let mut deployed = false;
        if retrain {
            let run = run_pipeline(
                registry,
                &cfg.pipeline,
                cfg.algorithm,
                platform,
                t,
                &train,
                &benchmark,
                &benchmark,
            );
            deployed = run.deployed;
        }
        out.push(Checkpoint {
            at: t,
            decision,
            retrained: retrain,
            deployed,
            production_f1: registry.production(platform).map(|e| e.benchmark.f1),
        });
        t += cfg.checkpoint_interval;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_features::fault_analysis::FaultThresholds;
    use mfp_features::labeling::ProblemConfig;
    use mfp_sim::config::FleetConfig;
    use mfp_sim::fleet::simulate_fleet;

    #[test]
    fn lifecycle_bootstraps_and_then_holds() {
        let fleet = simulate_fleet(&FleetConfig::calibrated(100.0, 51));
        let lake = DataLake::new();
        for t in &fleet.dimms {
            lake.register_dimm(t.id, t.platform, t.spec);
        }
        lake.ingest(fleet.log.events());
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let registry = ModelRegistry::new();
        let feedback = FeedbackLoop::new();

        let cfg = LifecycleConfig::default();
        let checkpoints = run_lifecycle(
            &lake,
            &store,
            &registry,
            &feedback,
            Platform::IntelPurley,
            &cfg,
            SimTime::ZERO + SimDuration::days(120),
            SimTime::ZERO + SimDuration::days(240),
        );
        assert_eq!(checkpoints.len(), 5, "30-day cadence over 120 days");
        // First checkpoint bootstraps a model.
        assert!(checkpoints[0].retrained, "{}", checkpoints[0].decision);
        assert!(checkpoints[0].deployed);
        assert!(registry.production(Platform::IntelPurley).is_some());
        // Later checkpoints hold steady on a stationary fleet.
        let later_retrains = checkpoints[1..].iter().filter(|c| c.retrained).count();
        assert!(
            later_retrains <= 1,
            "stationary data should rarely retrain: {checkpoints:#?}"
        );
        // Production F1 is tracked at every checkpoint after bootstrap.
        assert!(checkpoints[1..].iter().all(|c| c.production_f1.is_some()));
    }

    #[test]
    fn empty_lake_never_trains() {
        let lake = DataLake::new();
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let registry = ModelRegistry::new();
        let feedback = FeedbackLoop::new();
        let checkpoints = run_lifecycle(
            &lake,
            &store,
            &registry,
            &feedback,
            Platform::K920,
            &LifecycleConfig::default(),
            SimTime::ZERO + SimDuration::days(100),
            SimTime::ZERO + SimDuration::days(160),
        );
        assert!(checkpoints.iter().all(|c| !c.retrained));
        assert!(registry.production(Platform::K920).is_none());
    }
}
