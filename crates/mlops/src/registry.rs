//! The model registry: versioned, stage-tracked storage of trained models
//! with their benchmark evaluations — the hand-off point between Data
//! Scientists and MLOps Engineers (paper §VII).

use mfp_dram::geometry::Platform;
use mfp_dram::time::SimTime;
use mfp_ml::metrics::Evaluation;
use mfp_ml::model::{Algorithm, Model};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Lifecycle stage of a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Registered, not yet promoted.
    Staging,
    /// Serving online predictions.
    Production,
    /// Superseded or rolled back.
    Archived,
}

/// One registry entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Monotonic id within the registry.
    pub id: u64,
    /// Algorithm family.
    pub algorithm: Algorithm,
    /// Target platform (models are platform-specific).
    pub platform: Platform,
    /// Simulated time the model was trained.
    pub trained_at: SimTime,
    /// Offline benchmark evaluation (DIMM-level, validation data).
    pub benchmark: Evaluation,
    /// Decision threshold shipped with the model.
    pub threshold: f32,
    /// Lifecycle stage.
    pub stage: Stage,
    /// The model itself.
    pub model: Model,
}

/// Thread-safe model registry.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: RwLock<Vec<ModelEntry>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a model in `Staging`; returns its id.
    pub fn register(
        &self,
        algorithm: Algorithm,
        platform: Platform,
        trained_at: SimTime,
        benchmark: Evaluation,
        threshold: f32,
        model: Model,
    ) -> u64 {
        let mut entries = self.entries.write();
        let id = entries.len() as u64 + 1;
        entries.push(ModelEntry {
            id,
            algorithm,
            platform,
            trained_at,
            benchmark,
            threshold,
            stage: Stage::Staging,
            model,
        });
        id
    }

    /// Promotes a model to production, archiving the previous production
    /// model of the same platform.
    ///
    /// Returns false when the id is unknown.
    pub fn promote(&self, id: u64) -> bool {
        let mut entries = self.entries.write();
        let Some(platform) = entries.iter().find(|e| e.id == id).map(|e| e.platform) else {
            return false;
        };
        for e in entries.iter_mut() {
            if e.platform == platform && e.stage == Stage::Production {
                e.stage = Stage::Archived;
            }
        }
        for e in entries.iter_mut() {
            if e.id == id {
                e.stage = Stage::Production;
                return true;
            }
        }
        false
    }

    /// Rolls back: archives the current production model of `platform` and
    /// restores the most recently archived one.
    pub fn rollback(&self, platform: Platform) -> Option<u64> {
        let mut entries = self.entries.write();
        let current = entries
            .iter()
            .position(|e| e.platform == platform && e.stage == Stage::Production)?;
        let previous = entries
            .iter()
            .enumerate()
            .filter(|(i, e)| *i != current && e.platform == platform && e.stage == Stage::Archived)
            .max_by_key(|(_, e)| e.id)
            .map(|(i, _)| i)?;
        entries[current].stage = Stage::Archived;
        entries[previous].stage = Stage::Production;
        Some(entries[previous].id)
    }

    /// The production model of a platform, if any.
    pub fn production(&self, platform: Platform) -> Option<ModelEntry> {
        self.entries
            .read()
            .iter()
            .find(|e| e.platform == platform && e.stage == Stage::Production)
            .cloned()
    }

    /// Entry by id.
    pub fn get(&self, id: u64) -> Option<ModelEntry> {
        self.entries.read().iter().find(|e| e.id == id).cloned()
    }

    /// All entries (snapshot).
    pub fn list(&self) -> Vec<ModelEntry> {
        self.entries.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_ml::metrics::Confusion;
    use mfp_ml::risky_ce::RiskyCePattern;

    fn eval(f1_tp: u32) -> Evaluation {
        Evaluation::from_confusion(
            Confusion {
                tp: f1_tp,
                fp: 2,
                fn_: 2,
                tn: 90,
            },
            0.5,
        )
    }

    fn dummy_model() -> Model {
        Model::RiskyCe(RiskyCePattern::default())
    }

    #[test]
    fn register_and_promote() {
        let reg = ModelRegistry::new();
        let id = reg.register(
            Algorithm::RiskyCePattern,
            Platform::K920,
            SimTime::ZERO,
            eval(5),
            0.5,
            dummy_model(),
        );
        assert!(reg.production(Platform::K920).is_none());
        assert!(reg.promote(id));
        assert_eq!(reg.production(Platform::K920).unwrap().id, id);
        assert!(!reg.promote(999));
    }

    #[test]
    fn promotion_archives_previous() {
        let reg = ModelRegistry::new();
        let a = reg.register(
            Algorithm::RiskyCePattern,
            Platform::K920,
            SimTime::ZERO,
            eval(5),
            0.5,
            dummy_model(),
        );
        let b = reg.register(
            Algorithm::RiskyCePattern,
            Platform::K920,
            SimTime::from_secs(10),
            eval(8),
            0.6,
            dummy_model(),
        );
        reg.promote(a);
        reg.promote(b);
        assert_eq!(reg.production(Platform::K920).unwrap().id, b);
        assert_eq!(reg.get(a).unwrap().stage, Stage::Archived);
    }

    #[test]
    fn rollback_restores_previous() {
        let reg = ModelRegistry::new();
        let a = reg.register(
            Algorithm::RiskyCePattern,
            Platform::K920,
            SimTime::ZERO,
            eval(5),
            0.5,
            dummy_model(),
        );
        let b = reg.register(
            Algorithm::RiskyCePattern,
            Platform::K920,
            SimTime::from_secs(10),
            eval(8),
            0.6,
            dummy_model(),
        );
        reg.promote(a);
        reg.promote(b);
        let restored = reg.rollback(Platform::K920).unwrap();
        assert_eq!(restored, a);
        assert_eq!(reg.production(Platform::K920).unwrap().id, a);
        assert_eq!(reg.get(b).unwrap().stage, Stage::Archived);
    }

    #[test]
    fn platforms_are_independent() {
        let reg = ModelRegistry::new();
        let a = reg.register(
            Algorithm::RiskyCePattern,
            Platform::K920,
            SimTime::ZERO,
            eval(5),
            0.5,
            dummy_model(),
        );
        let b = reg.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval(5),
            0.5,
            dummy_model(),
        );
        reg.promote(a);
        reg.promote(b);
        assert_eq!(reg.production(Platform::K920).unwrap().id, a);
        assert_eq!(reg.production(Platform::IntelPurley).unwrap().id, b);
    }
}
