//! Process-isolated shard serving: OS-process workers, a crc32-framed
//! IPC scoring plane, and a supervisor that survives `SIGKILL`.
//!
//! [`crate::supervise`] made shards restartable, but every unit still
//! lives in the supervisor's address space — a real segfault, OOM kill
//! or runaway loop takes the whole engine down. This module moves each
//! [`crate::wal::DurableShard`] into its own **OS process**: a worker is
//! a re-exec of the current binary in a hidden `--shard-worker` mode,
//! speaking length-prefixed `MFP1` frames over its stdin/stdout pipes.
//! Ingest batches flow down; progress heartbeats, crash notices and the
//! final alarm/score report flow up.
//!
//! # Protocol
//!
//! A stream opens with a 5-byte header (`MFP1` magic + version), then
//! carries frames laid out exactly like `MFW1` WAL records:
//!
//! ```text
//! kind: u8 | seq: u64 BE | len: u32 BE | payload | crc32 BE
//! ```
//!
//! The crc covers everything before it. [`scan_frames`] is a prefix
//! decoder with the same torn-tail semantics as [`crate::wal::scan`],
//! and [`FrameReader`] incrementalizes it over a byte stream, skipping
//! any pre-header garbage (a test-harness banner, say) before locking
//! onto the magic. `Outputs` payloads *are* WAL record bytes — the
//! worker's log and the wire share one codec.
//!
//! # Supervision
//!
//! [`ProcSupervisor`] generalizes [`crate::supervise::Supervisor`] to
//! process lifecycles: logical-time heartbeats (one tick per canonical
//! output; a worker that misses an ack deadline or is injected with a
//! hang gets `SIGKILL`ed after [`ProcConfig::heartbeat_timeout`] ticks),
//! exit-status and death-signal capture, bounded deterministic backoff,
//! and poison quarantine keyed by per-shard sequence. Acked frames are
//! durable — the worker flushes its WAL before answering `Progress` —
//! so a `SIGKILL`ed worker replays only its own `MFW2` log and resumes
//! bit-identically; the supervisor re-feeds the unacked suffix from its
//! routed backlog. A shard past its restart budget degrades instead of
//! wedging the merge: its DIMMs report
//! [`crate::serve::ServeError::ShardUnavailable`] via
//! [`ProcOutcome::dimm_status`].

use crate::feature_store::FeatureStore;
use crate::ingest::IngestOutput;
use crate::lake::DataLake;
use crate::online::{Alarm, OnlineConfig, ScoreRecord};
use crate::registry::ModelRegistry;
use crate::serve::{shard_of, shard_route, ServeError};
use crate::supervise::{
    bounded_backoff, poison_guard, silence_chaos_panics, tear_wal_tail, ChaosKind, ChaosPlan,
};
use crate::wal::{
    batch_outputs, check_meta, crc32, decode_record, encode_record, quarantine_output, shard_dir,
    DurableConfig, DurableShard, FlushStatus, WalError, WalPayload, WalRecord, RECORD_HEADER_LEN,
};
use mfp_dram::address::DimmId;
use mfp_dram::geometry::{DataWidth, DeviceGeometry, Platform};
use mfp_dram::spec::{DieProcess, DimmSpec, Frequency, Manufacturer};
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::{RiskyCeParams, RiskyCePattern};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Magic opening every IPC stream.
pub const IPC_MAGIC: [u8; 4] = *b"MFP1";

/// Protocol version carried in the stream header.
pub const IPC_VERSION: u8 = 1;

/// Environment variable that switches a re-exec'd binary into worker
/// mode (set by [`WorkerCommand::spawn`], checked by `src/main.rs` and
/// the test-harness entry).
pub const WORKER_ENV: &str = "MFP_SHARD_WORKER";

/// Stream-header length: magic + version.
const STREAM_HEADER_LEN: usize = IPC_MAGIC.len() + 1;

/// Upper bound on a frame payload; a length field above this is treated
/// as corruption rather than an allocation request.
const MAX_FRAME_PAYLOAD: usize = 1 << 28;

// Frame kinds, router → worker.
const K_INIT: u8 = 1;
const K_OUTPUTS: u8 = 2;
const K_POISON: u8 = 3;
const K_HANG: u8 = 4;
const K_FINISH: u8 = 5;
const K_EXIT: u8 = 6;
// Frame kinds, worker → router.
const K_HELLO: u8 = 17;
const K_PROGRESS: u8 = 18;
const K_CRASHED: u8 = 19;
const K_REPORT: u8 = 20;

/// Everything that can go wrong on the process-serving plane.
#[derive(Debug)]
pub enum ProcError {
    /// A real I/O failure on a pipe, the WAL root, or process spawn.
    Io(std::io::Error),
    /// A WAL-layer failure surfaced through a worker or quarantine.
    Wal(WalError),
    /// The stream never presented the `MFP1` magic.
    BadHeader,
    /// A frame failed its crc or carried an insane length.
    CorruptFrame,
    /// A structurally valid frame that violates the protocol (unknown
    /// kind, short payload, unexpected message for the state).
    Protocol(&'static str),
    /// A [`WorkerSpec`] field failed to decode.
    Spec(&'static str),
    /// The spec named a model kind this build cannot reconstruct.
    UnsupportedModel(u8),
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "ipc i/o error: {e}"),
            ProcError::Wal(e) => write!(f, "wal error: {e}"),
            ProcError::BadHeader => write!(f, "ipc stream does not start with the MFP1 header"),
            ProcError::CorruptFrame => write!(f, "ipc frame failed crc or length validation"),
            ProcError::Protocol(what) => write!(f, "ipc protocol violation: {what}"),
            ProcError::Spec(what) => write!(f, "malformed worker spec: {what}"),
            ProcError::UnsupportedModel(k) => write!(f, "unsupported model kind {k} in spec"),
        }
    }
}

impl std::error::Error for ProcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcError::Io(e) => Some(e),
            ProcError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProcError {
    fn from(e: std::io::Error) -> Self {
        ProcError::Io(e)
    }
}

impl From<WalError> for ProcError {
    fn from(e: WalError) -> Self {
        ProcError::Wal(e)
    }
}

/// The 5-byte stream opener every side writes before its first frame.
pub fn stream_header() -> [u8; STREAM_HEADER_LEN] {
    let mut h = [0u8; STREAM_HEADER_LEN];
    h[..4].copy_from_slice(&IPC_MAGIC);
    h[4] = IPC_VERSION;
    h
}

/// One decoded `MFP1` frame, kind-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Message kind (`K_*`).
    pub kind: u8,
    /// Sequence/primary field; meaning depends on the kind.
    pub seq: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes one frame: the `MFW1` record layout with an arbitrary kind.
pub fn encode_frame(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() + 4);
    buf.push(kind);
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_be_bytes());
    buf
}

/// Decodes one frame from exactly `data`: `None` on any length or crc
/// mismatch.
pub(crate) fn decode_frame(data: &[u8]) -> Option<RawFrame> {
    if data.len() < RECORD_HEADER_LEN + 4 {
        return None;
    }
    let plen = u32::from_be_bytes(data[9..13].try_into().ok()?) as usize;
    if plen > MAX_FRAME_PAYLOAD {
        return None;
    }
    let total = RECORD_HEADER_LEN.checked_add(plen)?.checked_add(4)?;
    if data.len() != total {
        return None;
    }
    let body = &data[..RECORD_HEADER_LEN + plen];
    let stored = u32::from_be_bytes(data[total - 4..].try_into().ok()?);
    if crc32(body) != stored {
        return None;
    }
    Some(RawFrame {
        kind: data[0],
        seq: u64::from_be_bytes(data[1..9].try_into().ok()?),
        payload: data[RECORD_HEADER_LEN..RECORD_HEADER_LEN + plen].to_vec(),
    })
}

/// What a [`scan_frames`] pass found in a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Frames decoded from the longest valid prefix.
    pub frames: Vec<RawFrame>,
    /// Bytes covered by the header plus every decoded frame.
    pub valid_bytes: u64,
    /// Trailing bytes past the valid prefix (torn or corrupt).
    pub torn_bytes: u64,
}

/// Prefix-decodes a complete buffered stream, mirroring
/// [`crate::wal::scan`]: a valid prefix of the header is a torn-empty
/// stream, any other opening is [`ProcError::BadHeader`], and the first
/// undecodable frame ends the valid prefix — everything after it counts
/// as torn, never as a misparsed frame.
pub fn scan_frames(data: &[u8]) -> Result<FrameScan, ProcError> {
    let header = stream_header();
    if data.len() < STREAM_HEADER_LEN {
        if data == &header[..data.len()] {
            return Ok(FrameScan {
                frames: Vec::new(),
                valid_bytes: 0,
                torn_bytes: data.len() as u64,
            });
        }
        return Err(ProcError::BadHeader);
    }
    if data[..STREAM_HEADER_LEN] != header {
        return Err(ProcError::BadHeader);
    }
    let mut frames = Vec::new();
    let mut pos = STREAM_HEADER_LEN;
    loop {
        let rest = &data[pos..];
        if rest.len() < RECORD_HEADER_LEN + 4 {
            break;
        }
        let plen = u32::from_be_bytes(rest[9..13].try_into().expect("4 bytes")) as usize;
        if plen > MAX_FRAME_PAYLOAD {
            break;
        }
        let total = RECORD_HEADER_LEN + plen + 4;
        if rest.len() < total {
            break;
        }
        match decode_frame(&rest[..total]) {
            Some(f) => {
                frames.push(f);
                pos += total;
            }
            None => break,
        }
    }
    Ok(FrameScan {
        frames,
        valid_bytes: pos as u64,
        torn_bytes: (data.len() - pos) as u64,
    })
}

/// One step of incremental frame decoding.
#[derive(Debug)]
pub enum FrameStep {
    /// A complete, crc-valid frame.
    Frame(RawFrame),
    /// The buffer holds at most a frame prefix; feed more bytes.
    NeedMore,
    /// The stream is unrecoverable: a complete frame failed its crc or
    /// declared an insane length. The peer must be restarted.
    Corrupt,
}

/// Incremental `MFP1` decoder over a byte stream. Before locking onto
/// the stream header it discards leading garbage (pipes inherited from
/// a test harness may carry a banner before the worker writes its
/// header); after lock-on, framing errors are terminal.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    locked: bool,
}

impl FrameReader {
    /// An empty reader, not yet locked onto a header.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes read off the pipe.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Tries to produce the next frame from buffered bytes.
    pub fn next(&mut self) -> FrameStep {
        if !self.locked {
            let header = stream_header();
            match self
                .buf
                .windows(STREAM_HEADER_LEN)
                .position(|w| w == header)
            {
                Some(i) => {
                    self.buf.drain(..i + STREAM_HEADER_LEN);
                    self.locked = true;
                }
                None => {
                    // Keep a possible partial header at the tail.
                    let keep = self.buf.len().min(STREAM_HEADER_LEN - 1);
                    self.buf.drain(..self.buf.len() - keep);
                    return FrameStep::NeedMore;
                }
            }
        }
        if self.buf.len() < RECORD_HEADER_LEN + 4 {
            return FrameStep::NeedMore;
        }
        let plen = u32::from_be_bytes(self.buf[9..13].try_into().expect("4 bytes")) as usize;
        if plen > MAX_FRAME_PAYLOAD {
            return FrameStep::Corrupt;
        }
        let total = RECORD_HEADER_LEN + plen + 4;
        if self.buf.len() < total {
            return FrameStep::NeedMore;
        }
        match decode_frame(&self.buf[..total]) {
            Some(f) => {
                self.buf.drain(..total);
                FrameStep::Frame(f)
            }
            None => FrameStep::Corrupt,
        }
    }
}

/// A bounds-checked big-endian read cursor over a frame payload.
struct Cur<'b> {
    data: &'b [u8],
}

impl<'b> Cur<'b> {
    fn new(data: &'b [u8]) -> Self {
        Cur { data }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], ProcError> {
        if self.data.len() < n {
            return Err(ProcError::Protocol("payload shorter than declared"));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProcError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProcError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ProcError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProcError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, ProcError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn done(&self) -> Result<(), ProcError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(ProcError::Protocol("trailing bytes after payload"))
        }
    }
}

/// The model a worker must reconstruct before serving. Only the
/// dependency-free rule model crosses the wire today — tree ensembles
/// would ship as registry references, not inline weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// The paper's risky-CE pattern rule with its decision threshold.
    RiskyCe {
        /// Rule parameters.
        params: RiskyCeParams,
        /// Promotion/decision threshold.
        threshold: f32,
    },
}

impl ModelSpec {
    /// The default rule model at threshold 0.5.
    pub fn default_risky_ce() -> Self {
        ModelSpec::RiskyCe {
            params: RiskyCeParams::default(),
            threshold: 0.5,
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            ModelSpec::RiskyCe { params, threshold } => {
                buf.push(1);
                buf.extend_from_slice(&params.min_complex.to_bits().to_be_bytes());
                buf.push(params.require_interval4 as u8);
                buf.extend_from_slice(&params.min_rows.to_bits().to_be_bytes());
                buf.extend_from_slice(&threshold.to_bits().to_be_bytes());
            }
        }
    }

    fn decode_from(cur: &mut Cur<'_>) -> Result<Self, ProcError> {
        match cur.u8()? {
            1 => Ok(ModelSpec::RiskyCe {
                params: RiskyCeParams {
                    min_complex: cur.f32()?,
                    require_interval4: cur.u8()? != 0,
                    min_rows: cur.f32()?,
                },
                threshold: cur.f32()?,
            }),
            k => Err(ProcError::UnsupportedModel(k)),
        }
    }
}

fn enum_idx<T: PartialEq + Copy>(all: &[T], v: T, what: &'static str) -> Result<u8, ProcError> {
    all.iter()
        .position(|x| *x == v)
        .map(|i| i as u8)
        .ok_or(ProcError::Spec(what))
}

fn enum_at<T: Copy>(all: &[T], i: u8, what: &'static str) -> Result<T, ProcError> {
    all.get(i as usize).copied().ok_or(ProcError::Spec(what))
}

/// Everything a worker needs to rebuild its serving world from scratch:
/// shard identity and WAL root, platform, engine and durability knobs,
/// feature-problem geometry, the inline model, the DIMM catalog, and
/// the currently armed poison table.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSpec {
    /// This worker's shard index.
    pub shard: usize,
    /// The shard's WAL/checkpoint directory.
    pub dir: PathBuf,
    /// Platform whose promoted model serves.
    pub platform: Platform,
    /// Online-engine knobs.
    pub online: OnlineConfig,
    /// Durability knobs.
    pub durable: DurableConfig,
    /// Labeling/problem windows for the feature store.
    pub problem: ProblemConfig,
    /// Fault-analysis thresholds for the feature store.
    pub thresholds: FaultThresholds,
    /// The model to register and promote.
    pub model: ModelSpec,
    /// Full DIMM catalog (the routing hash picks this shard's subset).
    pub catalog: Vec<(DimmId, DimmSpec)>,
    /// Armed poison: `(per-shard seq, remaining fails)`, `u32::MAX`
    /// meaning permanent.
    pub poison: Vec<(u64, u32)>,
}

impl WorkerSpec {
    fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), ProcError> {
        buf.extend_from_slice(&(self.shard as u32).to_be_bytes());
        let dir = self
            .dir
            .to_str()
            .ok_or(ProcError::Spec("non-utf8 shard dir"))?;
        buf.extend_from_slice(&(dir.len() as u16).to_be_bytes());
        buf.extend_from_slice(dir.as_bytes());
        buf.push(enum_idx(&Platform::ALL, self.platform, "platform")?);
        for secs in [
            self.online.prediction_interval.as_secs(),
            self.online.votes as u64,
            self.online.alarm_cooldown.as_secs(),
            self.online.degraded_grace.as_secs(),
        ] {
            buf.extend_from_slice(&secs.to_be_bytes());
        }
        buf.extend_from_slice(&(self.durable.batch as u64).to_be_bytes());
        buf.extend_from_slice(&self.durable.compact_every.to_be_bytes());
        buf.push(self.durable.fsync as u8);
        buf.push(self.durable.record_scores as u8);
        for secs in [
            self.problem.observation.as_secs(),
            self.problem.lead.as_secs(),
            self.problem.prediction.as_secs(),
            self.problem.sample_interval.as_secs(),
        ] {
            buf.extend_from_slice(&secs.to_be_bytes());
        }
        for t in [
            self.thresholds.cell_repeats,
            self.thresholds.row_distinct_cols,
            self.thresholds.col_distinct_rows,
            self.thresholds.bank_distinct,
        ] {
            buf.extend_from_slice(&t.to_be_bytes());
        }
        self.model.encode_into(buf);
        buf.extend_from_slice(&(self.catalog.len() as u32).to_be_bytes());
        for (id, spec) in &self.catalog {
            buf.extend_from_slice(&id.server.0.to_be_bytes());
            buf.push(id.slot);
            buf.push(enum_idx(&Manufacturer::ALL, spec.manufacturer, "manufacturer")?);
            buf.push(match spec.width {
                DataWidth::X4 => 0,
                DataWidth::X8 => 1,
            });
            buf.push(enum_idx(&Frequency::ALL, spec.frequency, "frequency")?);
            buf.push(enum_idx(&DieProcess::ALL, spec.process, "die process")?);
            buf.extend_from_slice(&spec.capacity_gib.to_be_bytes());
            buf.push(spec.ranks);
            buf.push(spec.geometry.bank_groups);
            buf.push(spec.geometry.banks_per_group);
            buf.push(spec.geometry.row_bits);
            buf.push(spec.geometry.col_bits);
        }
        buf.extend_from_slice(&(self.poison.len() as u32).to_be_bytes());
        for &(seq, fails) in &self.poison {
            buf.extend_from_slice(&seq.to_be_bytes());
            buf.extend_from_slice(&fails.to_be_bytes());
        }
        Ok(())
    }

    fn decode_from(cur: &mut Cur<'_>) -> Result<Self, ProcError> {
        let shard = cur.u32()? as usize;
        let dlen = cur.u16()? as usize;
        let dir = std::str::from_utf8(cur.take(dlen)?)
            .map_err(|_| ProcError::Spec("non-utf8 shard dir"))?;
        let platform = enum_at(&Platform::ALL, cur.u8()?, "platform")?;
        let online = OnlineConfig {
            prediction_interval: SimDuration::secs(cur.u64()?),
            votes: cur.u64()? as usize,
            alarm_cooldown: SimDuration::secs(cur.u64()?),
            degraded_grace: SimDuration::secs(cur.u64()?),
        };
        let durable = DurableConfig {
            batch: cur.u64()? as usize,
            compact_every: cur.u64()?,
            fsync: cur.u8()? != 0,
            record_scores: cur.u8()? != 0,
        };
        let problem = ProblemConfig {
            observation: SimDuration::secs(cur.u64()?),
            lead: SimDuration::secs(cur.u64()?),
            prediction: SimDuration::secs(cur.u64()?),
            sample_interval: SimDuration::secs(cur.u64()?),
        };
        let thresholds = FaultThresholds {
            cell_repeats: cur.u32()?,
            row_distinct_cols: cur.u32()?,
            col_distinct_rows: cur.u32()?,
            bank_distinct: cur.u32()?,
        };
        let model = ModelSpec::decode_from(cur)?;
        let n_dimms = cur.u32()? as usize;
        let mut catalog = Vec::with_capacity(n_dimms.min(1 << 20));
        for _ in 0..n_dimms {
            let server = cur.u32()?;
            let slot = cur.u8()?;
            let manufacturer = enum_at(&Manufacturer::ALL, cur.u8()?, "manufacturer")?;
            let width = match cur.u8()? {
                0 => DataWidth::X4,
                1 => DataWidth::X8,
                _ => return Err(ProcError::Spec("data width")),
            };
            let frequency = enum_at(&Frequency::ALL, cur.u8()?, "frequency")?;
            let process = enum_at(&DieProcess::ALL, cur.u8()?, "die process")?;
            let capacity_gib = cur.u16()?;
            let ranks = cur.u8()?;
            let geometry = DeviceGeometry {
                bank_groups: cur.u8()?,
                banks_per_group: cur.u8()?,
                row_bits: cur.u8()?,
                col_bits: cur.u8()?,
            };
            catalog.push((
                DimmId::new(server, slot),
                DimmSpec {
                    manufacturer,
                    width,
                    frequency,
                    process,
                    capacity_gib,
                    ranks,
                    geometry,
                },
            ));
        }
        let n_poison = cur.u32()? as usize;
        let mut poison = Vec::with_capacity(n_poison.min(1 << 20));
        for _ in 0..n_poison {
            poison.push((cur.u64()?, cur.u32()?));
        }
        Ok(WorkerSpec {
            shard,
            dir: PathBuf::from(dir),
            platform,
            online,
            durable,
            problem,
            thresholds,
            model,
            catalog,
            poison,
        })
    }
}

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Router → worker: rebuild the world and recover the shard.
    Init(WorkerSpec),
    /// Router → worker: a batch of routed outputs as WAL record bytes;
    /// the worker must flush before acking.
    Outputs {
        /// Records covering a contiguous per-shard sequence range.
        records: Vec<WalRecord>,
    },
    /// Router → worker: (re)arm the poison table at one sequence.
    Poison {
        /// Per-shard sequence the poison binds to.
        seq: u64,
        /// Remaining fails (`u32::MAX` = permanent).
        fails: u32,
    },
    /// Router → worker: chaos injection — stop making progress.
    Hang,
    /// Router → worker: run the final prediction ticks up to `until`
    /// and answer with a [`Msg::Report`].
    Finish {
        /// End of simulated time.
        until: SimTime,
    },
    /// Router → worker: exit cleanly.
    Exit,
    /// Worker → router: recovery done; resume feeding from `fed`.
    Hello {
        /// Outputs already durable+pending after recovery.
        fed: u64,
        /// Outputs re-applied from the WAL during recovery.
        replayed: u64,
        /// Quarantined sequences loaded from the side log.
        quarantined: u64,
    },
    /// Worker → router: batch acked, WAL flushed (the heartbeat).
    Progress {
        /// Outputs consumed (applied or skipped).
        consumed: u64,
        /// Outputs durable in the WAL.
        durable: u64,
    },
    /// Worker → router: the apply at `seq` crashed; the worker exits
    /// after sending this.
    Crashed {
        /// Per-shard sequence of the crashing output.
        seq: u64,
    },
    /// Worker → router: final merged output of this shard.
    Report {
        /// Alarms raised by this shard.
        alarms: Vec<Alarm>,
        /// Score trace (empty unless score recording is on).
        scores: Vec<ScoreRecord>,
        /// Model invocations.
        scored: u64,
    },
}

impl Msg {
    /// Encodes the message as one complete frame.
    pub fn encode(&self) -> Result<Vec<u8>, ProcError> {
        let (kind, seq, payload) = match self {
            Msg::Init(spec) => {
                let mut p = Vec::new();
                spec.encode_into(&mut p)?;
                (K_INIT, spec.shard as u64, p)
            }
            Msg::Outputs { records } => {
                let mut p = Vec::new();
                for r in records {
                    p.extend_from_slice(&encode_record(r));
                }
                (K_OUTPUTS, records.first().map_or(0, |r| r.seq), p)
            }
            Msg::Poison { seq, fails } => (K_POISON, *seq, fails.to_be_bytes().to_vec()),
            Msg::Hang => (K_HANG, 0, Vec::new()),
            Msg::Finish { until } => (K_FINISH, 0, until.as_secs().to_be_bytes().to_vec()),
            Msg::Exit => (K_EXIT, 0, Vec::new()),
            Msg::Hello {
                fed,
                replayed,
                quarantined,
            } => {
                let mut p = Vec::with_capacity(16);
                p.extend_from_slice(&replayed.to_be_bytes());
                p.extend_from_slice(&quarantined.to_be_bytes());
                (K_HELLO, *fed, p)
            }
            Msg::Progress { consumed, durable } => {
                (K_PROGRESS, *consumed, durable.to_be_bytes().to_vec())
            }
            Msg::Crashed { seq } => (K_CRASHED, *seq, Vec::new()),
            Msg::Report {
                alarms,
                scores,
                scored,
            } => {
                let mut p = Vec::with_capacity(8 + alarms.len() * 17 + scores.len() * 17);
                p.extend_from_slice(&(alarms.len() as u32).to_be_bytes());
                for a in alarms {
                    p.extend_from_slice(&a.dimm.server.0.to_be_bytes());
                    p.push(a.dimm.slot);
                    p.extend_from_slice(&a.time.as_secs().to_be_bytes());
                    p.extend_from_slice(&a.score.to_bits().to_be_bytes());
                }
                p.extend_from_slice(&(scores.len() as u32).to_be_bytes());
                for r in scores {
                    p.extend_from_slice(&r.time.as_secs().to_be_bytes());
                    p.extend_from_slice(&r.dimm.server.0.to_be_bytes());
                    p.push(r.dimm.slot);
                    p.extend_from_slice(&r.score.to_bits().to_be_bytes());
                }
                (K_REPORT, *scored, p)
            }
        };
        Ok(encode_frame(kind, seq, &payload))
    }

    /// Parses one decoded frame into a message.
    pub fn parse(frame: &RawFrame) -> Result<Msg, ProcError> {
        let mut cur = Cur::new(&frame.payload);
        let msg = match frame.kind {
            K_INIT => Msg::Init(WorkerSpec::decode_from(&mut cur)?),
            K_OUTPUTS => {
                let mut records = Vec::new();
                let mut rest: &[u8] = &frame.payload;
                while !rest.is_empty() {
                    if rest.len() < RECORD_HEADER_LEN + 4 {
                        return Err(ProcError::Protocol("truncated wal record in outputs"));
                    }
                    let plen =
                        u32::from_be_bytes(rest[9..13].try_into().expect("4 bytes")) as usize;
                    let total = RECORD_HEADER_LEN
                        .checked_add(plen)
                        .and_then(|t| t.checked_add(4))
                        .ok_or(ProcError::Protocol("wal record length overflow"))?;
                    if rest.len() < total {
                        return Err(ProcError::Protocol("truncated wal record in outputs"));
                    }
                    let rec = decode_record(&rest[..total])
                        .ok_or(ProcError::Protocol("undecodable wal record in outputs"))?;
                    records.push(rec);
                    rest = &rest[total..];
                }
                return Ok(Msg::Outputs { records });
            }
            K_POISON => Msg::Poison {
                seq: frame.seq,
                fails: cur.u32()?,
            },
            K_HANG => Msg::Hang,
            K_FINISH => Msg::Finish {
                until: SimTime::from_secs(cur.u64()?),
            },
            K_EXIT => Msg::Exit,
            K_HELLO => Msg::Hello {
                fed: frame.seq,
                replayed: cur.u64()?,
                quarantined: cur.u64()?,
            },
            K_PROGRESS => Msg::Progress {
                consumed: frame.seq,
                durable: cur.u64()?,
            },
            K_CRASHED => Msg::Crashed { seq: frame.seq },
            K_REPORT => {
                let n_alarms = cur.u32()? as usize;
                let mut alarms = Vec::with_capacity(n_alarms.min(1 << 20));
                for _ in 0..n_alarms {
                    let server = cur.u32()?;
                    let slot = cur.u8()?;
                    alarms.push(Alarm {
                        dimm: DimmId::new(server, slot),
                        time: SimTime::from_secs(cur.u64()?),
                        score: cur.f32()?,
                    });
                }
                let n_scores = cur.u32()? as usize;
                let mut scores = Vec::with_capacity(n_scores.min(1 << 20));
                for _ in 0..n_scores {
                    let time = SimTime::from_secs(cur.u64()?);
                    let server = cur.u32()?;
                    let slot = cur.u8()?;
                    scores.push(ScoreRecord {
                        time,
                        dimm: DimmId::new(server, slot),
                        score: cur.f32()?,
                    });
                }
                Msg::Report {
                    alarms,
                    scores,
                    scored: frame.seq,
                }
            }
            _ => return Err(ProcError::Protocol("unknown frame kind")),
        };
        cur.done()?;
        Ok(msg)
    }
}

/// Expands one WAL record into `(per-shard seq, output)` pairs, exactly
/// as WAL replay does.
fn expand_record(rec: &WalRecord) -> Vec<(u64, IngestOutput)> {
    match &rec.payload {
        WalPayload::Events(events) => events
            .iter()
            .enumerate()
            .map(|(i, e)| (rec.seq + i as u64, IngestOutput::Released(*e)))
            .collect(),
        WalPayload::Gap(g) => vec![(rec.seq, IngestOutput::Gap(*g))],
    }
}

/// Reads frames off `input` until one full message (or EOF) arrives.
/// EOF mid-frame is reported as end-of-stream: the router is gone and
/// the worker's only move is a clean exit.
fn read_msg(reader: &mut FrameReader, input: &mut impl Read) -> Result<Option<Msg>, ProcError> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match reader.next() {
            FrameStep::Frame(f) => return Msg::parse(&f).map(Some),
            FrameStep::Corrupt => return Err(ProcError::CorruptFrame),
            FrameStep::NeedMore => {
                let n = input.read(&mut chunk)?;
                if n == 0 {
                    return Ok(None);
                }
                reader.push(&chunk[..n]);
            }
        }
    }
}

/// Writes one message as a frame and flushes the pipe.
fn write_msg(w: &mut impl Write, msg: &Msg) -> Result<(), ProcError> {
    w.write_all(&msg.encode()?)?;
    w.flush()?;
    Ok(())
}

/// Entry point of `--shard-worker` mode: runs the worker protocol over
/// stdin/stdout and returns the process exit code. Exit code 0 covers
/// both clean shutdown and a reported crash (the supervisor learned the
/// sequence from the `Crashed` frame); code 3 is a real failure.
pub fn shard_worker_main() -> i32 {
    silence_chaos_panics();
    match worker_run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shard worker failed: {e}");
            3
        }
    }
}

fn worker_run() -> Result<i32, ProcError> {
    let mut input = std::io::stdin().lock();
    // Direct handle, not the `print!` capture shim: under a test
    // harness the frames must reach the real pipe.
    let mut output = std::io::stdout().lock();
    output.write_all(&stream_header())?;
    output.flush()?;
    let mut reader = FrameReader::new();

    let spec = match read_msg(&mut reader, &mut input)? {
        None => return Ok(0),
        Some(Msg::Init(spec)) => spec,
        Some(_) => return Err(ProcError::Protocol("expected Init as the first frame")),
    };

    // Rebuild the serving world from the spec. Workers are ephemeral:
    // everything long-lived is on disk under `spec.dir`.
    let lake = DataLake::new();
    for (id, dimm_spec) in &spec.catalog {
        lake.register_dimm(*id, spec.platform, *dimm_spec);
    }
    let store = FeatureStore::new(spec.problem, spec.thresholds);
    let registry = ModelRegistry::new();
    let ModelSpec::RiskyCe { params, threshold } = spec.model;
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        threshold,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        spec.platform,
        SimTime::ZERO,
        eval,
        threshold,
        Model::RiskyCe(RiskyCePattern::new(params)),
    );
    registry.promote(mid);
    let mut poison: BTreeMap<u64, u32> = spec.poison.iter().copied().collect();

    let (mut unit, recovery) = {
        let mut guard = poison_guard(&mut poison);
        DurableShard::open(
            &spec.dir,
            &lake,
            &store,
            &registry,
            spec.platform,
            spec.online,
            spec.durable,
            spec.shard,
            &mut guard,
        )?
    };
    if let Some(seq) = recovery.replay_crashed {
        write_msg(&mut output, &Msg::Crashed { seq })?;
        return Ok(0);
    }
    write_msg(
        &mut output,
        &Msg::Hello {
            fed: unit.fed(),
            replayed: recovery.outputs_replayed,
            quarantined: unit.quarantined().len() as u64,
        },
    )?;

    loop {
        let msg = match read_msg(&mut reader, &mut input)? {
            Some(m) => m,
            None => return Ok(0),
        };
        match msg {
            Msg::Outputs { records } => {
                let mut crashed = None;
                {
                    let mut guard = poison_guard(&mut poison);
                    'records: for rec in &records {
                        for (seq, out) in expand_record(rec) {
                            // A re-fed prefix after recovery is already
                            // covered; skip what the WAL holds.
                            if seq < unit.fed() {
                                continue;
                            }
                            if let FlushStatus::Crashed { seq } = unit.push(out, &mut guard)? {
                                crashed = Some(seq);
                                break 'records;
                            }
                        }
                    }
                    if crashed.is_none() {
                        // Ack ⇒ durable: everything in this frame hits
                        // the WAL before Progress goes out.
                        if let FlushStatus::Crashed { seq } = unit.flush(&mut guard)? {
                            crashed = Some(seq);
                        }
                    }
                }
                match crashed {
                    Some(seq) => {
                        write_msg(&mut output, &Msg::Crashed { seq })?;
                        return Ok(0);
                    }
                    None => write_msg(
                        &mut output,
                        &Msg::Progress {
                            consumed: unit.consumed(),
                            durable: unit.durable(),
                        },
                    )?,
                }
            }
            Msg::Poison { seq, fails } => {
                // The supervisor sends absolute remaining-fail counts
                // from its master table; set, don't accumulate.
                poison.insert(seq, fails);
            }
            Msg::Hang => loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
            Msg::Finish { until } => {
                let status = {
                    let mut guard = poison_guard(&mut poison);
                    unit.finish(until, &mut guard)?
                };
                match status {
                    FlushStatus::Crashed { seq } => {
                        write_msg(&mut output, &Msg::Crashed { seq })?;
                        return Ok(0);
                    }
                    FlushStatus::Clean => write_msg(
                        &mut output,
                        &Msg::Report {
                            alarms: unit.alarms().to_vec(),
                            scores: unit.score_trace().to_vec(),
                            scored: unit.scored(),
                        },
                    )?,
                }
            }
            Msg::Exit => return Ok(0),
            _ => return Err(ProcError::Protocol("unexpected message in worker loop")),
        }
    }
}

/// How to launch a worker process.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Binary to execute.
    pub program: PathBuf,
    /// Arguments selecting worker mode in that binary.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// Re-exec the current binary with the hidden `--shard-worker`
    /// flag — the production shape, served by `src/main.rs`.
    pub fn current_exe() -> std::io::Result<Self> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args: vec!["--shard-worker".to_string()],
        })
    }

    /// Re-exec the current *test harness*, filtered down to an
    /// env-gated entry test (see `ipc_worker_entry`): lets integration
    /// tests spawn real worker processes without a separate binary. The
    /// filter is a substring match so it survives module-path changes
    /// between harnesses.
    pub fn test_harness(filter: &str) -> std::io::Result<Self> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args: vec![filter.to_string(), "--test-threads=1".to_string()],
        })
    }

    /// Spawns one worker with piped stdin/stdout and the worker-mode
    /// environment set.
    fn spawn(&self) -> std::io::Result<Child> {
        Command::new(&self.program)
            .args(&self.args)
            .env(WORKER_ENV, "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
    }
}

/// Process-supervision policy. Logical time ticks once per canonical
/// output, exactly as in [`crate::supervise::SuperviseConfig`]; the one
/// wall-clock knob is the ack deadline, which only fires when a worker
/// is truly wedged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcConfig {
    /// Ticks a hung worker survives before `SIGKILL`.
    pub heartbeat_timeout: u64,
    /// First-restart backoff delay, in ticks.
    pub backoff_base: u64,
    /// Upper bound on any backoff delay, in ticks.
    pub backoff_cap: u64,
    /// Restarts allowed per shard before it is marked failed.
    pub max_restarts: u32,
    /// Crashes at the same output before it is quarantined.
    pub quarantine_after: u32,
    /// Outputs per `Outputs` frame (and per ack round-trip).
    pub batch: usize,
    /// Wall-clock ack deadline per frame, in milliseconds.
    pub ack_timeout_ms: u64,
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            heartbeat_timeout: 4,
            backoff_base: 1,
            backoff_cap: 16,
            max_restarts: 32,
            quarantine_after: 3,
            batch: 16,
            ack_timeout_ms: 30_000,
        }
    }
}

/// What the process supervisor saw and did over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcReport {
    /// Worker restarts booked against shard budgets.
    pub restarts: u64,
    /// Crash notices (guard panics) received from workers.
    pub panics_caught: u64,
    /// Hangs detected (injected hangs whose heartbeat deadline passed).
    pub hangs_detected: u64,
    /// Injected kills that landed on a live worker.
    pub kills_injected: u64,
    /// Workers that died by `SIGKILL` (signal 9 in their wait status).
    pub sigkills: u64,
    /// Missed ack deadlines and expired hang heartbeats.
    pub heartbeat_misses: u64,
    /// Worker processes spawned, including initial opens.
    pub spawns: u64,
    /// Outputs re-applied from per-shard WALs across all restarts.
    pub replayed_outputs: u64,
    /// `(shard, per-shard seq)` of every output quarantined this run.
    pub quarantined: Vec<(usize, u64)>,
    /// Global stream indices of the quarantined outputs.
    pub quarantined_outputs: Vec<u64>,
    /// Shards that exhausted their restart budget.
    pub failed_shards: Vec<usize>,
}

/// The merged fleet output of a process-supervised run.
#[derive(Debug, Clone)]
pub struct ProcOutcome {
    /// Live shards' alarms merged by `(time, dimm)`.
    pub alarms: Vec<Alarm>,
    /// Live shards' score traces merged by `(time, dimm)`.
    pub scores: Vec<ScoreRecord>,
    /// Model invocations across live shards.
    pub scored: u64,
    /// Shards still serving at the end of the run.
    pub live_shards: usize,
    /// Total shard count (for routing queries).
    pub shards: usize,
    /// Everything the supervisor did along the way.
    pub report: ProcReport,
}

impl ProcOutcome {
    /// Degraded-mode routing check: `Err(ShardUnavailable)` if the
    /// DIMM's home shard exhausted its restart budget, `Ok` otherwise.
    pub fn dimm_status(&self, dimm: DimmId) -> Result<(), ServeError> {
        let shard = shard_of(dimm, self.shards);
        if self.report.failed_shards.contains(&shard) {
            Err(ServeError::ShardUnavailable { shard })
        } else {
            Ok(())
        }
    }
}

/// A live worker process plus its pipes and reader thread.
struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<Result<Msg, ProcError>>,
    reader: Option<JoinHandle<()>>,
    /// Outputs sent (== the worker's `fed` watermark after each ack).
    sent: u64,
}

/// What `recv` saw.
enum RecvOutcome {
    Msg(Msg),
    /// The pipe closed or delivered garbage: the worker is dead to us.
    Died,
    /// No answer within the ack deadline: the worker is wedged.
    TimedOut,
}

/// How a feed round ended.
enum FeedEnd {
    Clean,
    Crashed(u64),
    Died { hung: bool },
}

/// A chaos injection waiting to bind to the next output routed to its
/// shard (the supervisor-side mirror of `supervise`'s private enum).
#[derive(Debug, Clone, Copy)]
enum PPending {
    Transient(u32),
    Permanent,
}

/// Supervisor-side state of one shard that outlives its worker.
#[derive(Debug, Default)]
struct PCtl {
    restarts: u32,
    crash_counts: BTreeMap<u64, u32>,
    /// Master poison table: remaining fails per per-shard seq
    /// (`u32::MAX` = permanent). Decremented when a worker reports a
    /// crash at an armed seq — the worker's guard burned one fail
    /// before dying — so restart specs carry the remaining count.
    poison: BTreeMap<u64, u32>,
    pending: Vec<PPending>,
}

/// Lifecycle state of one shard's worker process.
enum PSlot {
    Up(WorkerHandle),
    Hung { since: u64, w: WorkerHandle },
    Down { until: u64 },
    Failed,
}

/// Drains a worker's stdout on a thread, decoding frames into messages.
/// Channel disconnect doubles as the death signal.
fn spawn_reader(
    mut stdout: ChildStdout,
) -> (Receiver<Result<Msg, ProcError>>, JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut reader = FrameReader::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            loop {
                match reader.next() {
                    FrameStep::Frame(f) => {
                        mfp_obs::counter("ipc_frames", &[("dir", "up")]).incr();
                        match Msg::parse(&f) {
                            Ok(m) => {
                                if tx.send(Ok(m)).is_err() {
                                    return;
                                }
                            }
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                return;
                            }
                        }
                    }
                    FrameStep::Corrupt => {
                        mfp_obs::counter("ipc_crc_errors", &[]).incr();
                        let _ = tx.send(Err(ProcError::CorruptFrame));
                        return;
                    }
                    FrameStep::NeedMore => break,
                }
            }
            match stdout.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => reader.push(&chunk[..n]),
            }
        }
    });
    (rx, handle)
}

/// Runs one worker process per shard over a canonical output stream,
/// applying [`ProcConfig`] policy and the injected failures of a
/// [`ChaosPlan`]. The in-process [`crate::supervise::Supervisor`]'s
/// control flow, lifted to OS processes: `Kill` becomes a real
/// `SIGKILL` (plus a torn WAL tail), `Hang` wedges the worker until the
/// heartbeat deadline kills it, and `Panic`/`Poison` arm the worker's
/// apply guard over the wire.
pub struct ProcSupervisor {
    dir: PathBuf,
    command: WorkerCommand,
    shards: usize,
    platform: Platform,
    online: OnlineConfig,
    durable: DurableConfig,
    problem: ProblemConfig,
    thresholds: FaultThresholds,
    model: ModelSpec,
    catalog: Vec<(DimmId, DimmSpec)>,
    cfg: ProcConfig,
}

impl ProcSupervisor {
    /// Binds a supervisor to an `MFW2` root (created if absent) with
    /// `shards` worker processes launched via `command`.
    ///
    /// # Errors
    ///
    /// I/O failures, or a root whose meta file disagrees with `shards`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dir: impl Into<PathBuf>,
        command: WorkerCommand,
        shards: usize,
        platform: Platform,
        online: OnlineConfig,
        durable: DurableConfig,
        problem: ProblemConfig,
        thresholds: FaultThresholds,
        model: ModelSpec,
        catalog: Vec<(DimmId, DimmSpec)>,
        cfg: ProcConfig,
    ) -> Result<Self, ProcError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        check_meta(&dir, shards)?;
        silence_chaos_panics();
        Ok(ProcSupervisor {
            dir,
            command,
            shards: shards.max(1),
            platform,
            online,
            durable,
            problem,
            thresholds,
            model,
            catalog,
            cfg,
        })
    }

    /// The spec a freshly spawned worker for shard `s` receives,
    /// carrying the still-armed slice of the master poison table.
    fn spec_for(&self, s: usize, ctl: &PCtl) -> WorkerSpec {
        WorkerSpec {
            shard: s,
            dir: shard_dir(&self.dir, s),
            platform: self.platform,
            online: self.online,
            durable: self.durable,
            problem: self.problem,
            thresholds: self.thresholds,
            model: self.model,
            catalog: self.catalog.clone(),
            poison: ctl
                .poison
                .iter()
                .filter(|&(_, &f)| f > 0)
                .map(|(&seq, &f)| (seq, f))
                .collect(),
        }
    }

    /// Sends one frame down a worker's stdin. An `EPIPE` here is the
    /// worker dying mid-conversation, surfaced as `Err`.
    fn send(&self, w: &mut WorkerHandle, msg: &Msg) -> Result<(), ProcError> {
        let bytes = msg.encode()?;
        w.stdin.write_all(&bytes).map_err(ProcError::Io)?;
        w.stdin.flush().map_err(ProcError::Io)?;
        mfp_obs::counter("ipc_frames", &[("dir", "down")]).incr();
        Ok(())
    }

    /// Waits for the worker's next message under the ack deadline.
    fn recv(&self, w: &WorkerHandle) -> RecvOutcome {
        match w.rx.recv_timeout(Duration::from_millis(self.cfg.ack_timeout_ms)) {
            Ok(Ok(m)) => RecvOutcome::Msg(m),
            Ok(Err(_)) => RecvOutcome::Died,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Died,
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
        }
    }

    /// Feeds the worker its routed backlog up to `upto`, one acked
    /// frame per `cfg.batch` outputs. Ack ⇒ durable, so `w.sent` is
    /// also the worker's WAL watermark.
    fn feed_upto(
        &self,
        w: &mut WorkerHandle,
        outs: &[IngestOutput],
        routed_s: &[usize],
        upto: usize,
    ) -> FeedEnd {
        let chunk = self.cfg.batch.max(1);
        while (w.sent as usize) < upto {
            let lo = w.sent as usize;
            let hi = upto.min(lo + chunk);
            let pending: Vec<IngestOutput> = routed_s[lo..hi].iter().map(|&g| outs[g]).collect();
            let records = batch_outputs(&pending, w.sent);
            if self.send(w, &Msg::Outputs { records }).is_err() {
                return FeedEnd::Died { hung: false };
            }
            w.sent = hi as u64;
            match self.recv(w) {
                RecvOutcome::Msg(Msg::Progress { .. }) => {}
                RecvOutcome::Msg(Msg::Crashed { seq }) => return FeedEnd::Crashed(seq),
                RecvOutcome::Msg(_) | RecvOutcome::Died => return FeedEnd::Died { hung: false },
                RecvOutcome::TimedOut => return FeedEnd::Died { hung: true },
            }
        }
        FeedEnd::Clean
    }

    /// Kills and reaps a worker, counting a `SIGKILL` death if that is
    /// what its wait status says.
    fn reap(&self, w: WorkerHandle, report: &mut ProcReport) {
        let WorkerHandle {
            mut child,
            stdin,
            rx,
            reader,
            ..
        } = w;
        // Kill before closing stdin: a live worker blocked on the pipe
        // must die by signal, not slip out through EOF first — the
        // SIGKILL count is part of the deterministic report.
        let _ = child.kill();
        drop(stdin);
        if let Ok(status) = child.wait() {
            #[cfg(unix)]
            {
                use std::os::unix::process::ExitStatusExt;
                if status.signal() == Some(9) {
                    report.sigkills += 1;
                }
            }
            #[cfg(not(unix))]
            let _ = &status;
        }
        drop(rx);
        if let Some(h) = reader {
            let _ = h.join();
        }
    }

    /// Reaps a worker that announced its own exit (it sent `Crashed`
    /// and is already on its way out): plain wait, no kill, so the
    /// voluntary exit status is captured and the `SIGKILL` counter
    /// stays deterministic instead of racing the worker's `exit(0)`.
    fn reap_exited(&self, w: WorkerHandle) {
        let WorkerHandle {
            mut child,
            stdin,
            rx,
            reader,
            ..
        } = w;
        drop(stdin);
        let _ = child.wait();
        drop(rx);
        if let Some(h) = reader {
            let _ = h.join();
        }
    }

    /// Graceful shutdown of a live worker: `Exit`, close the pipe, and
    /// wait — no kill, so no spurious `SIGKILL` in the report.
    fn shutdown(&self, mut w: WorkerHandle) {
        let _ = self.send(&mut w, &Msg::Exit);
        let WorkerHandle {
            mut child,
            stdin,
            rx,
            reader,
            ..
        } = w;
        drop(stdin);
        let _ = child.wait();
        drop(rx);
        if let Some(h) = reader {
            let _ = h.join();
        }
    }

    /// Books one restart against the shard's budget.
    fn schedule_restart(
        &self,
        s: usize,
        now: u64,
        ctl: &mut PCtl,
        report: &mut ProcReport,
    ) -> PSlot {
        ctl.restarts += 1;
        report.restarts += 1;
        if ctl.restarts > self.cfg.max_restarts {
            if !report.failed_shards.contains(&s) {
                report.failed_shards.push(s);
            }
            PSlot::Failed
        } else {
            PSlot::Down {
                until: now + bounded_backoff(self.cfg.backoff_base, self.cfg.backoff_cap, ctl.restarts),
            }
        }
    }

    /// Accounts one reported crash at per-shard `seq`: crash counter,
    /// quarantine at the threshold, master-poison decrement, restart.
    #[allow(clippy::too_many_arguments)]
    fn crash_slot(
        &self,
        s: usize,
        seq: u64,
        now: u64,
        outs: &[IngestOutput],
        routed_s: &[usize],
        ctl: &mut PCtl,
        report: &mut ProcReport,
    ) -> Result<PSlot, ProcError> {
        report.panics_caught += 1;
        let count = ctl.crash_counts.entry(seq).or_insert(0);
        *count += 1;
        if *count >= self.cfg.quarantine_after {
            if let Some(&gidx) = routed_s.get(seq as usize) {
                quarantine_output(&shard_dir(&self.dir, s), seq, &outs[gidx])?;
                report.quarantined.push((s, seq));
                report.quarantined_outputs.push(gidx as u64);
            }
        }
        // The worker's guard burned one fail before this crash; mirror
        // it so the next Init carries the remaining count.
        if let Some(f) = ctl.poison.get_mut(&seq) {
            if *f > 0 && *f != u32::MAX {
                *f -= 1;
            }
        }
        Ok(self.schedule_restart(s, now, ctl, report))
    }

    /// Spawns, initializes, and catches up a worker for shard `s`. Any
    /// mid-handshake death books a restart instead of erroring: only
    /// spawn itself failing is a real error.
    #[allow(clippy::too_many_arguments)]
    fn start_shard(
        &self,
        s: usize,
        now: u64,
        outs: &[IngestOutput],
        routed_s: &[usize],
        ctl: &mut PCtl,
        report: &mut ProcReport,
    ) -> Result<PSlot, ProcError> {
        let mut child = self.command.spawn()?;
        report.spawns += 1;
        let stdin = child
            .stdin
            .take()
            .ok_or(ProcError::Protocol("spawned worker without piped stdin"))?;
        let stdout = child
            .stdout
            .take()
            .ok_or(ProcError::Protocol("spawned worker without piped stdout"))?;
        let (rx, reader) = spawn_reader(stdout);
        let mut w = WorkerHandle {
            child,
            stdin,
            rx,
            reader: Some(reader),
            sent: 0,
        };
        let init = w
            .stdin
            .write_all(&stream_header())
            .map_err(ProcError::Io)
            .and_then(|()| self.send(&mut w, &Msg::Init(self.spec_for(s, ctl))));
        if init.is_err() {
            self.reap(w, report);
            return Ok(self.schedule_restart(s, now, ctl, report));
        }
        match self.recv(&w) {
            RecvOutcome::Msg(Msg::Hello { fed, replayed, .. }) => {
                report.replayed_outputs += replayed;
                w.sent = fed.min(routed_s.len() as u64);
                match self.feed_upto(&mut w, outs, routed_s, routed_s.len()) {
                    FeedEnd::Clean => Ok(PSlot::Up(w)),
                    FeedEnd::Crashed(seq) => {
                        self.reap_exited(w);
                        self.crash_slot(s, seq, now, outs, routed_s, ctl, report)
                    }
                    FeedEnd::Died { hung } => {
                        if hung {
                            report.heartbeat_misses += 1;
                        }
                        self.reap(w, report);
                        Ok(self.schedule_restart(s, now, ctl, report))
                    }
                }
            }
            RecvOutcome::Msg(Msg::Crashed { seq }) => {
                self.reap_exited(w);
                self.crash_slot(s, seq, now, outs, routed_s, ctl, report)
            }
            RecvOutcome::Msg(_) | RecvOutcome::Died => {
                self.reap(w, report);
                Ok(self.schedule_restart(s, now, ctl, report))
            }
            RecvOutcome::TimedOut => {
                report.heartbeat_misses += 1;
                self.reap(w, report);
                Ok(self.schedule_restart(s, now, ctl, report))
            }
        }
    }

    /// One logical-time step: kill hung workers whose heartbeat expired
    /// and restart workers whose backoff elapsed.
    #[allow(clippy::too_many_arguments)]
    fn step_timers(
        &self,
        now: u64,
        outs: &[IngestOutput],
        routed: &[Vec<usize>],
        slots: &mut [PSlot],
        ctl: &mut [PCtl],
        report: &mut ProcReport,
    ) -> Result<(), ProcError> {
        for s in 0..slots.len() {
            let slot = std::mem::replace(&mut slots[s], PSlot::Failed);
            slots[s] = match slot {
                PSlot::Hung { since, w } => {
                    if now.saturating_sub(since) >= self.cfg.heartbeat_timeout {
                        report.hangs_detected += 1;
                        report.heartbeat_misses += 1;
                        self.reap(w, report);
                        self.schedule_restart(s, now, &mut ctl[s], report)
                    } else {
                        PSlot::Hung { since, w }
                    }
                }
                PSlot::Down { until } if now >= until => {
                    self.start_shard(s, now, outs, &routed[s], &mut ctl[s], report)?
                }
                other => other,
            };
        }
        Ok(())
    }

    /// Feeds the canonical output stream through the worker fleet under
    /// the injected failure schedule, drains every restart, finishes
    /// prediction up to `end`, and merges live shards' reports.
    ///
    /// The identity contract matches
    /// [`crate::supervise::Supervisor::run`]: transient schedules are
    /// bit-identical to the uncrashed oracle; permanent poisons to the
    /// oracle minus [`ProcReport::quarantined_outputs`]; failed shards
    /// to the oracle restricted to live shards' DIMMs.
    ///
    /// # Errors
    ///
    /// Real spawn/WAL/quarantine failures only — injected failures are
    /// absorbed by the supervision policy.
    pub fn run(
        &self,
        outs: &[IngestOutput],
        end: SimTime,
        plan: &ChaosPlan,
    ) -> Result<ProcOutcome, ProcError> {
        let n = self.shards;
        let mut report = ProcReport::default();
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut ctl: Vec<PCtl> = (0..n).map(|_| PCtl::default()).collect();
        let mut slots: Vec<PSlot> = Vec::with_capacity(n);
        for s in 0..n {
            let slot = self.start_shard(s, 0, outs, &routed[s], &mut ctl[s], &mut report)?;
            slots.push(slot);
        }

        let mut ev_i = 0usize;
        for (i, out) in outs.iter().enumerate() {
            let now = i as u64;
            self.step_timers(now, outs, &routed, &mut slots, &mut ctl, &mut report)?;

            while ev_i < plan.events.len() && plan.events[ev_i].at_output <= now {
                let ev = plan.events[ev_i];
                ev_i += 1;
                if ev.shard >= n || ev.at_output < now {
                    continue;
                }
                match ev.kind {
                    ChaosKind::Kill { torn_bytes } => {
                        match std::mem::replace(&mut slots[ev.shard], PSlot::Failed) {
                            PSlot::Up(w) | PSlot::Hung { w, .. } => {
                                self.reap(w, &mut report);
                                report.kills_injected += 1;
                                tear_wal_tail(&shard_dir(&self.dir, ev.shard), torn_bytes)?;
                                slots[ev.shard] = self.schedule_restart(
                                    ev.shard,
                                    now,
                                    &mut ctl[ev.shard],
                                    &mut report,
                                );
                            }
                            other => slots[ev.shard] = other,
                        }
                    }
                    ChaosKind::Hang => {
                        match std::mem::replace(&mut slots[ev.shard], PSlot::Failed) {
                            PSlot::Up(mut w) => {
                                slots[ev.shard] = if self.send(&mut w, &Msg::Hang).is_ok() {
                                    PSlot::Hung { since: now, w }
                                } else {
                                    self.reap(w, &mut report);
                                    self.schedule_restart(
                                        ev.shard,
                                        now,
                                        &mut ctl[ev.shard],
                                        &mut report,
                                    )
                                };
                            }
                            other => slots[ev.shard] = other,
                        }
                    }
                    ChaosKind::Panic { fails } => {
                        ctl[ev.shard].pending.push(PPending::Transient(fails));
                    }
                    ChaosKind::Poison => ctl[ev.shard].pending.push(PPending::Permanent),
                }
            }

            // Route; bind pending poison to its per-shard sequence and
            // push the updated count to a live worker.
            let s = shard_route(out, n);
            let seq = routed[s].len() as u64;
            if !ctl[s].pending.is_empty() {
                let pending = std::mem::take(&mut ctl[s].pending);
                let e = ctl[s].poison.entry(seq).or_insert(0);
                for p in pending {
                    match p {
                        PPending::Transient(fails) => {
                            if *e != u32::MAX {
                                *e = (*e + fails).min(self.cfg.quarantine_after.saturating_sub(1));
                            }
                        }
                        PPending::Permanent => *e = u32::MAX,
                    }
                }
                let fails = *e;
                if let PSlot::Up(_) = slots[s] {
                    let slot = std::mem::replace(&mut slots[s], PSlot::Failed);
                    slots[s] = match slot {
                        PSlot::Up(mut w) => {
                            if self.send(&mut w, &Msg::Poison { seq, fails }).is_ok() {
                                PSlot::Up(w)
                            } else {
                                self.reap(w, &mut report);
                                self.schedule_restart(s, now, &mut ctl[s], &mut report)
                            }
                        }
                        other => other,
                    };
                }
            }
            routed[s].push(i);

            // Feed at batch boundaries; the remainder drains at the end.
            let backlog_end = routed[s].len();
            let due = match &slots[s] {
                PSlot::Up(w) => backlog_end - (w.sent as usize) >= self.cfg.batch.max(1),
                _ => false,
            };
            if due {
                let slot = std::mem::replace(&mut slots[s], PSlot::Failed);
                slots[s] = match slot {
                    PSlot::Up(mut w) => {
                        match self.feed_upto(&mut w, outs, &routed[s], backlog_end) {
                            FeedEnd::Clean => PSlot::Up(w),
                            FeedEnd::Crashed(cseq) => {
                                self.reap_exited(w);
                                self.crash_slot(
                                    s,
                                    cseq,
                                    now,
                                    outs,
                                    &routed[s],
                                    &mut ctl[s],
                                    &mut report,
                                )?
                            }
                            FeedEnd::Died { hung } => {
                                if hung {
                                    report.heartbeat_misses += 1;
                                }
                                self.reap(w, &mut report);
                                self.schedule_restart(s, now, &mut ctl[s], &mut report)
                            }
                        }
                    }
                    other => other,
                };
            }
        }

        // Drain: expire hangs and backoffs, feed remainders, run the
        // final prediction ticks, and collect reports — re-entering if
        // a finish crashes a worker.
        let mut now = outs.len() as u64;
        let mut results: Vec<Option<(Vec<Alarm>, Vec<ScoreRecord>, u64)>> = vec![None; n];
        loop {
            while slots
                .iter()
                .any(|sl| matches!(sl, PSlot::Hung { .. } | PSlot::Down { .. }))
            {
                self.step_timers(now, outs, &routed, &mut slots, &mut ctl, &mut report)?;
                now += 1;
            }
            let mut any_crash = false;
            for s in 0..n {
                let slot = std::mem::replace(&mut slots[s], PSlot::Failed);
                slots[s] = match slot {
                    PSlot::Up(mut w) => {
                        match self.feed_upto(&mut w, outs, &routed[s], routed[s].len()) {
                            FeedEnd::Clean => {
                                if self.send(&mut w, &Msg::Finish { until: end }).is_err() {
                                    results[s] = None;
                                    any_crash = true;
                                    self.reap(w, &mut report);
                                    self.schedule_restart(s, now, &mut ctl[s], &mut report)
                                } else {
                                    match self.recv(&w) {
                                        RecvOutcome::Msg(Msg::Report {
                                            alarms,
                                            scores,
                                            scored,
                                        }) => {
                                            results[s] = Some((alarms, scores, scored));
                                            PSlot::Up(w)
                                        }
                                        RecvOutcome::Msg(Msg::Crashed { seq }) => {
                                            results[s] = None;
                                            any_crash = true;
                                            self.reap_exited(w);
                                            self.crash_slot(
                                                s,
                                                seq,
                                                now,
                                                outs,
                                                &routed[s],
                                                &mut ctl[s],
                                                &mut report,
                                            )?
                                        }
                                        RecvOutcome::Msg(_) | RecvOutcome::Died => {
                                            results[s] = None;
                                            any_crash = true;
                                            self.reap(w, &mut report);
                                            self.schedule_restart(
                                                s,
                                                now,
                                                &mut ctl[s],
                                                &mut report,
                                            )
                                        }
                                        RecvOutcome::TimedOut => {
                                            results[s] = None;
                                            any_crash = true;
                                            report.heartbeat_misses += 1;
                                            self.reap(w, &mut report);
                                            self.schedule_restart(
                                                s,
                                                now,
                                                &mut ctl[s],
                                                &mut report,
                                            )
                                        }
                                    }
                                }
                            }
                            FeedEnd::Crashed(cseq) => {
                                results[s] = None;
                                any_crash = true;
                                self.reap_exited(w);
                                self.crash_slot(
                                    s,
                                    cseq,
                                    now,
                                    outs,
                                    &routed[s],
                                    &mut ctl[s],
                                    &mut report,
                                )?
                            }
                            FeedEnd::Died { hung } => {
                                results[s] = None;
                                any_crash = true;
                                if hung {
                                    report.heartbeat_misses += 1;
                                }
                                self.reap(w, &mut report);
                                self.schedule_restart(s, now, &mut ctl[s], &mut report)
                            }
                        }
                    }
                    other => other,
                };
            }
            if !any_crash
                && !slots
                    .iter()
                    .any(|sl| matches!(sl, PSlot::Hung { .. } | PSlot::Down { .. }))
            {
                break;
            }
            now += 1;
        }

        let mut alarms: Vec<Alarm> = Vec::new();
        let mut scores: Vec<ScoreRecord> = Vec::new();
        let mut scored = 0u64;
        let mut live_shards = 0usize;
        for (s, sl) in slots.iter().enumerate() {
            if let PSlot::Up(_) = sl {
                live_shards += 1;
                if let Some((a, sc, n_scored)) = &results[s] {
                    alarms.extend_from_slice(a);
                    scores.extend_from_slice(sc);
                    scored += n_scored;
                }
            }
        }
        alarms.sort_by_key(|a| (a.time, a.dimm));
        scores.sort_by_key(|r| (r.time, r.dimm));

        for sl in slots {
            if let PSlot::Up(w) = sl {
                self.shutdown(w);
            }
        }

        mfp_obs::counter("proc_restarts", &[]).add(report.restarts);
        mfp_obs::counter("proc_sigkills", &[]).add(report.sigkills);
        mfp_obs::counter("proc_heartbeat_misses", &[]).add(report.heartbeat_misses);
        mfp_obs::gauge("proc_live_shards", &[]).set(live_shards as f64);

        Ok(ProcOutcome {
            alarms,
            scores,
            scored,
            live_shards,
            shards: n,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::GapRecord;
    use crate::online::OnlinePredictor;
    use crate::supervise::ChaosEvent;
    use mfp_dram::address::CellAddr;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeEvent, MemEvent};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Worker-mode trampoline: when spawned by [`WorkerCommand::
    /// test_harness`] with `MFP_SHARD_WORKER` set, this "test" never
    /// returns — it becomes the shard worker and exits with its code.
    /// Run normally, it is a no-op pass.
    #[test]
    fn ipc_worker_entry() {
        if std::env::var_os(WORKER_ENV).is_some() {
            std::process::exit(shard_worker_main());
        }
    }

    /// A unique scratch directory per test invocation (parallel-safe).
    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "mfp_proc_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create scratch dir");
        d
    }

    fn risky_ce(t: u64, dimm: DimmId, flip: bool) -> MemEvent {
        let bits: Vec<(u8, u8)> = if flip {
            vec![(1, 20), (5, 21)]
        } else {
            vec![(1, 20)]
        };
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm,
            addr: CellAddr::new(0, 0, (t / 1000) as u32 % 100, 1),
            transfer: ErrorTransfer::from_bits(bits),
        })
    }

    fn catalog() -> Vec<(DimmId, DimmSpec)> {
        (0..8u32)
            .map(|k| (DimmId::new(k, (k % 2) as u8), DimmSpec::default()))
            .collect()
    }

    /// A canonical ingest-output stream: time-ordered released events
    /// (half the fleet risky) with two collection gaps in the middle.
    fn outputs(cat: &[(DimmId, DimmSpec)]) -> Vec<IngestOutput> {
        let dimms: Vec<DimmId> = cat.iter().map(|(id, _)| *id).collect();
        let mut out: Vec<IngestOutput> = (0..20 * dimms.len() as u64)
            .map(|k| {
                let d = dimms[(k % dimms.len() as u64) as usize];
                IngestOutput::Released(risky_ce(1_000 + k * 1_800, d, d.server.0 % 2 == 0))
            })
            .collect();
        out.insert(
            40,
            IngestOutput::Gap(GapRecord {
                dimm: dimms[0],
                from: SimTime::from_secs(50_000),
                to: SimTime::from_secs(90_000),
            }),
        );
        out.insert(
            90,
            IngestOutput::Gap(GapRecord {
                dimm: dimms[3],
                from: SimTime::from_secs(120_000),
                to: SimTime::from_secs(170_000),
            }),
        );
        out
    }

    fn oracle(
        cat: &[(DimmId, DimmSpec)],
        outs: &[IngestOutput],
        end: SimTime,
    ) -> (Vec<Alarm>, Vec<ScoreRecord>, u64) {
        let lake = DataLake::new();
        for (id, spec) in cat {
            lake.register_dimm(*id, Platform::IntelPurley, *spec);
        }
        let registry = ModelRegistry::new();
        let eval = Evaluation::from_confusion(
            Confusion {
                tp: 1,
                fp: 0,
                fn_: 0,
                tn: 1,
            },
            0.5,
        );
        let mid = registry.register(
            Algorithm::RiskyCePattern,
            Platform::IntelPurley,
            SimTime::ZERO,
            eval,
            0.5,
            Model::RiskyCe(RiskyCePattern::default()),
        );
        registry.promote(mid);
        let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
        let mut p = OnlinePredictor::new(
            &lake,
            &store,
            &registry,
            Platform::IntelPurley,
            OnlineConfig::default(),
        );
        p.set_score_trace(true);
        for out in outs {
            p.apply(out);
        }
        p.finish(end);
        (p.alarms().to_vec(), p.score_trace().to_vec(), p.scored())
    }

    fn traced() -> DurableConfig {
        DurableConfig {
            batch: 4,
            compact_every: u64::MAX,
            record_scores: true,
            ..DurableConfig::default()
        }
    }

    fn proc_sup(dir: &Path, shards: usize, cfg: ProcConfig) -> ProcSupervisor {
        ProcSupervisor::new(
            dir,
            WorkerCommand::test_harness("ipc_worker_entry").expect("resolve test harness"),
            shards,
            Platform::IntelPurley,
            OnlineConfig::default(),
            traced(),
            ProblemConfig::default(),
            FaultThresholds::default(),
            ModelSpec::default_risky_ce(),
            catalog(),
            cfg,
        )
        .expect("open proc supervisor")
    }

    const END: SimTime = SimTime::from_secs(40 * 86_400);

    #[test]
    fn frames_roundtrip_and_scan_is_a_prefix_decoder() {
        let frames = [
            RawFrame {
                kind: K_HANG,
                seq: 0,
                payload: Vec::new(),
            },
            RawFrame {
                kind: K_PROGRESS,
                seq: 7,
                payload: 42u64.to_be_bytes().to_vec(),
            },
            RawFrame {
                kind: K_OUTPUTS,
                seq: u64::MAX,
                payload: vec![0xAB; 300],
            },
        ];
        let mut stream: Vec<u8> = stream_header().to_vec();
        for f in &frames {
            let enc = encode_frame(f.kind, f.seq, &f.payload);
            assert_eq!(decode_frame(&enc).as_ref(), Some(f));
            stream.extend_from_slice(&enc);
        }
        let scan = scan_frames(&stream).unwrap();
        assert_eq!(scan.frames, frames);
        assert_eq!(scan.valid_bytes, stream.len() as u64);
        assert_eq!(scan.torn_bytes, 0);

        // Every truncation decodes a strict prefix; a torn final frame
        // is torn bytes, never a misparse.
        for cut in 0..stream.len() {
            match scan_frames(&stream[..cut]) {
                Ok(s) => {
                    assert!(s.frames.len() <= frames.len());
                    assert_eq!(s.frames[..], frames[..s.frames.len()]);
                    assert_eq!(s.valid_bytes + s.torn_bytes, cut as u64);
                }
                Err(ProcError::BadHeader) => {
                    assert!(cut < stream_header().len() || stream[..cut] == stream[..cut]);
                }
                Err(e) => panic!("unexpected scan error at cut {cut}: {e}"),
            }
        }

        // A bit flip is confined: frames before the flipped byte still
        // decode, nothing after it is misparsed as valid.
        for pos in stream_header().len()..stream.len() {
            let mut bad = stream.clone();
            bad[pos] ^= 0x40;
            let s = scan_frames(&bad).unwrap();
            assert!(s.frames.len() < frames.len(), "flip at {pos} undetected");
            assert_eq!(s.frames[..], frames[..s.frames.len()]);
        }
    }

    #[test]
    fn frame_reader_survives_driblets_and_harness_banners() {
        let msgs = [
            Msg::Hang,
            Msg::Progress {
                consumed: 12,
                durable: 12,
            },
            Msg::Crashed { seq: 3 },
        ];
        let mut stream: Vec<u8> = b"running 1 test\nMF".to_vec();
        stream.extend_from_slice(&stream_header());
        for m in &msgs {
            stream.extend_from_slice(&m.encode().unwrap());
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for b in stream {
            reader.push(&[b]);
            loop {
                match reader.next() {
                    FrameStep::Frame(f) => got.push(Msg::parse(&f).unwrap()),
                    FrameStep::NeedMore => break,
                    FrameStep::Corrupt => panic!("clean stream misread as corrupt"),
                }
            }
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn insane_frame_lengths_are_corruption_not_allocations() {
        let mut reader = FrameReader::new();
        reader.push(&stream_header());
        let mut frame = encode_frame(K_HANG, 0, &[]);
        frame[9..13].copy_from_slice(&u32::MAX.to_be_bytes());
        reader.push(&frame);
        assert!(matches!(reader.next(), FrameStep::Corrupt));
    }

    #[test]
    fn worker_spec_and_messages_roundtrip() {
        let spec = WorkerSpec {
            shard: 3,
            dir: PathBuf::from("/tmp/mfp-proc/shard-3"),
            platform: Platform::K920,
            online: OnlineConfig::default(),
            durable: traced(),
            problem: ProblemConfig::default(),
            thresholds: FaultThresholds::default(),
            model: ModelSpec::RiskyCe {
                params: RiskyCeParams {
                    min_complex: 2.5,
                    require_interval4: false,
                    min_rows: 1.5,
                },
                threshold: 0.75,
            },
            catalog: catalog(),
            poison: vec![(9, 2), (44, u32::MAX)],
        };
        let outs = outputs(&catalog());
        let records = batch_outputs(&outs[..7], 11);
        let msgs = [
            Msg::Init(spec),
            Msg::Outputs { records },
            Msg::Poison {
                seq: 5,
                fails: u32::MAX,
            },
            Msg::Hang,
            Msg::Finish { until: END },
            Msg::Exit,
            Msg::Hello {
                fed: 31,
                replayed: 9,
                quarantined: 1,
            },
            Msg::Progress {
                consumed: 40,
                durable: 44,
            },
            Msg::Crashed { seq: 17 },
            Msg::Report {
                alarms: vec![Alarm {
                    dimm: DimmId::new(2, 1),
                    time: SimTime::from_secs(9_000),
                    score: 0.875,
                }],
                scores: vec![ScoreRecord {
                    time: SimTime::from_secs(8_000),
                    dimm: DimmId::new(4, 0),
                    score: 0.25,
                }],
                scored: 123,
            },
        ];
        for m in &msgs {
            let enc = m.encode().unwrap();
            let frame = decode_frame(&enc).expect("frame decodes");
            assert_eq!(&Msg::parse(&frame).unwrap(), m);
        }
    }

    #[test]
    fn clean_process_run_matches_the_sequential_oracle() {
        for shards in [1usize, 2] {
            let cat = catalog();
            let outs = outputs(&cat);
            let (ref_alarms, ref_scores, ref_scored) = oracle(&cat, &outs, END);
            assert!(!ref_alarms.is_empty(), "oracle must alarm to bite");

            let dir = test_dir("clean");
            let sup = proc_sup(&dir, shards, ProcConfig::default());
            let out = sup.run(&outs, END, &ChaosPlan::none()).unwrap();
            assert_eq!(out.alarms, ref_alarms, "{shards} shards: alarms");
            assert_eq!(out.scores, ref_scores, "{shards} shards: scores");
            assert_eq!(out.scored, ref_scored, "{shards} shards: scored");
            assert_eq!(out.live_shards, shards);
            assert_eq!(out.report.restarts, 0);
            assert_eq!(out.report.sigkills, 0);
            assert_eq!(out.report.spawns, shards as u64);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn seeded_process_chaos_recovers_bit_identically() {
        let cat = catalog();
        let outs = outputs(&cat);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&cat, &outs, END);

        for shards in [2usize, 4] {
            for seed in [7u64, 21] {
                let plan = ChaosPlan::seeded(seed, shards, outs.len(), 6, 2);
                let dir = test_dir("seeded");
                let sup = proc_sup(&dir, shards, ProcConfig::default());
                let out = sup.run(&outs, END, &plan).unwrap();
                assert_eq!(out.alarms, ref_alarms, "shards={shards} seed={seed}");
                assert_eq!(out.scores, ref_scores, "shards={shards} seed={seed}");
                assert_eq!(out.scored, ref_scored, "shards={shards} seed={seed}");
                assert_eq!(out.live_shards, shards);
                assert!(out.report.quarantined.is_empty(), "seeded plans are transient");
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    #[test]
    fn sigkill_and_hang_recover_and_are_counted() {
        let cat = catalog();
        let outs = outputs(&cat);
        let (ref_alarms, ref_scores, ref_scored) = oracle(&cat, &outs, END);

        let plan = ChaosPlan {
            events: vec![
                ChaosEvent {
                    at_output: 30,
                    shard: 0,
                    kind: ChaosKind::Kill { torn_bytes: 13 },
                },
                ChaosEvent {
                    at_output: 75,
                    shard: 1,
                    kind: ChaosKind::Hang,
                },
                ChaosEvent {
                    at_output: 120,
                    shard: 0,
                    kind: ChaosKind::Panic { fails: 2 },
                },
            ],
        };
        let dir = test_dir("killhang");
        let sup = proc_sup(&dir, 2, ProcConfig::default());
        let out = sup.run(&outs, END, &plan).unwrap();
        assert_eq!(out.report.kills_injected, 1, "{:?}", out.report);
        assert!(out.report.sigkills >= 2, "kill + hung reap: {:?}", out.report);
        assert_eq!(out.report.hangs_detected, 1, "{:?}", out.report);
        assert!(out.report.heartbeat_misses >= 1, "{:?}", out.report);
        assert!(out.report.panics_caught >= 1, "{:?}", out.report);
        assert!(out.report.restarts >= 3, "{:?}", out.report);
        assert!(out.report.replayed_outputs > 0, "{:?}", out.report);
        assert_eq!(out.alarms, ref_alarms);
        assert_eq!(out.scores, ref_scores);
        assert_eq!(out.scored, ref_scored);
        assert_eq!(out.live_shards, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_poison_is_quarantined_across_process_restarts() {
        let cat = catalog();
        let outs = outputs(&cat);
        let target = 50usize;
        let poisoned_shard = shard_route(&outs[target], 2);
        let filtered: Vec<IngestOutput> = outs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != target)
            .map(|(_, o)| *o)
            .collect();
        let (ref_alarms, ref_scores, ref_scored) = oracle(&cat, &filtered, END);

        // The poison binds to the first output routed to the shard at
        // or after the event tick — outs[target] itself.
        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at_output: target as u64,
                shard: poisoned_shard,
                kind: ChaosKind::Poison,
            }],
        };
        let dir = test_dir("poison");
        let cfg = ProcConfig::default();
        let sup = proc_sup(&dir, 2, cfg);
        let out = sup.run(&outs, END, &plan).unwrap();
        assert_eq!(out.report.quarantined_outputs, vec![target as u64]);
        assert_eq!(out.report.quarantined.len(), 1);
        assert_eq!(out.report.quarantined[0].0, poisoned_shard);
        assert_eq!(out.report.panics_caught, cfg.quarantine_after as u64);
        assert_eq!(out.alarms, ref_alarms);
        assert_eq!(out.scores, ref_scores);
        assert_eq!(out.scored, ref_scored);
        assert_eq!(out.live_shards, 2);

        // A fresh run over the same root reads the side log back: the
        // quarantined output never crashes anything again.
        let sup2 = proc_sup(&dir, 2, cfg);
        let out2 = sup2.run(&outs, END, &ChaosPlan::none()).unwrap();
        assert_eq!(out2.report.restarts, 0, "{:?}", out2.report);
        assert_eq!(out2.alarms, ref_alarms);
        assert_eq!(out2.scored, ref_scored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_restart_budget_degrades_to_live_shards() {
        let cat = catalog();
        let outs = outputs(&cat);
        let target = 50usize;
        let poisoned_shard = shard_route(&outs[target], 2);
        let live: Vec<IngestOutput> = outs
            .iter()
            .filter(|o| shard_route(o, 2) != poisoned_shard)
            .copied()
            .collect();
        let (ref_alarms, ref_scores, ref_scored) = oracle(&cat, &live, END);

        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                at_output: target as u64,
                shard: poisoned_shard,
                kind: ChaosKind::Poison,
            }],
        };
        let dir = test_dir("budget");
        let cfg = ProcConfig {
            max_restarts: 2,
            quarantine_after: 100,
            ..ProcConfig::default()
        };
        let sup = proc_sup(&dir, 2, cfg);
        let out = sup.run(&outs, END, &plan).unwrap();
        assert_eq!(out.report.failed_shards, vec![poisoned_shard]);
        assert_eq!(out.live_shards, 1);
        assert_eq!(out.alarms, ref_alarms, "degraded merge == live-shard oracle");
        assert_eq!(out.scores, ref_scores);
        assert_eq!(out.scored, ref_scored);

        // Degraded-mode routing: the failed shard's DIMMs answer
        // ShardUnavailable, live DIMMs answer Ok.
        let mut saw_failed = false;
        let mut saw_live = false;
        for (id, _) in &cat {
            match out.dimm_status(*id) {
                Err(ServeError::ShardUnavailable { shard }) => {
                    assert_eq!(shard, poisoned_shard);
                    saw_failed = true;
                }
                Ok(()) => saw_live = true,
                Err(e) => panic!("unexpected routing error: {e}"),
            }
        }
        assert!(saw_failed && saw_live, "catalog spans both shards");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seed_twice_is_bit_identical_including_the_report() {
        let cat = catalog();
        let outs = outputs(&cat);
        let mut reports = Vec::new();
        let mut merged = Vec::new();
        for _ in 0..2 {
            let plan = ChaosPlan::seeded(99, 2, outs.len(), 5, 2);
            let dir = test_dir("replay");
            let sup = proc_sup(&dir, 2, ProcConfig::default());
            let out = sup.run(&outs, END, &plan).unwrap();
            reports.push(out.report.clone());
            merged.push((out.alarms, out.scores, out.scored));
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(reports[0], reports[1], "supervision is deterministic");
        assert_eq!(merged[0], merged[1]);
    }
}
