//! Simulation time.
//!
//! All components of the workspace share a single notion of time: seconds
//! since the start of the simulated observation period (the paper observes
//! CE logs from January to October 2023, i.e. roughly 270 days). Wall-clock
//! time never leaks into the simulation, which keeps every run perfectly
//! reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in whole seconds since the simulation
/// epoch.
///
/// `SimTime` is a transparent newtype over `u64`; arithmetic with
/// [`SimDuration`] is checked in debug builds via the underlying integer
/// operations.
///
/// # Examples
///
/// ```
/// use mfp_dram::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::days(5);
/// assert_eq!(t.as_secs(), 5 * 24 * 3600);
/// assert_eq!(t - SimTime::ZERO, SimDuration::days(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time in whole seconds.
///
/// # Examples
///
/// ```
/// use mfp_dram::time::SimDuration;
///
/// assert_eq!(SimDuration::hours(2).as_secs(), 7200);
/// assert_eq!(SimDuration::minutes(3) + SimDuration::secs(30), SimDuration::secs(210));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the simulation epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole minutes since the epoch.
    pub const fn as_minutes(self) -> u64 {
        self.0 / 60
    }

    /// Whole hours since the epoch.
    pub const fn as_hours(self) -> u64 {
        self.0 / 3600
    }

    /// Whole days since the epoch.
    pub const fn as_days(self) -> u64 {
        self.0 / 86_400
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Checked subtraction of another time, `None` if `other` is later.
    pub const fn checked_duration_since(self, other: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(other.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `secs` seconds.
    pub const fn secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration of `m` minutes.
    pub const fn minutes(m: u64) -> Self {
        SimDuration(m * 60)
    }

    /// Creates a duration of `h` hours.
    pub const fn hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }

    /// Creates a duration of `d` days.
    pub const fn days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// The duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.as_days();
        let rem = self.0 % 86_400;
        let h = rem / 3600;
        let m = (rem % 3600) / 60;
        let s = rem % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(86_400) && self.0 > 0 {
            write!(f, "{}d", self.0 / 86_400)
        } else if self.0.is_multiple_of(3600) && self.0 > 0 {
            write!(f, "{}h", self.0 / 3600)
        } else if self.0.is_multiple_of(60) && self.0 > 0 {
            write!(f, "{}m", self.0 / 60)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(1000);
        let d = SimDuration::secs(234);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::minutes(1), SimDuration::secs(60));
        assert_eq!(SimDuration::hours(1), SimDuration::minutes(60));
        assert_eq!(SimDuration::days(1), SimDuration::hours(24));
    }

    #[test]
    fn saturating_sub_clamps_at_epoch() {
        let t = SimTime::from_secs(10);
        assert_eq!(t.saturating_sub(SimDuration::secs(100)), SimTime::ZERO);
        assert_eq!(
            t.saturating_sub(SimDuration::secs(4)),
            SimTime::from_secs(6)
        );
    }

    #[test]
    fn checked_duration_since_orders() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::secs(4)));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_secs(86_400 + 3600 * 2 + 60 * 3 + 4);
        assert_eq!(t.to_string(), "d1+02:03:04");
        assert_eq!(SimDuration::days(5).to_string(), "5d");
        assert_eq!(SimDuration::hours(3).to_string(), "3h");
        assert_eq!(SimDuration::minutes(5).to_string(), "5m");
        assert_eq!(SimDuration::secs(7).to_string(), "7s");
    }

    #[test]
    fn unit_accessors() {
        let t = SimTime::from_secs(90_061);
        assert_eq!(t.as_days(), 1);
        assert_eq!(t.as_hours(), 25);
        assert_eq!(t.as_minutes(), 1501);
        assert!((SimDuration::hours(36).as_days_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::minutes(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }
}
