//! Memory error events as recorded by the BMC.
//!
//! The dataset of the paper consists of Machine Check Exception (MCE) logs
//! and memory events collected by the Baseboard Management Controller:
//! correctable errors (CE), uncorrectable errors (UE) and CE storms. Each
//! error event carries the DRAM address and the pre-correction error-bit
//! pattern on the bus (decoded from the ECC check-bit addresses, as the
//! paper describes in Section II-B).

use crate::address::{CellAddr, DimmId};
use crate::bus::ErrorTransfer;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A correctable error: the ECC detected and repaired the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CeEvent {
    /// When the error was observed.
    pub time: SimTime,
    /// The DIMM reporting the error.
    pub dimm: DimmId,
    /// The accessed DRAM address.
    pub addr: CellAddr,
    /// Pre-correction error bits on the bus.
    pub transfer: ErrorTransfer,
}

/// An uncorrectable error: the ECC detected corruption it could not repair.
///
/// Whether a UE was *sudden* (no prior CEs on the DIMM) or *predictable*
/// (preceded by CEs) is not a property of the event itself — the analysis
/// layer derives it from the DIMM's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UeEvent {
    /// When the error was observed.
    pub time: SimTime,
    /// The DIMM reporting the error.
    pub dimm: DimmId,
    /// The accessed DRAM address.
    pub addr: CellAddr,
    /// Raw error bits on the bus.
    pub transfer: ErrorTransfer,
}

/// A CE storm: the BMC observed a high frequency of CE interrupts in a short
/// window (e.g. 10 or more within a minute) and suppressed further logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CeStormEvent {
    /// When the storm threshold was crossed.
    pub time: SimTime,
    /// The DIMM reporting the storm.
    pub dimm: DimmId,
    /// Number of CE interrupts inside the detection window.
    pub count: u32,
}

/// Any memory event in a BMC log, ordered by time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemEvent {
    /// Correctable error.
    Ce(CeEvent),
    /// Uncorrectable error.
    Ue(UeEvent),
    /// Correctable-error storm.
    Storm(CeStormEvent),
}

impl MemEvent {
    /// Observation time of the event.
    pub fn time(&self) -> SimTime {
        match self {
            MemEvent::Ce(e) => e.time,
            MemEvent::Ue(e) => e.time,
            MemEvent::Storm(e) => e.time,
        }
    }

    /// The DIMM the event belongs to.
    pub fn dimm(&self) -> DimmId {
        match self {
            MemEvent::Ce(e) => e.dimm,
            MemEvent::Ue(e) => e.dimm,
            MemEvent::Storm(e) => e.dimm,
        }
    }

    /// The correctable error, if this is a CE event.
    pub fn as_ce(&self) -> Option<&CeEvent> {
        match self {
            MemEvent::Ce(e) => Some(e),
            _ => None,
        }
    }

    /// The uncorrectable error, if this is a UE event.
    pub fn as_ue(&self) -> Option<&UeEvent> {
        match self {
            MemEvent::Ue(e) => Some(e),
            _ => None,
        }
    }

    /// The storm event, if this is a CE storm.
    pub fn as_storm(&self) -> Option<&CeStormEvent> {
        match self {
            MemEvent::Storm(e) => Some(e),
            _ => None,
        }
    }

    /// True for [`MemEvent::Ue`].
    pub fn is_ue(&self) -> bool {
        matches!(self, MemEvent::Ue(_))
    }

    /// The same event re-stamped at `t` (used by clock-skew modelling and
    /// replay tooling; every other field is preserved).
    pub fn with_time(&self, t: SimTime) -> MemEvent {
        let mut e = *self;
        match &mut e {
            MemEvent::Ce(ce) => ce.time = t,
            MemEvent::Ue(ue) => ue.time = t,
            MemEvent::Storm(s) => s.time = t,
        }
        e
    }
}

impl fmt::Display for MemEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemEvent::Ce(e) => write!(f, "[{}] CE {} {} ({})", e.time, e.dimm, e.addr, e.transfer),
            MemEvent::Ue(e) => write!(f, "[{}] UE {} {} ({})", e.time, e.dimm, e.addr, e.transfer),
            MemEvent::Storm(e) => {
                write!(f, "[{}] CE-STORM {} count={}", e.time, e.dimm, e.count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ErrorTransfer;

    fn sample_ce() -> CeEvent {
        CeEvent {
            time: SimTime::from_secs(60),
            dimm: DimmId::new(1, 0),
            addr: CellAddr::new(0, 2, 55, 9),
            transfer: ErrorTransfer::from_bits([(0, 3)]),
        }
    }

    #[test]
    fn accessors_dispatch() {
        let ce = MemEvent::Ce(sample_ce());
        assert_eq!(ce.time(), SimTime::from_secs(60));
        assert_eq!(ce.dimm(), DimmId::new(1, 0));
        assert!(ce.as_ce().is_some());
        assert!(ce.as_ue().is_none());
        assert!(!ce.is_ue());

        let ue = MemEvent::Ue(UeEvent {
            time: SimTime::from_secs(61),
            dimm: DimmId::new(1, 0),
            addr: CellAddr::new(0, 2, 55, 9),
            transfer: ErrorTransfer::from_bits([(0, 3), (1, 5)]),
        });
        assert!(ue.is_ue());
        assert!(ue.as_ue().is_some());
        assert!(ue.as_storm().is_none());
    }

    #[test]
    fn display_includes_kind() {
        let e = MemEvent::Ce(sample_ce());
        assert!(e.to_string().contains("CE"));
        let s = MemEvent::Storm(CeStormEvent {
            time: SimTime::ZERO,
            dimm: DimmId::new(0, 1),
            count: 12,
        });
        assert!(s.to_string().contains("CE-STORM"));
        assert!(s.to_string().contains("count=12"));
    }
}
