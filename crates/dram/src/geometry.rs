//! CPU platforms and the DRAM topology they drive.
//!
//! The paper studies three processor platforms with distinct ECC designs:
//! Intel **Purley** (Skylake / Cascade Lake), Intel **Whitley** (Ice Lake)
//! and the ARM-based Huawei **K920**. The platform determines the memory
//! controller's ECC scheme and therefore which raw error patterns surface as
//! correctable (CE) versus uncorrectable (UE) errors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Instruction-set architecture of the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpuArch {
    /// Intel/AMD x86-64 servers.
    X86,
    /// ARM (AArch64) servers.
    Arm,
}

impl fmt::Display for CpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuArch::X86 => write!(f, "X86"),
            CpuArch::Arm => write!(f, "ARM"),
        }
    }
}

/// The processor platforms compared in the paper.
///
/// # Examples
///
/// ```
/// use mfp_dram::geometry::{Platform, CpuArch};
///
/// assert_eq!(Platform::IntelPurley.arch(), CpuArch::X86);
/// assert_eq!(Platform::K920.arch(), CpuArch::Arm);
/// assert_eq!(Platform::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Intel Purley (Skylake / Cascade Lake generation).
    IntelPurley,
    /// Intel Whitley (Ice Lake generation).
    IntelWhitley,
    /// Huawei ARM K920 (name anonymized in the paper).
    K920,
}

impl Platform {
    /// All studied platforms, in the order the paper tabulates them.
    pub const ALL: [Platform; 3] = [
        Platform::IntelPurley,
        Platform::IntelWhitley,
        Platform::K920,
    ];

    /// The CPU architecture family this platform belongs to.
    pub const fn arch(self) -> CpuArch {
        match self {
            Platform::IntelPurley | Platform::IntelWhitley => CpuArch::X86,
            Platform::K920 => CpuArch::Arm,
        }
    }

    /// A short stable identifier used in logs and reports.
    pub const fn code(self) -> &'static str {
        match self {
            Platform::IntelPurley => "purley",
            Platform::IntelWhitley => "whitley",
            Platform::K920 => "k920",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::IntelPurley => write!(f, "Intel Purley"),
            Platform::IntelWhitley => write!(f, "Intel Whitley"),
            Platform::K920 => write!(f, "K920"),
        }
    }
}

/// Geometry of one DRAM device (chip) generation as used in the fleet.
///
/// The studied fleet is DDR4: each bank group contains 4 banks, x4 devices
/// expose 4 data (DQ) lanes, and a rank is the set of devices that answer a
/// single memory transaction together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceGeometry {
    /// Number of bank groups per device (DDR4 x4/x8: 4).
    pub bank_groups: u8,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: u8,
    /// Number of row address bits.
    pub row_bits: u8,
    /// Number of column address bits.
    pub col_bits: u8,
}

impl DeviceGeometry {
    /// Standard 8 Gb DDR4 x4 die geometry (4 bank groups x 4 banks,
    /// 128K rows x 1K columns).
    pub const DDR4_8GB_X4: DeviceGeometry = DeviceGeometry {
        bank_groups: 4,
        banks_per_group: 4,
        row_bits: 17,
        col_bits: 10,
    };

    /// Total number of banks in the device.
    pub const fn banks(self) -> u16 {
        self.bank_groups as u16 * self.banks_per_group as u16
    }

    /// Number of rows per bank.
    pub const fn rows(self) -> u32 {
        1u32 << self.row_bits
    }

    /// Number of columns per row.
    pub const fn cols(self) -> u32 {
        1u32 << self.col_bits
    }
}

impl Default for DeviceGeometry {
    fn default() -> Self {
        DeviceGeometry::DDR4_8GB_X4
    }
}

/// Width of the data interface of each DRAM device on a DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataWidth {
    /// Four DQ lanes per device: 18 devices cover the 72-bit ECC word.
    X4,
    /// Eight DQ lanes per device: 9 devices cover the 72-bit ECC word.
    X8,
}

impl DataWidth {
    /// DQ lanes driven by one device.
    pub const fn dq_per_device(self) -> u8 {
        match self {
            DataWidth::X4 => 4,
            DataWidth::X8 => 8,
        }
    }

    /// Number of devices needed to fill the 72-bit (64 data + 8 ECC) bus.
    pub const fn devices_per_rank(self) -> u8 {
        match self {
            DataWidth::X4 => 18,
            DataWidth::X8 => 9,
        }
    }
}

impl fmt::Display for DataWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataWidth::X4 => write!(f, "x4"),
            DataWidth::X8 => write!(f, "x8"),
        }
    }
}

/// Width of the ECC word on the memory bus: 64 data bits + 8 check bits.
pub const BUS_BITS: u8 = 72;

/// Beats per DDR4 burst (BL8).
pub const BURST_BEATS: u8 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_arch_mapping() {
        assert_eq!(Platform::IntelPurley.arch(), CpuArch::X86);
        assert_eq!(Platform::IntelWhitley.arch(), CpuArch::X86);
        assert_eq!(Platform::K920.arch(), CpuArch::Arm);
    }

    #[test]
    fn platform_codes_unique() {
        let codes: Vec<_> = Platform::ALL.iter().map(|p| p.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    #[test]
    fn ddr4_geometry_counts() {
        let g = DeviceGeometry::DDR4_8GB_X4;
        assert_eq!(g.banks(), 16);
        assert_eq!(g.rows(), 131_072);
        assert_eq!(g.cols(), 1024);
    }

    #[test]
    fn widths_tile_the_bus() {
        for w in [DataWidth::X4, DataWidth::X8] {
            assert_eq!(w.dq_per_device() as u16 * w.devices_per_rank() as u16, 72);
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Platform::IntelPurley.to_string(), "Intel Purley");
        assert_eq!(DataWidth::X4.to_string(), "x4");
        assert_eq!(CpuArch::Arm.to_string(), "ARM");
    }
}
