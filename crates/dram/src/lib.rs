//! # mfp-dram
//!
//! DRAM organization substrate for the `memfault` workspace — the data
//! model behind *"Investigating Memory Failure Prediction Across CPU
//! Architectures"* (Yu et al., DSN 2024).
//!
//! This crate knows nothing about faults, ECC or machine learning; it
//! defines the vocabulary everything else speaks:
//!
//! * [`geometry`] — CPU platforms ([`geometry::Platform`]) and DDR4 device
//!   geometry (banks/rows/columns, x4/x8 widths, the 72-bit bus).
//! * [`spec`] — static DIMM attributes recorded by the BMC (manufacturer,
//!   frequency, die process, capacity).
//! * [`addrmap`] — physical-address ↔ DRAM-coordinate decoding (the BMC's
//!   machine-check address decode).
//! * [`address`] — identifiers and addresses down the hierarchy
//!   (server → DIMM → rank → bank → row → column), plus spatial regions.
//! * [`bus`] — the per-burst error-bit bitmap over (beat × DQ lane), with
//!   the DQ/beat count and interval statistics analysed in the paper's
//!   Fig. 5.
//! * [`event`] — CE / UE / CE-storm events.
//! * [`bmc`] — the time-ordered event log and its binary wire format.
//! * [`time`] — simulation clock.
//!
//! # Examples
//!
//! ```
//! use mfp_dram::prelude::*;
//!
//! let spec = DimmSpec::default();
//! assert_eq!(spec.width.devices_per_rank(), 18);
//!
//! let mut t = ErrorTransfer::new();
//! t.set(0, 4);
//! t.set(4, 6);
//! assert_eq!(t.beat_interval(), Some(4)); // the Purley high-risk interval
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod addrmap;
pub mod bmc;
pub mod bus;
pub mod event;
pub mod geometry;
pub mod spec;
pub mod time;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::address::{CellAddr, DimmId, Region, ServerId};
    pub use crate::addrmap::AddressMap;
    pub use crate::bmc::BmcLog;
    pub use crate::bus::ErrorTransfer;
    pub use crate::event::{CeEvent, CeStormEvent, MemEvent, UeEvent};
    pub use crate::geometry::{CpuArch, DataWidth, DeviceGeometry, Platform};
    pub use crate::spec::{DieProcess, DimmSpec, Frequency, Manufacturer};
    pub use crate::time::{SimDuration, SimTime};
}
