//! DIMM specifications: the static configuration attributes recorded by the
//! BMC for each module (manufacturer, data width, frequency, die process).
//!
//! These attributes enter the failure-prediction models as static features
//! (Section VI of the paper) and modulate fault incidence in the simulator:
//! field studies consistently report manufacturer- and process-dependent
//! fault rates.

use crate::geometry::{DataWidth, DeviceGeometry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Anonymized DRAM manufacturer, as in the paper's confidential dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Vendor A.
    A,
    /// Vendor B.
    B,
    /// Vendor C.
    C,
    /// Vendor D.
    D,
    /// Vendor E.
    E,
}

impl Manufacturer {
    /// All manufacturers present in the fleet.
    pub const ALL: [Manufacturer; 5] = [
        Manufacturer::A,
        Manufacturer::B,
        Manufacturer::C,
        Manufacturer::D,
        Manufacturer::E,
    ];

    /// Dense index used for one-hot feature encoding.
    pub const fn index(self) -> usize {
        match self {
            Manufacturer::A => 0,
            Manufacturer::B => 1,
            Manufacturer::C => 2,
            Manufacturer::D => 3,
            Manufacturer::E => 4,
        }
    }
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Manufacturer::A => 'A',
            Manufacturer::B => 'B',
            Manufacturer::C => 'C',
            Manufacturer::D => 'D',
            Manufacturer::E => 'E',
        };
        write!(f, "Mfr-{c}")
    }
}

/// DRAM die process node generation (successive shrinks of the DDR4 era).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DieProcess {
    /// First-generation 1x-nm class.
    P1x,
    /// 1y-nm class.
    P1y,
    /// 1z-nm class.
    P1z,
}

impl DieProcess {
    /// All process nodes present in the fleet.
    pub const ALL: [DieProcess; 3] = [DieProcess::P1x, DieProcess::P1y, DieProcess::P1z];

    /// Dense index used for feature encoding.
    pub const fn index(self) -> usize {
        match self {
            DieProcess::P1x => 0,
            DieProcess::P1y => 1,
            DieProcess::P1z => 2,
        }
    }
}

impl fmt::Display for DieProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DieProcess::P1x => write!(f, "1x"),
            DieProcess::P1y => write!(f, "1y"),
            DieProcess::P1z => write!(f, "1z"),
        }
    }
}

/// DDR4 transfer rate in MT/s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Frequency {
    /// DDR4-2133.
    Mt2133,
    /// DDR4-2400.
    Mt2400,
    /// DDR4-2666.
    Mt2666,
    /// DDR4-2933.
    Mt2933,
    /// DDR4-3200.
    Mt3200,
}

impl Frequency {
    /// All transfer rates present in the fleet.
    pub const ALL: [Frequency; 5] = [
        Frequency::Mt2133,
        Frequency::Mt2400,
        Frequency::Mt2666,
        Frequency::Mt2933,
        Frequency::Mt3200,
    ];

    /// The rate in mega-transfers per second.
    pub const fn mts(self) -> u32 {
        match self {
            Frequency::Mt2133 => 2133,
            Frequency::Mt2400 => 2400,
            Frequency::Mt2666 => 2666,
            Frequency::Mt2933 => 2933,
            Frequency::Mt3200 => 3200,
        }
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MT/s", self.mts())
    }
}

/// Static specification of one DIMM as catalogued by the BMC.
///
/// # Examples
///
/// ```
/// use mfp_dram::spec::{DimmSpec, Manufacturer, DieProcess, Frequency};
/// use mfp_dram::geometry::DataWidth;
///
/// let spec = DimmSpec::new(Manufacturer::A, DataWidth::X4, Frequency::Mt2933, DieProcess::P1y, 32);
/// assert_eq!(spec.devices(), 36); // 2 ranks x 18 x4 devices
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimmSpec {
    /// DRAM vendor.
    pub manufacturer: Manufacturer,
    /// Device data width (x4 or x8).
    pub width: DataWidth,
    /// Transfer rate.
    pub frequency: Frequency,
    /// Die process node.
    pub process: DieProcess,
    /// Module capacity in GiB.
    pub capacity_gib: u16,
    /// Number of ranks on the module.
    pub ranks: u8,
    /// Per-device geometry.
    pub geometry: DeviceGeometry,
}

impl DimmSpec {
    /// Creates a dual-rank spec with default DDR4 geometry.
    pub fn new(
        manufacturer: Manufacturer,
        width: DataWidth,
        frequency: Frequency,
        process: DieProcess,
        capacity_gib: u16,
    ) -> Self {
        DimmSpec {
            manufacturer,
            width,
            frequency,
            process,
            capacity_gib,
            ranks: 2,
            geometry: DeviceGeometry::default(),
        }
    }

    /// Total DRAM devices on the module across all ranks.
    pub fn devices(&self) -> u16 {
        self.ranks as u16 * self.width.devices_per_rank() as u16
    }
}

impl Default for DimmSpec {
    fn default() -> Self {
        DimmSpec::new(
            Manufacturer::A,
            DataWidth::X4,
            Frequency::Mt2933,
            DieProcess::P1y,
            32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manufacturer_indices_are_dense() {
        for (i, m) in Manufacturer::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn process_indices_are_dense() {
        for (i, p) in DieProcess::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn frequencies_increase() {
        let rates: Vec<u32> = Frequency::ALL.iter().map(|f| f.mts()).collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn device_count_depends_on_width_and_ranks() {
        let mut spec = DimmSpec::default();
        assert_eq!(spec.devices(), 36);
        spec.width = DataWidth::X8;
        assert_eq!(spec.devices(), 18);
        spec.ranks = 1;
        assert_eq!(spec.devices(), 9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Manufacturer::C.to_string(), "Mfr-C");
        assert_eq!(DieProcess::P1z.to_string(), "1z");
        assert_eq!(Frequency::Mt3200.to_string(), "3200 MT/s");
    }
}
