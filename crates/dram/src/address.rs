//! Addresses within the DRAM hierarchy.
//!
//! The hierarchy mirrors Fig. 1 of the paper: a server hosts DIMMs; a DIMM
//! has ranks; a rank is a set of devices (chips); a device has bank groups,
//! banks, rows and columns; a (bank, row, column) triple names a cell
//! location inside every device of the rank simultaneously (all devices of a
//! rank receive the same address on an access).

use crate::geometry::DeviceGeometry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a server in the fleet.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv-{:06}", self.0)
    }
}

/// Identifier of one DIMM: the hosting server plus its slot index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DimmId {
    /// Hosting server.
    pub server: ServerId,
    /// Slot index on the board.
    pub slot: u8,
}

impl DimmId {
    /// Creates a DIMM id from raw server number and slot.
    pub const fn new(server: u32, slot: u8) -> Self {
        DimmId {
            server: ServerId(server),
            slot,
        }
    }
}

impl fmt::Display for DimmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/dimm{}", self.server, self.slot)
    }
}

/// A cell-granularity address inside one rank of a DIMM.
///
/// `bank` is the flattened bank index (`bank_group * banks_per_group +
/// bank_in_group`). The address names the same (row, column) location in
/// every device of the rank; which *devices* actually observe faulty bits is
/// captured separately by the error transfer bitmap ([`crate::bus`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CellAddr {
    /// Rank index on the DIMM.
    pub rank: u8,
    /// Flattened bank index within the device.
    pub bank: u8,
    /// Row within the bank.
    pub row: u32,
    /// Column within the row.
    pub col: u16,
}

impl CellAddr {
    /// Creates an address, asserting bounds against `geom` in debug builds.
    pub fn new(rank: u8, bank: u8, row: u32, col: u16) -> Self {
        CellAddr {
            rank,
            bank,
            row,
            col,
        }
    }

    /// Bank group of the flattened bank index under `geom`.
    pub fn bank_group(&self, geom: &DeviceGeometry) -> u8 {
        self.bank / geom.banks_per_group
    }

    /// Checks that every component is within `geom` bounds.
    pub fn is_valid(&self, geom: &DeviceGeometry, ranks: u8) -> bool {
        self.rank < ranks
            && (self.bank as u16) < geom.banks()
            && self.row < geom.rows()
            && (self.col as u32) < geom.cols()
    }
}

impl fmt::Display for CellAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}/b{}/row{:#x}/col{:#x}",
            self.rank, self.bank, self.row, self.col
        )
    }
}

/// Coarse region of a DIMM touched by a fault: used by the simulator to
/// describe spatial footprints and by the analysis to classify fault modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// A single cell.
    Cell {
        /// The cell's address.
        addr: CellAddr,
    },
    /// An entire row within a bank.
    Row {
        /// Rank index on the DIMM.
        rank: u8,
        /// Flattened bank index.
        bank: u8,
        /// Row within the bank.
        row: u32,
    },
    /// An entire column within a bank.
    Column {
        /// Rank index on the DIMM.
        rank: u8,
        /// Flattened bank index.
        bank: u8,
        /// Column within the bank.
        col: u16,
    },
    /// An entire bank.
    Bank {
        /// Rank index on the DIMM.
        rank: u8,
        /// Flattened bank index.
        bank: u8,
    },
    /// An entire rank (all banks of all devices answering together).
    Rank {
        /// Rank index on the DIMM.
        rank: u8,
    },
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: &CellAddr) -> bool {
        match *self {
            Region::Cell { addr: a } => a == *addr,
            Region::Row { rank, bank, row } => {
                addr.rank == rank && addr.bank == bank && addr.row == row
            }
            Region::Column { rank, bank, col } => {
                addr.rank == rank && addr.bank == bank && addr.col == col
            }
            Region::Bank { rank, bank } => addr.rank == rank && addr.bank == bank,
            Region::Rank { rank } => addr.rank == rank,
        }
    }

    /// The rank this region lives in.
    pub fn rank(&self) -> u8 {
        match *self {
            Region::Cell { addr } => addr.rank,
            Region::Row { rank, .. }
            | Region::Column { rank, .. }
            | Region::Bank { rank, .. }
            | Region::Rank { rank } => rank,
        }
    }

    /// The flattened bank index, if the region is confined to one bank.
    pub fn bank(&self) -> Option<u8> {
        match *self {
            Region::Cell { addr } => Some(addr.bank),
            Region::Row { bank, .. } | Region::Column { bank, .. } | Region::Bank { bank, .. } => {
                Some(bank)
            }
            Region::Rank { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> DeviceGeometry {
        DeviceGeometry::DDR4_8GB_X4
    }

    #[test]
    fn addr_validity_bounds() {
        let g = geom();
        assert!(CellAddr::new(0, 15, 131_071, 1023).is_valid(&g, 2));
        assert!(!CellAddr::new(2, 0, 0, 0).is_valid(&g, 2));
        assert!(!CellAddr::new(0, 16, 0, 0).is_valid(&g, 2));
        assert!(!CellAddr::new(0, 0, 131_072, 0).is_valid(&g, 2));
        assert!(!CellAddr::new(0, 0, 0, 1024).is_valid(&g, 2));
    }

    #[test]
    fn bank_group_flattening() {
        let g = geom();
        assert_eq!(CellAddr::new(0, 0, 0, 0).bank_group(&g), 0);
        assert_eq!(CellAddr::new(0, 5, 0, 0).bank_group(&g), 1);
        assert_eq!(CellAddr::new(0, 15, 0, 0).bank_group(&g), 3);
    }

    #[test]
    fn region_containment() {
        let a = CellAddr::new(1, 3, 100, 7);
        assert!(Region::Cell { addr: a }.contains(&a));
        assert!(Region::Row {
            rank: 1,
            bank: 3,
            row: 100
        }
        .contains(&a));
        assert!(Region::Column {
            rank: 1,
            bank: 3,
            col: 7
        }
        .contains(&a));
        assert!(Region::Bank { rank: 1, bank: 3 }.contains(&a));
        assert!(Region::Rank { rank: 1 }.contains(&a));
        assert!(!Region::Bank { rank: 1, bank: 4 }.contains(&a));
        assert!(!Region::Rank { rank: 0 }.contains(&a));
    }

    #[test]
    fn region_accessors() {
        let r = Region::Row {
            rank: 1,
            bank: 2,
            row: 9,
        };
        assert_eq!(r.rank(), 1);
        assert_eq!(r.bank(), Some(2));
        assert_eq!(Region::Rank { rank: 0 }.bank(), None);
    }

    #[test]
    fn dimm_id_display() {
        let id = DimmId::new(42, 3);
        assert_eq!(id.to_string(), "srv-000042/dimm3");
    }
}
