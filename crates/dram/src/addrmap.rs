//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The BMC decodes machine-check physical addresses into (rank, bank, row,
//! column) coordinates before logging them (paper §II-B: "ECC checking
//! bits addresses can be decoded to locate specific errors"). This module
//! implements a representative open-page interleaved mapping:
//!
//! ```text
//!  MSB ......................................... LSB
//!  | row | rank | bank group | bank | column | bus offset |
//! ```
//!
//! Column bits are split around the bank bits on real controllers for
//! better bank-level parallelism; a single contiguous field keeps this
//! model invertible and testable while preserving the property analyses
//! rely on: *consecutive cache lines map to different banks only via the
//! column/bank interleave, and a row sweep touches one bank*.

use crate::address::CellAddr;
use crate::geometry::DeviceGeometry;
use serde::{Deserialize, Serialize};

/// An invertible physical-address mapping for one rank-pair of a DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    geometry: DeviceGeometry,
    ranks: u8,
}

/// Bytes covered by one (rank, bank, row, column) coordinate: a 64-byte
/// burst.
pub const BURST_BYTES: u64 = 64;

impl AddressMap {
    /// Creates a mapping for the given geometry and rank count.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is 0 or not a power of two.
    pub fn new(geometry: DeviceGeometry, ranks: u8) -> Self {
        assert!(ranks > 0 && ranks.is_power_of_two(), "ranks must be 2^k");
        AddressMap { geometry, ranks }
    }

    /// Total addressable bytes under this map.
    pub fn capacity_bytes(&self) -> u64 {
        self.ranks as u64
            * self.geometry.banks() as u64
            * self.geometry.rows() as u64
            * self.geometry.cols() as u64
            * BURST_BYTES
    }

    /// Decodes a physical address into DRAM coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `phys` is beyond [`AddressMap::capacity_bytes`].
    pub fn decode(&self, phys: u64) -> CellAddr {
        assert!(phys < self.capacity_bytes(), "address out of range");
        let mut a = phys / BURST_BYTES;
        let cols = self.geometry.cols() as u64;
        let banks = self.geometry.banks() as u64;
        let rows = self.geometry.rows() as u64;

        let col = (a % cols) as u16;
        a /= cols;
        let bank = (a % banks) as u8;
        a /= banks;
        let rank = (a % self.ranks as u64) as u8;
        a /= self.ranks as u64;
        let row = (a % rows) as u32;
        CellAddr::new(rank, bank, row, col)
    }

    /// Encodes DRAM coordinates back into the base physical address of the
    /// burst.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for the geometry.
    pub fn encode(&self, addr: &CellAddr) -> u64 {
        assert!(
            addr.is_valid(&self.geometry, self.ranks),
            "coordinates out of range: {addr}"
        );
        let cols = self.geometry.cols() as u64;
        let banks = self.geometry.banks() as u64;
        let mut a = addr.row as u64;
        a = a * self.ranks as u64 + addr.rank as u64;
        a = a * banks + addr.bank as u64;
        a = a * cols + addr.col as u64;
        a * BURST_BYTES
    }

    /// The stride in bytes between consecutive rows of the same bank — the
    /// distance a row-hammer/row-fault sweep moves through physical memory.
    pub fn row_stride_bytes(&self) -> u64 {
        self.geometry.cols() as u64
            * self.geometry.banks() as u64
            * self.ranks as u64
            * BURST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(DeviceGeometry::DDR4_8GB_X4, 2)
    }

    #[test]
    fn capacity_matches_geometry() {
        let m = map();
        // 2 ranks x 16 banks x 128Ki rows x 1Ki cols x 64 B = 256 GiB of
        // coordinate space (the *rank* address space; the per-DIMM capacity
        // divides by the device count sharing each burst).
        assert_eq!(
            m.capacity_bytes(),
            2 * 16 * 131_072u64 * 1024 * 64
        );
    }

    #[test]
    fn roundtrip_exhaustive_sample() {
        let m = map();
        for phys in (0..m.capacity_bytes()).step_by(987_654_321) {
            let burst = (phys / BURST_BYTES) * BURST_BYTES;
            let addr = m.decode(burst);
            assert_eq!(m.encode(&addr), burst, "phys {burst:#x}");
        }
    }

    #[test]
    fn consecutive_bursts_walk_columns() {
        let m = map();
        let a = m.decode(0);
        let b = m.decode(BURST_BYTES);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1, "adjacent bursts are adjacent columns");
    }

    #[test]
    fn row_stride_reaches_next_row() {
        let m = map();
        let a = m.decode(0);
        let b = m.decode(m.row_stride_bytes());
        assert_eq!(b.row, a.row + 1);
        assert_eq!(b.bank, a.bank);
        assert_eq!(b.col, a.col);
        assert_eq!(b.rank, a.rank);
    }

    #[test]
    fn distinct_addresses_decode_distinctly() {
        let m = map();
        let a = m.decode(4096 * BURST_BYTES);
        let b = m.decode(4097 * BURST_BYTES);
        assert_ne!((a.rank, a.bank, a.row, a.col), (b.rank, b.bank, b.row, b.col));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range() {
        let m = map();
        let _ = m.decode(m.capacity_bytes());
    }

    #[test]
    #[should_panic(expected = "ranks")]
    fn rejects_non_power_of_two_ranks() {
        let _ = AddressMap::new(DeviceGeometry::DDR4_8GB_X4, 3);
    }
}
