//! The DDR4 data-bus error model: which bits of a burst were wrong.
//!
//! A DDR4 access transfers a 64-byte cache line as a burst of
//! [`BURST_BEATS`] beats, each carrying [`BUS_BITS`] bits (64 data +
//! 8 ECC). The paper
//! (Fig. 1(2) and Fig. 5) analyses errors in this *(DQ lane, beat)* grid:
//! the number of erroneous DQ lanes and beats, and the distance (interval)
//! between them, are strongly associated with whether a fault eventually
//! produces an uncorrectable error — with the association differing by
//! platform ECC.

use crate::geometry::{DataWidth, BURST_BEATS, BUS_BITS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bitmap of erroneous bits across one burst: 8 beats x 72 DQ lanes.
///
/// Bit `dq` of `beats[beat]` is set when the bit transferred on DQ lane `dq`
/// during `beat` differed from the stored/expected value *before* ECC
/// correction.
///
/// # Examples
///
/// ```
/// use mfp_dram::bus::ErrorTransfer;
///
/// let mut t = ErrorTransfer::new();
/// t.set(0, 4);
/// t.set(4, 5);
/// assert_eq!(t.bit_count(), 2);
/// assert_eq!(t.dq_count(), 2);
/// assert_eq!(t.beat_count(), 2);
/// assert_eq!(t.beat_interval(), Some(4));
/// assert_eq!(t.dq_interval(), Some(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ErrorTransfer {
    beats: [u128; BURST_BEATS as usize],
}

impl ErrorTransfer {
    const LANE_MASK: u128 = (1u128 << BUS_BITS) - 1;

    /// An all-clean transfer.
    pub fn new() -> Self {
        ErrorTransfer::default()
    }

    /// Builds a transfer from `(beat, dq)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any `beat >= 8` or `dq >= 72`.
    pub fn from_bits<I: IntoIterator<Item = (u8, u8)>>(bits: I) -> Self {
        let mut t = ErrorTransfer::new();
        for (beat, dq) in bits {
            t.set(beat, dq);
        }
        t
    }

    /// Builds a transfer directly from per-beat lane bitmaps, the inverse
    /// of [`Self::beats`] — used by compact (SoA) event stores to
    /// reconstruct transfers without replaying `set` per bit.
    ///
    /// # Panics
    ///
    /// Panics if any beat has a bit set above lane [`BUS_BITS`].
    pub fn from_beats(beats: [u128; BURST_BEATS as usize]) -> Self {
        for &b in &beats {
            assert!(b & !Self::LANE_MASK == 0, "lane bit out of range");
        }
        ErrorTransfer { beats }
    }

    /// Marks the bit on `dq` during `beat` as erroneous.
    ///
    /// # Panics
    ///
    /// Panics if `beat >= 8` or `dq >= 72`.
    pub fn set(&mut self, beat: u8, dq: u8) {
        assert!(beat < BURST_BEATS, "beat {beat} out of range");
        assert!(dq < BUS_BITS, "dq {dq} out of range");
        self.beats[beat as usize] |= 1u128 << dq;
    }

    /// Whether the bit on `dq` during `beat` is erroneous.
    pub fn get(&self, beat: u8, dq: u8) -> bool {
        beat < BURST_BEATS && dq < BUS_BITS && (self.beats[beat as usize] >> dq) & 1 == 1
    }

    /// Raw per-beat lane bitmaps.
    pub fn beats(&self) -> &[u128; BURST_BEATS as usize] {
        &self.beats
    }

    /// True when no bit is erroneous.
    pub fn is_empty(&self) -> bool {
        self.beats.iter().all(|&b| b == 0)
    }

    /// Total number of erroneous bits in the burst.
    pub fn bit_count(&self) -> u32 {
        self.beats.iter().map(|b| b.count_ones()).sum()
    }

    /// Bitmask (over 72 lanes) of DQs that saw at least one erroneous bit.
    pub fn dq_mask(&self) -> u128 {
        self.beats.iter().fold(0, |acc, &b| acc | b) & Self::LANE_MASK
    }

    /// Bitmask (over 8 beats) of beats that saw at least one erroneous bit.
    pub fn beat_mask(&self) -> u8 {
        let mut m = 0u8;
        for (i, &b) in self.beats.iter().enumerate() {
            if b != 0 {
                m |= 1 << i;
            }
        }
        m
    }

    /// Number of distinct erroneous DQ lanes.
    pub fn dq_count(&self) -> u32 {
        self.dq_mask().count_ones()
    }

    /// Number of distinct erroneous beats.
    pub fn beat_count(&self) -> u32 {
        self.beat_mask().count_ones()
    }

    /// Distance between the lowest and highest erroneous DQ lane.
    ///
    /// Returns `None` for a clean transfer and `Some(0)` when a single lane
    /// is affected; the paper's Fig. 5 "DQ interval" statistic.
    pub fn dq_interval(&self) -> Option<u32> {
        let m = self.dq_mask();
        if m == 0 {
            return None;
        }
        let lo = m.trailing_zeros();
        let hi = 127 - m.leading_zeros();
        Some(hi - lo)
    }

    /// Distance between the lowest and highest erroneous beat.
    pub fn beat_interval(&self) -> Option<u32> {
        let m = self.beat_mask();
        if m == 0 {
            return None;
        }
        let lo = m.trailing_zeros();
        let hi = 7 - m.leading_zeros();
        Some(hi - lo)
    }

    /// Erroneous bits confined to the DQ lanes of device `dev` (given
    /// `width`), as a per-beat bitmap shifted down to lane 0.
    pub fn device_slice(&self, dev: u8, width: DataWidth) -> [u16; BURST_BEATS as usize] {
        let w = width.dq_per_device() as u32;
        let base = dev as u32 * w;
        let mask: u128 = ((1u128 << w) - 1) << base;
        let mut out = [0u16; BURST_BEATS as usize];
        for (i, &b) in self.beats.iter().enumerate() {
            out[i] = ((b & mask) >> base) as u16;
        }
        out
    }

    /// Bitmask over devices (lane groups of `width`) with at least one
    /// erroneous bit.
    pub fn device_mask(&self, width: DataWidth) -> u32 {
        let w = width.dq_per_device() as u32;
        let lanes = self.dq_mask();
        let mut m = 0u32;
        let devs = width.devices_per_rank() as u32;
        for d in 0..devs {
            let dev_mask: u128 = ((1u128 << w) - 1) << (d * w);
            if lanes & dev_mask != 0 {
                m |= 1 << d;
            }
        }
        m
    }

    /// Number of distinct devices with erroneous bits.
    pub fn device_count(&self, width: DataWidth) -> u32 {
        self.device_mask(width).count_ones()
    }

    /// Merges another transfer's erroneous bits into this one.
    pub fn merge(&mut self, other: &ErrorTransfer) {
        for (a, b) in self.beats.iter_mut().zip(other.beats.iter()) {
            *a |= *b;
        }
    }

    /// Iterates over all erroneous `(beat, dq)` positions.
    pub fn iter_bits(&self) -> impl Iterator<Item = (u8, u8)> + '_ {
        self.beats.iter().enumerate().flat_map(|(beat, &lanes)| {
            (0..BUS_BITS).filter_map(move |dq| {
                if (lanes >> dq) & 1 == 1 {
                    Some((beat as u8, dq))
                } else {
                    None
                }
            })
        })
    }
}

impl fmt::Display for ErrorTransfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "clean");
        }
        write!(
            f,
            "{} bits on {} DQs x {} beats",
            self.bit_count(),
            self.dq_count(),
            self.beat_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transfer_properties() {
        let t = ErrorTransfer::new();
        assert!(t.is_empty());
        assert_eq!(t.bit_count(), 0);
        assert_eq!(t.dq_count(), 0);
        assert_eq!(t.beat_count(), 0);
        assert_eq!(t.dq_interval(), None);
        assert_eq!(t.beat_interval(), None);
        assert_eq!(t.to_string(), "clean");
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = ErrorTransfer::new();
        t.set(3, 71);
        assert!(t.get(3, 71));
        assert!(!t.get(3, 70));
        assert!(!t.get(2, 71));
        assert_eq!(t.bit_count(), 1);
    }

    #[test]
    #[should_panic(expected = "beat")]
    fn set_rejects_bad_beat() {
        ErrorTransfer::new().set(8, 0);
    }

    #[test]
    #[should_panic(expected = "dq")]
    fn set_rejects_bad_dq() {
        ErrorTransfer::new().set(0, 72);
    }

    #[test]
    fn from_beats_roundtrips() {
        let t = ErrorTransfer::from_bits([(0, 4), (3, 71), (7, 0)]);
        assert_eq!(ErrorTransfer::from_beats(*t.beats()), t);
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn from_beats_rejects_out_of_range_lanes() {
        let mut beats = [0u128; 8];
        beats[2] = 1u128 << 72;
        let _ = ErrorTransfer::from_beats(beats);
    }

    #[test]
    fn intervals_match_paper_semantics() {
        // Purley's high-risk pattern: 2 error DQs, 2 error beats, 4-beat interval.
        let t = ErrorTransfer::from_bits([(0, 4), (4, 6)]);
        assert_eq!(t.dq_count(), 2);
        assert_eq!(t.beat_count(), 2);
        assert_eq!(t.beat_interval(), Some(4));
        assert_eq!(t.dq_interval(), Some(2));
    }

    #[test]
    fn single_bit_has_zero_intervals() {
        let t = ErrorTransfer::from_bits([(5, 40)]);
        assert_eq!(t.dq_interval(), Some(0));
        assert_eq!(t.beat_interval(), Some(0));
    }

    #[test]
    fn device_mapping_x4() {
        // DQs 0..4 -> device 0; DQs 8..12 -> device 2.
        let t = ErrorTransfer::from_bits([(0, 1), (1, 9)]);
        assert_eq!(t.device_mask(DataWidth::X4), 0b101);
        assert_eq!(t.device_count(DataWidth::X4), 2);
        let s = t.device_slice(2, DataWidth::X4);
        assert_eq!(s[1], 0b0010);
        assert_eq!(s[0], 0);
    }

    #[test]
    fn device_mapping_x8_groups_wider() {
        let t = ErrorTransfer::from_bits([(0, 1), (1, 9)]);
        // x8: DQs 0..8 -> device 0, 8..16 -> device 1.
        assert_eq!(t.device_mask(DataWidth::X8), 0b11);
    }

    #[test]
    fn merge_unions_bits() {
        let mut a = ErrorTransfer::from_bits([(0, 0)]);
        let b = ErrorTransfer::from_bits([(7, 71)]);
        a.merge(&b);
        assert_eq!(a.bit_count(), 2);
        assert!(a.get(0, 0) && a.get(7, 71));
    }

    #[test]
    fn iter_bits_visits_all() {
        let bits = vec![(0u8, 3u8), (2, 14), (7, 71)];
        let t = ErrorTransfer::from_bits(bits.iter().copied());
        let got: Vec<_> = t.iter_bits().collect();
        assert_eq!(got, bits);
    }

    #[test]
    fn ecc_lanes_count_toward_dq_mask() {
        // Lane 64..72 are check bits but still physical DQ lanes on the bus.
        let t = ErrorTransfer::from_bits([(0, 64), (0, 71)]);
        assert_eq!(t.dq_count(), 2);
        assert_eq!(t.device_count(DataWidth::X4), 2); // devices 16 and 17
    }
}
