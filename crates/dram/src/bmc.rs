//! The Baseboard Management Controller log: an ordered store of memory
//! events with a compact binary wire format.
//!
//! In production the BMC records corrected/uncorrected errors, events and
//! memory specifications (paper, Section II-B); the data pipeline ships
//! these logs into the data lake. [`BmcLog`] plays that role here, and the
//! [`BmcLog::encode`]/[`BmcLog::decode`] pair is the wire format used by the
//! MLOps ingestion layer.

use crate::address::{CellAddr, DimmId, ServerId};
use crate::bus::ErrorTransfer;
use crate::event::{CeEvent, CeStormEvent, MemEvent, UeEvent};
use crate::geometry::BURST_BEATS;
use crate::time::SimTime;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Magic bytes at the head of an encoded log.
const MAGIC: [u8; 4] = *b"BMC1";
/// Wire-format version.
const VERSION: u8 = 1;

const TAG_CE: u8 = 1;
const TAG_UE: u8 = 2;
const TAG_STORM: u8 = 3;

/// A time-ordered log of memory events for a fleet (or a single server).
///
/// Events may be pushed out of order; the log keeps itself sorted by
/// observation time (stable for equal timestamps).
///
/// # Examples
///
/// ```
/// use mfp_dram::bmc::BmcLog;
/// use mfp_dram::event::{MemEvent, CeEvent};
/// use mfp_dram::address::{DimmId, CellAddr};
/// use mfp_dram::bus::ErrorTransfer;
/// use mfp_dram::time::SimTime;
///
/// let mut log = BmcLog::new();
/// log.push(MemEvent::Ce(CeEvent {
///     time: SimTime::from_secs(10),
///     dimm: DimmId::new(0, 0),
///     addr: CellAddr::new(0, 0, 1, 2),
///     transfer: ErrorTransfer::from_bits([(0, 1)]),
/// }));
/// let bytes = log.encode();
/// let back = BmcLog::decode(&bytes)?;
/// assert_eq!(back.len(), 1);
/// # Ok::<(), mfp_dram::bmc::DecodeError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BmcLog {
    events: Vec<MemEvent>,
    sorted: bool,
}

impl BmcLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        BmcLog {
            events: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty log with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        BmcLog {
            events: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Appends an event, tracking whether a re-sort will be needed.
    pub fn push(&mut self, event: MemEvent) {
        if let Some(last) = self.events.last() {
            if event.time() < last.time() {
                self.sorted = false;
            }
        }
        self.events.push(event);
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ensures events are in time order (stable sort; no-op when sorted).
    pub fn sort(&mut self) {
        if !self.sorted {
            self.events.sort_by_key(|e| e.time());
            self.sorted = true;
        }
    }

    /// Time-ordered view of all events.
    ///
    /// # Panics
    ///
    /// Panics if events were pushed out of order and [`BmcLog::sort`] has
    /// not been called since.
    pub fn events(&self) -> &[MemEvent] {
        assert!(
            self.sorted,
            "BmcLog contains out-of-order events; call sort() first"
        );
        &self.events
    }

    /// Iterates over events regardless of sortedness.
    pub fn iter(&self) -> impl Iterator<Item = &MemEvent> {
        self.events.iter()
    }

    /// Consumes the log, returning the events in push order (callers that
    /// need a particular ordering sort the vector themselves).
    pub fn into_events(self) -> Vec<MemEvent> {
        self.events
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: BmcLog) {
        self.sorted = false;
        self.events.extend(other.events);
        self.sort();
    }

    /// Groups events by DIMM, preserving time order within each group.
    pub fn by_dimm(&self) -> BTreeMap<DimmId, Vec<&MemEvent>> {
        let mut map: BTreeMap<DimmId, Vec<&MemEvent>> = BTreeMap::new();
        for e in &self.events {
            map.entry(e.dimm()).or_default().push(e);
        }
        map
    }

    /// Distinct servers appearing in the log.
    pub fn servers(&self) -> Vec<ServerId> {
        let mut v: Vec<ServerId> = self.events.iter().map(|e| e.dimm().server).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Counts of (CE, UE, storm) events.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut ce = 0;
        let mut ue = 0;
        let mut storm = 0;
        for e in &self.events {
            match e {
                MemEvent::Ce(_) => ce += 1,
                MemEvent::Ue(_) => ue += 1,
                MemEvent::Storm(_) => storm += 1,
            }
        }
        (ce, ue, storm)
    }

    /// Serializes the log into the compact binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.events.len() * 48);
        buf.put_slice(&MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64(self.events.len() as u64);
        for e in &self.events {
            encode_event(&mut buf, e);
        }
        buf.freeze()
    }

    /// Deserializes a log from the binary wire format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the input is truncated, carries a wrong
    /// magic/version, or contains an unknown event tag.
    pub fn decode(mut data: &[u8]) -> Result<BmcLog, DecodeError> {
        if data.remaining() < 13 {
            return Err(DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let n = data.get_u64() as usize;
        let mut log = BmcLog::with_capacity(n);
        for _ in 0..n {
            log.push(decode_event(&mut data)?);
        }
        log.sort();
        Ok(log)
    }
}

impl FromIterator<MemEvent> for BmcLog {
    fn from_iter<I: IntoIterator<Item = MemEvent>>(iter: I) -> Self {
        let mut log = BmcLog::new();
        for e in iter {
            log.push(e);
        }
        log.sort();
        log
    }
}

impl Extend<MemEvent> for BmcLog {
    fn extend<I: IntoIterator<Item = MemEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
        self.sort();
    }
}

fn encode_event(buf: &mut BytesMut, e: &MemEvent) {
    match e {
        MemEvent::Ce(ce) => {
            buf.put_u8(TAG_CE);
            encode_common(buf, ce.time, ce.dimm);
            encode_addr(buf, &ce.addr);
            encode_transfer(buf, &ce.transfer);
        }
        MemEvent::Ue(ue) => {
            buf.put_u8(TAG_UE);
            encode_common(buf, ue.time, ue.dimm);
            encode_addr(buf, &ue.addr);
            encode_transfer(buf, &ue.transfer);
        }
        MemEvent::Storm(s) => {
            buf.put_u8(TAG_STORM);
            encode_common(buf, s.time, s.dimm);
            buf.put_u32(s.count);
        }
    }
}

fn encode_common(buf: &mut BytesMut, time: SimTime, dimm: DimmId) {
    buf.put_u64(time.as_secs());
    buf.put_u32(dimm.server.0);
    buf.put_u8(dimm.slot);
}

fn encode_addr(buf: &mut BytesMut, addr: &CellAddr) {
    buf.put_u8(addr.rank);
    buf.put_u8(addr.bank);
    buf.put_u32(addr.row);
    buf.put_u16(addr.col);
}

fn encode_transfer(buf: &mut BytesMut, t: &ErrorTransfer) {
    // Each 72-bit beat is stored as u64 (low lanes) + u8 (lanes 64..72).
    for &beat in t.beats() {
        buf.put_u64(beat as u64);
        buf.put_u8((beat >> 64) as u8);
    }
}

fn decode_event(data: &mut &[u8]) -> Result<MemEvent, DecodeError> {
    if data.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = data.get_u8();
    match tag {
        TAG_CE => {
            let (time, dimm) = decode_common(data)?;
            let addr = decode_addr(data)?;
            let transfer = decode_transfer(data)?;
            Ok(MemEvent::Ce(CeEvent {
                time,
                dimm,
                addr,
                transfer,
            }))
        }
        TAG_UE => {
            let (time, dimm) = decode_common(data)?;
            let addr = decode_addr(data)?;
            let transfer = decode_transfer(data)?;
            Ok(MemEvent::Ue(UeEvent {
                time,
                dimm,
                addr,
                transfer,
            }))
        }
        TAG_STORM => {
            let (time, dimm) = decode_common(data)?;
            if data.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let count = data.get_u32();
            Ok(MemEvent::Storm(CeStormEvent { time, dimm, count }))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

fn decode_common(data: &mut &[u8]) -> Result<(SimTime, DimmId), DecodeError> {
    if data.remaining() < 13 {
        return Err(DecodeError::Truncated);
    }
    let time = SimTime::from_secs(data.get_u64());
    let server = data.get_u32();
    let slot = data.get_u8();
    Ok((time, DimmId::new(server, slot)))
}

fn decode_addr(data: &mut &[u8]) -> Result<CellAddr, DecodeError> {
    if data.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let rank = data.get_u8();
    let bank = data.get_u8();
    let row = data.get_u32();
    let col = data.get_u16();
    Ok(CellAddr::new(rank, bank, row, col))
}

fn decode_transfer(data: &mut &[u8]) -> Result<ErrorTransfer, DecodeError> {
    if data.remaining() < BURST_BEATS as usize * 9 {
        return Err(DecodeError::Truncated);
    }
    let mut t = ErrorTransfer::new();
    for beat in 0..BURST_BEATS {
        let low = data.get_u64() as u128;
        let high = data.get_u8() as u128;
        let lanes = low | (high << 64);
        for dq in 0..72u8 {
            if (lanes >> dq) & 1 == 1 {
                t.set(beat, dq);
            }
        }
    }
    Ok(t)
}

/// Failure decoding a binary BMC log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before a complete record.
    Truncated,
    /// Leading magic bytes did not match.
    BadMagic,
    /// Unsupported wire-format version.
    BadVersion(u8),
    /// Unknown event tag.
    BadTag(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown event tag {t}"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ce(t: u64, server: u32) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(server, 0),
            addr: CellAddr::new(0, 3, 77, 5),
            transfer: ErrorTransfer::from_bits([(0, 3), (4, 68)]),
        })
    }

    fn ue(t: u64) -> MemEvent {
        MemEvent::Ue(UeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(9, 1),
            addr: CellAddr::new(1, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0), (1, 11), (2, 22)]),
        })
    }

    #[test]
    fn push_and_sort_order_events() {
        let mut log = BmcLog::new();
        log.push(ce(100, 1));
        log.push(ce(50, 2));
        log.sort();
        let times: Vec<u64> = log.events().iter().map(|e| e.time().as_secs()).collect();
        assert_eq!(times, vec![50, 100]);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn events_panics_when_unsorted() {
        let mut log = BmcLog::new();
        log.push(ce(100, 1));
        log.push(ce(50, 2));
        let _ = log.events();
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut log = BmcLog::new();
        log.push(ce(10, 1));
        log.push(ue(20));
        log.push(MemEvent::Storm(CeStormEvent {
            time: SimTime::from_secs(30),
            dimm: DimmId::new(2, 3),
            count: 15,
        }));
        let bytes = log.encode();
        let back = BmcLog::decode(&bytes).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(BmcLog::decode(b"xx"), Err(DecodeError::Truncated));
        assert_eq!(
            BmcLog::decode(b"XXXX\x01\0\0\0\0\0\0\0\0"),
            Err(DecodeError::BadMagic)
        );
        assert_eq!(
            BmcLog::decode(b"BMC1\x09\0\0\0\0\0\0\0\0"),
            Err(DecodeError::BadVersion(9))
        );
    }

    #[test]
    fn decode_rejects_truncated_event() {
        let mut log = BmcLog::new();
        log.push(ce(10, 1));
        let bytes = log.encode();
        let cut = &bytes[..bytes.len() - 3];
        assert_eq!(BmcLog::decode(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn by_dimm_groups() {
        let mut log = BmcLog::new();
        log.push(ce(10, 1));
        log.push(ce(20, 1));
        log.push(ue(30));
        let groups = log.by_dimm();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&DimmId::new(1, 0)].len(), 2);
        assert_eq!(groups[&DimmId::new(9, 1)].len(), 1);
    }

    #[test]
    fn counts_and_servers() {
        let log: BmcLog = vec![ce(10, 1), ce(5, 2), ue(30)].into_iter().collect();
        assert_eq!(log.counts(), (2, 1, 0));
        assert_eq!(log.servers(), vec![ServerId(1), ServerId(2), ServerId(9)]);
        // FromIterator sorts.
        assert_eq!(log.events()[0].time().as_secs(), 5);
    }

    #[test]
    fn merge_resorts() {
        let mut a: BmcLog = vec![ce(10, 1)].into_iter().collect();
        let b: BmcLog = vec![ce(5, 2)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.events()[0].time().as_secs(), 5);
    }
}
