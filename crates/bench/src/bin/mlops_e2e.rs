//! Headless end-to-end exercise of the Fig. 6 MLOps workflow; the
//! narrated version lives in `examples/mlops_pipeline.rs`.
//!
//! `cargo run --release -p mfp-bench --bin mlops_e2e -- [--shards N [--workers M]]`
//!
//! With `--shards N` the fleet comes from the sharded simulator
//! (`mfp_sim::sharded`): the DIMM catalog is registered from the plan
//! before any event exists, historical events stream straight into the
//! data lake in bounded batches (the merged log never materializes), and
//! only the online window is retained for replay. The event stream is
//! bit-identical to the sequential path, so every downstream check and
//! number must be unchanged.

use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::model::Algorithm;
use mfp_mlops::prelude::*;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::{simulate_fleet, DimmTruth};
use mfp_sim::sharded::{ShardConfig, ShardedFleet};
use std::collections::BTreeMap;

fn check(name: &str, ok: bool) {
    println!("[{}] {name}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
}

/// Batches historical events into the lake so the streaming path holds at
/// most one batch at a time.
struct LakeLoader<'a> {
    lake: &'a DataLake,
    batch: Vec<MemEvent>,
    rejected: usize,
}

impl<'a> LakeLoader<'a> {
    const BATCH: usize = 4096;

    fn new(lake: &'a DataLake) -> Self {
        LakeLoader {
            lake,
            batch: Vec::with_capacity(Self::BATCH),
            rejected: 0,
        }
    }

    fn push(&mut self, event: MemEvent) {
        self.batch.push(event);
        if self.batch.len() >= Self::BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.batch.is_empty() {
            self.rejected += self.lake.ingest(&self.batch);
            self.batch.clear();
        }
    }
}

fn main() {
    let mut shards = 0usize;
    let mut workers = ShardConfig::default().workers;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--shards" => shards = value().parse().expect("--shards takes an integer"),
            "--workers" => workers = value().parse().expect("--workers takes an integer"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let platform = Platform::IntelPurley;
    let fleet_cfg = FleetConfig::calibrated(50.0, 23);
    let split = SimTime::ZERO + SimDuration::days(188);
    let lake = DataLake::new();

    // Data pipeline: sequential mode materializes the merged log and
    // ships it through the binary wire format; sharded mode streams
    // historical events into the lake as they merge and keeps only the
    // online window in memory.
    let (truths, online): (Vec<DimmTruth>, Vec<MemEvent>) = if shards > 0 {
        let planned = ShardedFleet::plan(&fleet_cfg);
        for (id, p, spec) in planned.catalog() {
            lake.register_dimm(id, p, spec);
        }
        let mut loader = LakeLoader::new(&lake);
        let mut online = Vec::new();
        let outcome = planned.run_stream(&ShardConfig::new(shards, workers), |e| {
            if e.time() < split {
                loader.push(e);
            } else {
                online.push(e);
            }
        });
        loader.flush();
        println!(
            "      sharded fleet: {} dimms, {} events over {} shards x {} workers (peak queue {})",
            planned.dimm_count(),
            outcome.stats.merged_events,
            outcome.stats.shards,
            outcome.stats.workers,
            outcome.stats.max_queue_depth,
        );
        check(
            "lake ingests the sharded stream",
            loader.rejected == 0 && !lake.is_empty(),
        );
        (outcome.dimms, online)
    } else {
        let fleet = simulate_fleet(&fleet_cfg);
        for t in &fleet.dimms {
            lake.register_dimm(t.id, t.platform, t.spec);
        }
        let mut historical = mfp_dram::bmc::BmcLog::new();
        let mut online = Vec::new();
        for e in fleet.log.events() {
            if e.time() < split {
                historical.push(*e);
            } else {
                online.push(*e);
            }
        }
        let rejected = lake.ingest_encoded(&historical.encode()).expect("decode");
        check("lake ingests encoded BMC logs", rejected == 0 && !lake.is_empty());
        (fleet.dimms, online)
    };
    check("fleet ground truth is available", !truths.is_empty());

    // Feature store: batch + consistency.
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let train = store
        .materialize(&lake, platform, SimTime::ZERO, SimTime::ZERO + SimDuration::days(105))
        .downsample_negatives(8);
    let bench = store.materialize(
        &lake,
        platform,
        SimTime::ZERO + SimDuration::days(105),
        SimTime::ZERO + SimDuration::days(160),
    );
    check("feature store materializes labelled samples", train.positives() > 0);
    let probe = train.dimms[0];
    let skew = store.consistency_check(&lake, platform, probe, SimTime::ZERO + SimDuration::days(20));
    check(
        "train/serve consistency check runs",
        skew.is_none_or(|d| d == 0.0),
    );

    // CI/CD.
    let registry = ModelRegistry::new();
    let run = run_pipeline(
        &registry,
        &PipelineConfig::default(),
        Algorithm::LightGbm,
        platform,
        split,
        &train,
        &bench,
        &bench,
    );
    check("deployment pipeline promotes a model", run.deployed);

    // Online prediction + mitigation.
    let mut predictor =
        OnlinePredictor::new(&lake, &store, &registry, platform, OnlineConfig::default());
    let mut ue_times: BTreeMap<mfp_dram::address::DimmId, SimTime> = BTreeMap::new();
    for e in &online {
        if lake.dimm_info(e.dimm()).map(|(p, _)| p) == Some(platform) {
            predictor.observe(e);
            if e.is_ue() {
                ue_times.entry(e.dimm()).or_insert(e.time());
            }
        }
    }
    predictor.finish(SimTime::ZERO + SimDuration::days(270));
    check("online predictor raises alarms", !predictor.alarms().is_empty());
    let report = evaluate_mitigation(predictor.alarms(), &ue_times, &MitigationConfig::default());
    check(
        "mitigation engine computes VIRR",
        report.virr_measured.is_finite() && report.tp + report.fp > 0,
    );
    println!(
        "      alarms={} tp={} fp={} fn={} VIRR measured {:.2} / analytic {:.2}",
        predictor.alarms().len(),
        report.tp,
        report.fp,
        report.fn_,
        report.virr_measured,
        report.virr_analytic
    );

    // Monitoring.
    let live = store.materialize(&lake, platform, SimTime::ZERO + SimDuration::days(150), split);
    let drift = psi_report_excluding(&bench, &live, 10, &mfp_features::extract::CUMULATIVE_FEATURES);
    let excluded = mfp_features::extract::CUMULATIVE_FEATURES.len();
    check(
        "drift report covers the non-excluded schema",
        drift.features.len() == bench.schema.len() - excluded,
    );
    println!("      max PSI {:.3}", drift.max_psi());

    // Process telemetry: every layer above reported into the global
    // registry; fold the snapshot into the §VII dashboard and export it.
    let snap = mfp_obs::global().snapshot();
    let dashboard = Dashboard::new();
    dashboard.import_telemetry(&snap);
    check(
        "telemetry dashboard sees all pipeline layers",
        snap.counter("sim_fleet_runs") + snap.counter("sim_sharded_runs") >= 1
            && snap.counter("features_samples_assembled") > 0
            && snap.counter("ml_train_runs") >= 1
            && snap.counter("online_ticks") > 0,
    );
    println!("\n-- telemetry dashboard --\n{}", dashboard.render());
    println!("-- telemetry snapshot (JSON) --\n{}", snap.to_json());
    println!("\nMLOps end-to-end: all stages passed.");
}
