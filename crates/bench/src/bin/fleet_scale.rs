//! Fleet-scale demonstration of the sharded simulators: wall-clock scaling
//! across engines, shard counts and worker counts, with a bit-identity
//! check against the sequential tick simulator on every cell.
//!
//! `cargo run --release -p mfp-bench --bin fleet_scale -- \
//!     [--dimms 10000] [--engine tick|event|both] [--shards 1,2,4,8] \
//!     [--workers 1,2,4] [--horizon-days 90] [--seed 23] [--out BENCH_fleet.json]`
//!
//! `--dimms` rescales the calibrated three-platform fleet proportionally,
//! so the Table I population mix is preserved at any size. Every
//! `(engine, shards, workers)` cell runs twice: a **timed** run whose sink
//! only counts and folds a cheap digest (so the measurement is the
//! engine's cost, not the comparator's), and an **untimed** verification
//! run compared event-by-event against the retained sequential baseline.
//! A divergence exits non-zero.
//!
//! Speedup numbers are only meaningful on a multi-core host for the tick
//! engine; the event engine's win is algorithmic (quiet time is skipped)
//! and shows up even on one core. With `--out` the run writes a
//! machine-readable baseline (JSON) recording `cores` and an `engine`
//! field per run row, so a single-core CI number is never mistaken for a
//! regression.

use mfp_bench::report::baseline::{config_hash, num};
use mfp_dram::event::MemEvent;
use mfp_dram::time::SimDuration;
use mfp_sim::config::FleetConfig;
use mfp_sim::events::EventFleet;
use mfp_sim::fleet::simulate_fleet;
use mfp_sim::sharded::{ShardConfig, ShardedFleet, ShardedOutcome};
use std::time::Instant;

/// The calibrated fleet rescaled to roughly `dimms` total DIMMs, keeping
/// the per-platform proportions of the full-population config.
fn fleet_of(dimms: usize, horizon_days: u64, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1.0, seed);
    let total: usize = cfg
        .platforms
        .iter()
        .map(|p| p.dimms_with_ces + p.sudden_only_dimms)
        .sum();
    let ratio = dimms as f64 / total as f64;
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = ((pc.dimms_with_ces as f64 * ratio).round() as usize).max(1);
        pc.sudden_only_dimms = (pc.sudden_only_dimms as f64 * ratio).round() as usize;
    }
    cfg.horizon = SimDuration::days(horizon_days);
    cfg
}

/// Cheap event digest for the timed sink: folds the merge key so the
/// measured run still touches every event, without the 152-byte
/// comparison the verification run pays outside the timer.
fn fold_event(acc: u64, e: &MemEvent) -> u64 {
    let k = 0x2545_F491_4F6C_DD1Du64;
    let x = acc
        ^ e.time().as_secs()
        ^ (u64::from(e.dimm().server.0) << 20)
        ^ (u64::from(e.dimm().slot) << 56);
    (x.wrapping_mul(k)).rotate_left(23)
}

/// One engine under test, dispatching to the matching planned fleet.
enum Engine<'a> {
    Tick(&'a ShardedFleet),
    Event(&'a EventFleet),
}

impl Engine<'_> {
    fn name(&self) -> &'static str {
        match self {
            Engine::Tick(_) => "tick",
            Engine::Event(_) => "event",
        }
    }

    fn run_stream<F: FnMut(MemEvent)>(&self, scfg: &ShardConfig, sink: F) -> ShardedOutcome {
        match self {
            Engine::Tick(f) => f.run_stream(scfg, sink),
            Engine::Event(f) => f.run_stream(scfg, sink),
        }
    }
}

fn main() {
    let mut dimms = 10_000usize;
    let mut engines = vec!["tick".to_string(), "event".to_string()];
    let mut shard_counts = vec![8usize];
    let mut worker_counts = vec![1usize, 2, 4];
    let mut horizon_days = 90u64;
    let mut seed = 23u64;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--dimms" => dimms = value().parse().expect("--dimms takes an integer"),
            "--engine" => {
                let v = value();
                engines = match v.as_str() {
                    "both" => vec!["tick".into(), "event".into()],
                    "tick" | "event" => vec![v],
                    other => {
                        eprintln!("--engine takes tick|event|both, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => {
                shard_counts = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards takes comma-separated integers"))
                    .collect();
            }
            "--workers" => {
                worker_counts = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--workers takes comma-separated integers"))
                    .collect();
            }
            "--horizon-days" => {
                horizon_days = value().parse().expect("--horizon-days takes an integer");
            }
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            "--out" => out = Some(value()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let cfg = fleet_of(dimms, horizon_days, seed);
    let tick_fleet = ShardedFleet::plan(&cfg);
    let event_fleet = EventFleet::plan(&cfg);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fleet_scale: {} dimms, {horizon_days}-day horizon, seed {seed}, engines [{}] ({cores} cores available)",
        tick_fleet.dimm_count(),
        engines.join(","),
    );

    let t0 = Instant::now();
    let baseline = simulate_fleet(&cfg);
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_events = baseline.log.events();
    println!(
        "  sequential tick: {:>9} events in {seq_secs:>7.2}s  (baseline & oracle)",
        seq_events.len(),
    );

    println!(
        "  {:<7} {:<7} {:<8} {:>9} {:>9} {:>8} {:>10}",
        "engine", "shards", "workers", "events", "secs", "speedup", "identical"
    );
    let mut rows: Vec<String> = Vec::new();
    let mut all_identical = true;
    for engine_name in &engines {
        let engine = match engine_name.as_str() {
            "tick" => Engine::Tick(&tick_fleet),
            _ => Engine::Event(&event_fleet),
        };
        for &shards in &shard_counts {
            for &workers in &worker_counts {
                let scfg = ShardConfig::new(shards, workers);

                // Timed run: count + digest only.
                let mut digest = 0u64;
                let t = Instant::now();
                let outcome = engine.run_stream(&scfg, |e| digest = fold_event(digest, &e));
                let secs = t.elapsed().as_secs_f64();

                // Verification run (untimed): event-by-event against the
                // sequential oracle.
                let mut idx = 0usize;
                let mut identical = true;
                let _ = engine.run_stream(&scfg, |e| {
                    identical &= seq_events.get(idx) == Some(&e);
                    idx += 1;
                });
                identical &= idx == seq_events.len();
                identical &= outcome.stats.merged_events as usize == seq_events.len();
                all_identical &= identical;

                println!(
                    "  {:<7} {shards:<7} {workers:<8} {:>9} {secs:>9.2} {:>7.2}x {identical:>10}",
                    engine.name(),
                    outcome.stats.merged_events,
                    seq_secs / secs.max(1e-9),
                );
                rows.push(format!(
                    "    {{\"engine\": \"{}\", \"shards\": {shards}, \"workers\": {workers}, \
                     \"wall_secs\": {}, \"events_per_sec\": {}, \"speedup\": {}, \
                     \"identical\": {identical}}}",
                    engine.name(),
                    num(secs),
                    num(outcome.stats.merged_events as f64 / secs.max(1e-9)),
                    num(seq_secs / secs.max(1e-9)),
                ));
            }
        }
    }
    if let Some(path) = out {
        let json = format!(
            "{{\n  \"bench\": \"fleet_scale\",\n  \"dimms\": {},\n  \"events\": {},\n  \
             \"horizon_days\": {horizon_days},\n  \"seed\": {seed},\n  \
             \"cores\": {cores},\n  \"config_hash\": \"{}\",\n  \"baseline\": \
             {{\"engine\": \"tick\", \"wall_secs\": {}, \"events_per_sec\": {}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
            tick_fleet.dimm_count(),
            seq_events.len(),
            config_hash(&format!("{cfg:?}")),
            num(seq_secs),
            num(seq_events.len() as f64 / seq_secs.max(1e-9)),
            rows.join(",\n"),
        );
        std::fs::write(&path, &json).expect("write baseline json");
        println!("wrote {path}");
    }
    if !all_identical {
        eprintln!("FAIL: a run diverged from the sequential tick baseline");
        std::process::exit(1);
    }
    println!("all runs bit-identical to the sequential tick baseline");
}
