//! Fleet-scale demonstration of the sharded simulator: wall-clock scaling
//! across worker counts with a bit-identity check against the sequential
//! simulator on every run.
//!
//! `cargo run --release -p mfp-bench --bin fleet_scale -- \
//!     [--dimms 10000] [--shards 16] [--workers 1,2,4] \
//!     [--horizon-days 90] [--seed 23] [--out BENCH_fleet.json]`
//!
//! `--dimms` rescales the calibrated three-platform fleet proportionally,
//! so the Table I population mix is preserved at any size. Every sharded
//! run is verified event-by-event against the sequential baseline while
//! the merged stream is produced — the identity check costs no extra
//! memory beyond the baseline log that is kept for comparison.
//!
//! Speedup numbers are only meaningful on a multi-core host; on a single
//! core the value of this binary is the identity check under real
//! threading. With `--out` the run also writes a machine-readable
//! baseline (JSON) recording `cores`, so a single-core CI number is
//! never mistaken for a regression.

use mfp_bench::report::baseline::{config_hash, num};
use mfp_dram::time::SimDuration;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use mfp_sim::sharded::{ShardConfig, ShardedFleet};
use std::time::Instant;

/// The calibrated fleet rescaled to roughly `dimms` total DIMMs, keeping
/// the per-platform proportions of the full-population config.
fn fleet_of(dimms: usize, horizon_days: u64, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1.0, seed);
    let total: usize = cfg
        .platforms
        .iter()
        .map(|p| p.dimms_with_ces + p.sudden_only_dimms)
        .sum();
    let ratio = dimms as f64 / total as f64;
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = ((pc.dimms_with_ces as f64 * ratio).round() as usize).max(1);
        pc.sudden_only_dimms = (pc.sudden_only_dimms as f64 * ratio).round() as usize;
    }
    cfg.horizon = SimDuration::days(horizon_days);
    cfg
}

fn main() {
    let mut dimms = 10_000usize;
    let mut shards = 16usize;
    let mut worker_counts = vec![1usize, 2, 4];
    let mut horizon_days = 90u64;
    let mut seed = 23u64;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--dimms" => dimms = value().parse().expect("--dimms takes an integer"),
            "--shards" => shards = value().parse().expect("--shards takes an integer"),
            "--workers" => {
                worker_counts = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--workers takes comma-separated integers"))
                    .collect();
            }
            "--horizon-days" => {
                horizon_days = value().parse().expect("--horizon-days takes an integer");
            }
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            "--out" => out = Some(value()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let cfg = fleet_of(dimms, horizon_days, seed);
    let planned = ShardedFleet::plan(&cfg);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fleet_scale: {} dimms, {} shards, {horizon_days}-day horizon, seed {seed} ({cores} cores available)",
        planned.dimm_count(),
        shards,
    );

    let t0 = Instant::now();
    let baseline = simulate_fleet(&cfg);
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_events = baseline.log.events();
    println!(
        "  sequential: {:>9} events in {seq_secs:>7.2}s  (baseline)",
        seq_events.len(),
    );

    println!("  {:<8} {:>9} {:>9} {:>8} {:>10}", "workers", "events", "secs", "speedup", "identical");
    let mut rows: Vec<String> = Vec::new();
    for &workers in &worker_counts {
        let scfg = ShardConfig::new(shards, workers);
        let mut idx = 0usize;
        let mut identical = true;
        let t = Instant::now();
        let outcome = planned.run_stream(&scfg, |e| {
            identical &= seq_events.get(idx) == Some(&e);
            idx += 1;
        });
        let secs = t.elapsed().as_secs_f64();
        identical &= idx == seq_events.len();
        println!(
            "  {workers:<8} {:>9} {secs:>9.2} {:>7.2}x {:>10}",
            outcome.stats.merged_events,
            seq_secs / secs,
            identical,
        );
        if !identical {
            eprintln!("FAIL: sharded stream diverged from the sequential baseline");
            std::process::exit(1);
        }
        rows.push(format!(
            "    {{\"workers\": {workers}, \"wall_secs\": {}, \"events_per_sec\": {}, \
             \"speedup\": {}, \"identical\": {identical}}}",
            num(secs),
            num(outcome.stats.merged_events as f64 / secs.max(1e-9)),
            num(seq_secs / secs.max(1e-9)),
        ));
    }
    if let Some(path) = out {
        let json = format!(
            "{{\n  \"bench\": \"fleet_scale\",\n  \"dimms\": {},\n  \"events\": {},\n  \
             \"shards\": {shards},\n  \"horizon_days\": {horizon_days},\n  \"seed\": {seed},\n  \
             \"cores\": {cores},\n  \"config_hash\": \"{}\",\n  \"baseline\": \
             {{\"wall_secs\": {}, \"events_per_sec\": {}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
            planned.dimm_count(),
            seq_events.len(),
            config_hash(&format!("{cfg:?}")),
            num(seq_secs),
            num(seq_events.len() as f64 / seq_secs.max(1e-9)),
            rows.join(",\n"),
        );
        std::fs::write(&path, &json).expect("write baseline json");
        println!("wrote {path}");
    }
    println!("all sharded runs bit-identical to the sequential baseline");
}
