//! Reproduces the §IV VIRR model (Fig. 2): the analytic
//! `VIRR = (1 - y_c / precision) * recall` surface against the VIRR
//! *measured* by replaying alarms through the VM mitigation engine.
//!
//! `cargo run --release -p mfp-bench --bin virr_model`

use mfp_bench::report::print_table;
use mfp_dram::address::DimmId;
use mfp_dram::time::SimTime;
use mfp_mlops::mitigation::{evaluate_mitigation, MitigationConfig};
use mfp_mlops::online::Alarm;
use std::collections::BTreeMap;

fn synth_alarms(tp: u32, fp: u32) -> (Vec<Alarm>, BTreeMap<DimmId, SimTime>) {
    // tp alarms on failing DIMMs, fp alarms on healthy ones, plus enough
    // failing DIMMs to reach the requested recall externally.
    let mut alarms = Vec::new();
    let mut ue_times = BTreeMap::new();
    for i in 0..tp {
        let d = DimmId::new(i, 0);
        alarms.push(Alarm { dimm: d, time: SimTime::from_secs(100), score: 0.9 });
        ue_times.insert(d, SimTime::from_secs(10_000));
    }
    for i in 0..fp {
        alarms.push(Alarm {
            dimm: DimmId::new(1_000_000 + i, 0),
            time: SimTime::from_secs(100),
            score: 0.9,
        });
    }
    (alarms, ue_times)
}

fn main() {
    let cfg = MitigationConfig::default();
    println!("VM mitigation model: V_a = {} VMs/server, y_c = {}", cfg.vms_per_server, cfg.cold_fraction);

    let mut rows = Vec::new();
    // Sweep precision (via fp) and recall (via extra unalarmed failures).
    for &(tp, fp, misses) in &[
        (90u32, 10u32, 10u32),  // P=0.90 R=0.90
        (80, 20, 20),           // P=0.80 R=0.80
        (60, 40, 40),           // P=0.60 R=0.60
        (50, 50, 50),           // P=0.50 R=0.50
        (30, 70, 70),           // P=0.30 R=0.30
        (10, 90, 90),           // P=0.10 R=0.10 -> VIRR ~ 0
        (5, 95, 95),            // P=0.05 < y_c   -> negative VIRR
    ] {
        let (alarms, mut ue_times) = synth_alarms(tp, fp);
        for i in 0..misses {
            ue_times.insert(DimmId::new(2_000_000 + i, 0), SimTime::from_secs(10_000));
        }
        let r = evaluate_mitigation(&alarms, &ue_times, &cfg);
        let precision = r.tp as f64 / (r.tp + r.fp) as f64;
        let recall = r.tp as f64 / (r.tp + r.fn_) as f64;
        rows.push(vec![
            format!("{precision:.2}"),
            format!("{recall:.2}"),
            format!("{:.3}", r.virr_analytic),
            format!("{:.3}", r.virr_measured),
            format!("{:.0}", r.interruptions_without),
            format!("{:.0}", r.interruptions_with),
        ]);
    }
    print_table(
        "VIRR: analytic formula vs measured through the mitigation engine",
        &["precision", "recall", "VIRR (formula)", "VIRR (measured)", "V", "V'"],
        &[10, 7, 15, 16, 7, 7],
        &rows,
    );
    println!("\nAs the paper notes: when precision < y_c = 0.1, prediction *adds*");
    println!("interruptions and VIRR turns negative (last row).");
}
