//! Sweeps the problem-formulation windows of Fig. 3: observation window
//! Δt_d and lead time Δt_l (the paper fixes Δt_d = 5 d, Δt_l <= 3 h,
//! Δt_p = 30 d after an empirical sweep of this kind).
//!
//! `cargo run --release -p mfp-bench --bin windows_sweep [scale]`

use mfp_bench::report::{m2, print_table};
use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimDuration;
use mfp_ml::model::Algorithm;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet (seed 42)...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 42));
    let platform = Platform::IntelPurley;

    // Observation-window sweep at the paper's 3 h lead.
    let mut rows = Vec::new();
    for obs_days in [1u64, 3, 5, 7] {
        let mut cfg = ExperimentConfig::default();
        cfg.problem.observation = SimDuration::days(obs_days);
        let splits = build_splits(&fleet, platform, &cfg);
        let res = evaluate_algorithm(Algorithm::LightGbm, &splits, platform, &cfg);
        rows.push(vec![
            format!("{obs_days} d"),
            m2(res.evaluation.precision),
            m2(res.evaluation.recall),
            m2(res.evaluation.f1),
        ]);
    }
    print_table(
        "Observation window sweep (LightGBM, Purley, lead 3 h)",
        &["obs window", "precision", "recall", "F1"],
        &[11, 10, 7, 6],
        &rows,
    );

    // Lead-time sweep at the paper's 5 d observation window.
    let mut rows = Vec::new();
    for lead_min in [5u64, 30, 60, 180] {
        let mut cfg = ExperimentConfig::default();
        cfg.problem.lead = SimDuration::minutes(lead_min);
        let splits = build_splits(&fleet, platform, &cfg);
        let res = evaluate_algorithm(Algorithm::LightGbm, &splits, platform, &cfg);
        rows.push(vec![
            format!("{lead_min} min"),
            m2(res.evaluation.precision),
            m2(res.evaluation.recall),
            m2(res.evaluation.f1),
        ]);
    }
    print_table(
        "Lead-time sweep (LightGBM, Purley, obs 5 d)",
        &["lead time", "precision", "recall", "F1"],
        &[11, 10, 7, 6],
        &rows,
    );
    println!("\nThe paper fixes obs = 5 d and lead in (0, 3 h] after exactly this");
    println!("kind of empirical sweep (Section IV: 'parameters were optimized");
    println!("based on empirical data from the production environment').");
}
