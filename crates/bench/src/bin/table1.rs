//! Regenerates Table I: dataset description per platform (DIMMs with CEs /
//! UEs, predictable vs sudden UE shares), with Finding 1 alongside.
//!
//! `cargo run --release -p mfp-bench --bin table1 [scale]` (default 1:10).

use mfp_bench::report::{paper, pct, print_table};
use mfp_core::study::dataset_summary;
use mfp_dram::time::SimDuration;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet (seed 42)...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 42));
    let rows = dataset_summary(&fleet, SimDuration::hours(3));

    let mut table = Vec::new();
    for row in &rows {
        let (_, paper_pred, paper_sudden) = paper::TABLE1
            .iter()
            .find(|(p, ..)| *p == row.platform)
            .copied()
            .unwrap();
        table.push(vec![
            row.platform.to_string(),
            row.dimms_with_ces.to_string(),
            row.dimms_with_ues.to_string(),
            format!("{} / {}", pct(row.predictable_pct), pct(paper_pred)),
            format!("{} / {}", pct(row.sudden_pct), pct(paper_sudden)),
        ]);
    }
    print_table(
        "Table I: description of dataset (measured / paper)",
        &["CPU platform", "DIMMs w/ CEs", "DIMMs w/ UEs", "predictable UE", "sudden UE"],
        &[14, 13, 13, 17, 17],
        &table,
    );

    // Finding 1.
    let rate = |i: usize| 100.0 * rows[i].dimms_with_ues as f64 / rows[i].dimms_with_ces.max(1) as f64;
    println!("\nFinding 1: UE and sudden-UE rates vary across architectures.");
    println!(
        "  per-DIMM UE rate: Purley {:.1}%  Whitley {:.1}%  K920 {:.1}%",
        rate(0),
        rate(1),
        rate(2)
    );
    println!(
        "  sudden share:     Purley {:.0}%   Whitley {:.0}%   K920 {:.0}%",
        rows[0].sudden_pct, rows[1].sudden_pct, rows[2].sudden_pct
    );
}
