//! Hostile-telemetry end-to-end: measures alarm fidelity of the hardened
//! ingestion + online-prediction path under increasing stream corruption.
//!
//! The clean fleet log is corrupted with [`mfp_sim::chaos`] at a sweep of
//! rates, pushed through the [`Ingestor`] (validation, dedup, watermark
//! re-sequencing, gap detection) and into an [`OnlinePredictor`] running
//! in degraded-grace mode. Alarm recall/precision are reported against
//! the clean-delivery baseline run through the *same* hardened path, and
//! a lossless chaos pass (duplicates + bounded reorder only) must
//! reproduce the baseline alarms bit-for-bit.
//!
//! `cargo run --release -p mfp-bench --bin chaos_e2e -- \
//!     [--rates 0.0,0.1,0.3] [--min-recall 0.65] [--seed 23] \
//!     [--shards N [--workers M]]`
//!
//! With `--shards N` the fleet is produced by the sharded simulator
//! (`mfp_sim::sharded`) on `M` workers — the output is bit-identical to
//! the sequential path, so every downstream number must be unchanged.
//!
//! Exits non-zero if any stage fails or any swept rate's alarm recall
//! drops below the floor.

use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::model::Algorithm;
use mfp_mlops::prelude::*;
use mfp_sim::chaos::{inject_chaos, ChaosConfig};
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use mfp_sim::sharded::{simulate_fleet_sharded, ShardConfig};
use std::collections::BTreeSet;

fn check(name: &str, ok: bool) {
    println!("[{}] {name}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
}

/// One pass of a delivery-ordered stream through the full hardened path:
/// ingestor (validate / dedup / re-sequence / gap-detect) feeding a fresh
/// predictor with degraded-mode scoring enabled.
struct RunOutcome {
    alarms: Vec<Alarm>,
    ingest: IngestStats,
    stale_rejected: u64,
    gaps: u64,
}

fn run_hardened(
    lake: &DataLake,
    registry: &ModelRegistry,
    platform: Platform,
    delivery: &[MemEvent],
    end: SimTime,
) -> RunOutcome {
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut predictor = OnlinePredictor::new(
        lake,
        &store,
        registry,
        platform,
        OnlineConfig {
            degraded_grace: SimDuration::days(2),
            ..OnlineConfig::default()
        },
    );
    let mut ingestor = Ingestor::new(
        lake,
        IngestConfig {
            lateness: SimDuration::hours(1),
            gap_threshold: Some(SimDuration::days(7)),
            ..IngestConfig::default()
        },
    );
    let mut gaps = 0u64;
    for e in delivery {
        for released in ingestor.push(e) {
            predictor.observe(&released);
        }
        for gap in ingestor.take_gaps() {
            gaps += 1;
            predictor.note_gap(gap.dimm);
        }
    }
    for released in ingestor.flush() {
        predictor.observe(&released);
    }
    predictor.finish(end);
    RunOutcome {
        alarms: predictor.alarms().to_vec(),
        ingest: ingestor.stats(),
        stale_rejected: predictor.stale_rejected(),
        gaps,
    }
}

fn alarmed_dimms(alarms: &[Alarm]) -> BTreeSet<DimmId> {
    alarms.iter().map(|a| a.dimm).collect()
}

/// Bit-level alarm equality (f32 scores compared by bits).
fn alarms_identical(a: &[Alarm], b: &[Alarm]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.dimm == y.dimm && x.time == y.time && x.score.to_bits() == y.score.to_bits()
        })
}

fn main() {
    let mut rates = vec![0.0f64, 0.1, 0.3];
    let mut min_recall = 0.65f64;
    let mut seed = 23u64;
    let mut shards = 0usize;
    let mut workers = ShardConfig::default().workers;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--rates" => {
                rates = value(&mut args)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--rates takes comma-separated floats"))
                    .collect();
            }
            "--min-recall" => {
                min_recall = value(&mut args).parse().expect("--min-recall takes a float");
            }
            "--seed" => {
                seed = value(&mut args).parse().expect("--seed takes an integer");
            }
            "--shards" => {
                shards = value(&mut args).parse().expect("--shards takes an integer");
            }
            "--workers" => {
                workers = value(&mut args).parse().expect("--workers takes an integer");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let platform = Platform::IntelPurley;
    let fleet_cfg = FleetConfig::calibrated(50.0, seed);
    let fleet = if shards > 0 {
        println!("      fleet: sharded simulator ({shards} shards, {workers} workers)");
        simulate_fleet_sharded(&fleet_cfg, &ShardConfig::new(shards, workers))
    } else {
        simulate_fleet(&fleet_cfg)
    };
    let split = SimTime::ZERO + SimDuration::days(188);
    let end = SimTime::ZERO + SimDuration::days(270);

    // Historical half: train and promote a production model, exactly as
    // the happy-path `mlops_e2e` does.
    let lake = DataLake::new();
    for t in &fleet.dimms {
        lake.register_dimm(t.id, t.platform, t.spec);
    }
    let mut historical = mfp_dram::bmc::BmcLog::new();
    for e in fleet.log.events().iter().filter(|e| e.time() < split) {
        historical.push(*e);
    }
    let rejected = lake.ingest_encoded(&historical.encode()).expect("decode");
    check("lake ingests encoded BMC logs", rejected == 0 && !lake.is_empty());

    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let train = store
        .materialize(&lake, platform, SimTime::ZERO, SimTime::ZERO + SimDuration::days(105))
        .downsample_negatives(8);
    let bench = store.materialize(
        &lake,
        platform,
        SimTime::ZERO + SimDuration::days(105),
        SimTime::ZERO + SimDuration::days(160),
    );
    let registry = ModelRegistry::new();
    let run = run_pipeline(
        &registry,
        &PipelineConfig::default(),
        Algorithm::LightGbm,
        platform,
        split,
        &train,
        &bench,
        &bench,
    );
    check("deployment pipeline promotes a model", run.deployed);

    // Online half: the clean, time-ordered delivery stream.
    let clean: Vec<MemEvent> = fleet
        .log
        .events()
        .iter()
        .filter(|e| e.time() >= split)
        .filter(|e| lake.dimm_info(e.dimm()).map(|(p, _)| p) == Some(platform))
        .copied()
        .collect();
    println!("      online stream: {} events on {}", clean.len(), platform);

    // Baseline: clean delivery through the same hardened path.
    let baseline = run_hardened(&lake, &registry, platform, &clean, end);
    check("clean baseline raises alarms", !baseline.alarms.is_empty());
    println!(
        "      baseline alarms={} released={} (rejected={} dup={} quarantined={} gaps={})",
        baseline.alarms.len(),
        baseline.ingest.released,
        baseline.ingest.rejected,
        baseline.ingest.duplicates,
        baseline.ingest.quarantined,
        baseline.gaps,
    );
    let base_dimms = alarmed_dimms(&baseline.alarms);

    // Lossless chaos (duplicates + bounded reorder, nothing lost): the
    // ingestor must reconstruct the clean stream and the predictor must
    // raise bit-identical alarms.
    let (lossless, lstats) = inject_chaos(&clean, &ChaosConfig::lossless(seed));
    let lossless_run = run_hardened(&lake, &registry, platform, &lossless, end);
    println!(
        "      lossless chaos: delivered={} duplicated={} delayed={} -> dedup dropped={}",
        lstats.delivered, lstats.duplicated, lstats.delayed, lossless_run.ingest.duplicates,
    );
    check(
        "lossless chaos reproduces baseline alarms bit-for-bit",
        alarms_identical(&baseline.alarms, &lossless_run.alarms),
    );
    check(
        "lossless chaos quarantines nothing",
        lossless_run.ingest.quarantined == 0,
    );

    // Corruption sweep: recall/precision of alarmed DIMMs vs. baseline.
    println!("\n      rate   recall  precision  alarms  rejected  dup  quarantined  stale");
    let mut worst_recall = 1.0f64;
    for (k, &rate) in rates.iter().enumerate() {
        let cfg = ChaosConfig::hostile_at(seed.wrapping_add(k as u64), rate);
        let (hostile, _) = inject_chaos(&clean, &cfg);
        let out = run_hardened(&lake, &registry, platform, &hostile, end);
        let got = alarmed_dimms(&out.alarms);
        let hit = base_dimms.intersection(&got).count();
        let recall = if base_dimms.is_empty() {
            1.0
        } else {
            hit as f64 / base_dimms.len() as f64
        };
        let precision = if got.is_empty() {
            1.0
        } else {
            hit as f64 / got.len() as f64
        };
        worst_recall = worst_recall.min(recall);
        println!(
            "      {rate:<6.2} {recall:<7.3} {precision:<10.3} {:<7} {:<9} {:<4} {:<12} {}",
            out.alarms.len(),
            out.ingest.rejected,
            out.ingest.duplicates,
            out.ingest.quarantined,
            out.stale_rejected,
        );
    }
    check(
        &format!("alarm recall stays above the {min_recall:.2} floor at every rate"),
        worst_recall >= min_recall,
    );

    // The hardened path reported itself into the process-wide registry.
    let snap = mfp_obs::global().snapshot();
    check(
        "ingestion telemetry reaches the global registry",
        snap.counter("ingest_received") > 0 && snap.counter("ingest_released") > 0,
    );
    println!(
        "      telemetry: ingest_received={} ingest_duplicates={} ingest_quarantined={} online_degraded_scores={}",
        snap.counter("ingest_received"),
        snap.counter("ingest_duplicates"),
        snap.counter("ingest_quarantined"),
        snap.counter("online_degraded_scores"),
    );
    println!("\nChaos end-to-end: all stages passed (worst recall {worst_recall:.3}).");
}
