//! Regenerates Fig. 5: UE rate bucketed by accumulated error-DQ / error-
//! beat counts and intervals on the Intel platforms, with Finding 3.
//!
//! `cargo run --release -p mfp-bench --bin fig5 [scale]` (default 10).

use mfp_bench::report::{paper, print_table};
use mfp_core::study::error_bit_analysis;
use mfp_dram::geometry::Platform;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet (seed 42)...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 42));

    for platform in [Platform::IntelPurley, Platform::IntelWhitley] {
        for panel in error_bit_analysis(&fleet, platform) {
            let max_pct = panel
                .buckets
                .iter()
                .filter(|b| b.1 >= 10)
                .map(|b| b.3)
                .fold(0.0f64, f64::max);
            let rows: Vec<Vec<String>> = panel
                .buckets
                .iter()
                .filter(|b| b.1 >= 10)
                .map(|(bucket, n, _ue, pctv)| {
                    let marker = if (*pctv - max_pct).abs() < 1e-9 && max_pct > 0.0 {
                        " <- highest"
                    } else {
                        ""
                    };
                    vec![
                        bucket.to_string(),
                        n.to_string(),
                        format!("{pctv:.1}%"),
                        format!("{}{marker}", "#".repeat((pctv / 2.0).round() as usize)),
                    ]
                })
                .collect();
            print_table(
                &format!("Fig. 5 — {platform}: UE rate by {}", panel.statistic),
                &["value", "DIMMs", "UE rate", ""],
                &[6, 7, 8, 40],
                &rows,
            );
        }
    }

    println!("\nFinding 3 (paper reference):");
    for (p, note) in paper::FIG5_NOTES {
        println!("  {p}: {note}");
    }
}
