//! Feature-family ablation: drops one family at a time from the LightGBM
//! model and reports the F1 impact — quantifying §VI's observation that
//! error-bit and fault-analysis features carry most of the signal while
//! workload/static features play a minor role.
//!
//! `cargo run --release -p mfp-bench --bin ablation_features [scale]`

use mfp_bench::report::{m2, print_table};
use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_ml::metrics::{best_vote_threshold, dimm_level_vote, Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet (seed 42)...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 42));
    let cfg = ExperimentConfig::default();
    let platform = Platform::IntelPurley;
    let splits = build_splits(&fleet, platform, &cfg);

    let evaluate = |fit: &mfp_features::dataset::SampleSet,
                    val: &mfp_features::dataset::SampleSet,
                    test: &mfp_features::dataset::SampleSet|
     -> Evaluation {
        let model = Model::train_seeded(Algorithm::LightGbm, fit, cfg.seed);
        let val_scores = model.predict_set(val);
        let th = best_vote_threshold(val, &val_scores, cfg.votes);
        let test_scores = model.predict_set(test);
        let (y_true, y_pred) = dimm_level_vote(test, &test_scores, th, cfg.votes);
        Evaluation::from_confusion(Confusion::from_predictions(&y_true, &y_pred), th)
    };

    let full = evaluate(&splits.fit, &splits.validation, &splits.test);
    let mut rows = vec![vec![
        "(all features)".to_string(),
        m2(full.precision),
        m2(full.recall),
        m2(full.f1),
        String::new(),
    ]];
    for family in FeatureFamily::ALL {
        let fit = ablate_family(&splits.fit, family);
        let val = ablate_family(&splits.validation, family);
        let test = ablate_family(&splits.test, family);
        let e = evaluate(&fit, &val, &test);
        rows.push(vec![
            format!("- {}", family.label()),
            m2(e.precision),
            m2(e.recall),
            m2(e.f1),
            format!("{:+.2}", e.f1 - full.f1),
        ]);
    }
    print_table(
        "Feature-family ablation (LightGBM, Intel Purley)",
        &["features", "precision", "recall", "F1", "dF1"],
        &[16, 10, 7, 6, 6],
        &rows,
    );
    println!("\nExpected shape: removing error-bit features hurts most — they");
    println!("are the paper's core signal. The remaining families are largely");
    println!("redundant with them (removing one can even help at small fleet");
    println!("scales by reducing overfitting), consistent with [27]'s finding");
    println!("that non-CE features play a minor role.");
}
