//! Durability benchmark and crash-replay identity gate for the
//! write-ahead-logged serving engine (`mfp_mlops::wal`): measures the
//! WAL's logging overhead against the bare sequential predictor, then
//! truncates the log at sampled byte offsets — simulated crashes — and
//! requires recovery + resume to reproduce the baseline alarm log
//! bit-for-bit. A machine-readable baseline is written to
//! `BENCH_wal.json`; any divergence exits non-zero.
//!
//! `cargo run --release -p mfp-bench --bin wal_replay -- \
//!     [--dimms 2000] [--horizon-days 30] [--seed 29] [--shards 2] \
//!     [--batch 256] [--compact-every 64] [--cuts 8] [--out BENCH_wal.json]`

use mfp_bench::report::baseline::{config_hash, num};
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_sim::config::FleetConfig;
use mfp_sim::sharded::{ShardConfig, ShardedFleet};
use std::path::PathBuf;
use std::time::Instant;

/// The calibrated Purley sub-fleet rescaled to roughly `dimms` DIMMs.
fn purley_fleet(dimms: usize, horizon_days: u64, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1.0, seed);
    cfg.platforms.retain(|p| p.platform == Platform::IntelPurley);
    let total: usize = cfg
        .platforms
        .iter()
        .map(|p| p.dimms_with_ces + p.sudden_only_dimms)
        .sum();
    let ratio = dimms as f64 / total as f64;
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = ((pc.dimms_with_ces as f64 * ratio).round() as usize).max(1);
        pc.sudden_only_dimms = (pc.sudden_only_dimms as f64 * ratio).round() as usize;
    }
    cfg.horizon = SimDuration::days(horizon_days);
    cfg
}

/// SplitMix64 for seed-derived cut offsets.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mfp_wal_replay_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn main() {
    let mut dimms = 2_000usize;
    let mut horizon_days = 30u64;
    let mut seed = 29u64;
    let mut shards = 2usize;
    let mut batch = 256usize;
    let mut compact_every = 64u64;
    let mut cuts = 8usize;
    let mut out = String::from("BENCH_wal.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--dimms" => dimms = value().parse().expect("--dimms takes an integer"),
            "--horizon-days" => {
                horizon_days = value().parse().expect("--horizon-days takes an integer");
            }
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            "--shards" => shards = value().parse().expect("--shards takes an integer"),
            "--batch" => batch = value().parse().expect("--batch takes an integer"),
            "--compact-every" => {
                compact_every = value().parse().expect("--compact-every takes an integer");
            }
            "--cuts" => cuts = value().parse().expect("--cuts takes an integer"),
            "--out" => out = value(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let fleet_cfg = purley_fleet(dimms, horizon_days, seed);
    let online_cfg = OnlineConfig::default();
    let ingest_cfg = IngestConfig::default();
    let durable_cfg = DurableConfig {
        batch,
        compact_every,
        ..DurableConfig::default()
    };
    let cfg_hash = config_hash(&format!(
        "{fleet_cfg:?}|{online_cfg:?}|{ingest_cfg:?}|{durable_cfg:?}|shards={shards}"
    ));

    // One simulated, hardened-ingested output stream shared by all runs.
    let planned = ShardedFleet::plan(&fleet_cfg);
    let lake = DataLake::new();
    for (id, p, spec) in planned.catalog() {
        lake.register_dimm(id, p, spec);
    }
    let mut events: Vec<MemEvent> = Vec::new();
    planned.run_stream(&ShardConfig::default(), |e| events.push(e));
    let end = events
        .last()
        .map_or(SimTime::ZERO + fleet_cfg.horizon, |e| {
            SimTime::from_secs(e.time().as_secs()) + SimDuration::days(2)
        });
    let mut outs: Vec<IngestOutput> = Vec::new();
    ingest_bounded(
        &lake,
        ingest_cfg,
        4,
        256,
        |emit| {
            for e in &events {
                emit(*e);
            }
        },
        |o| outs.push(o),
    );
    println!(
        "wal_replay: {} dimms, {} events, {} ingest outputs, seed {seed}",
        planned.dimm_count(),
        events.len(),
        outs.len(),
    );

    let registry = ModelRegistry::new();
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);

    // Bare sequential baseline: no durability, just prediction.
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut seq = OnlinePredictor::new(&lake, &store, &registry, Platform::IntelPurley, online_cfg);
    let t0 = Instant::now();
    for o in &outs {
        seq.apply(o);
    }
    seq.finish(end);
    let seq_secs = t0.elapsed().as_secs_f64();
    let ref_alarms = seq.alarms().to_vec();
    println!(
        "  bare:    {:>9} outputs, {:>5} alarms in {seq_secs:>7.2}s ({:.0} outputs/s)",
        outs.len(),
        ref_alarms.len(),
        outs.len() as f64 / seq_secs.max(1e-9),
    );

    // Durable run with compaction: the WAL's logging overhead.
    let durable_dir = scratch("durable");
    let stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
    let (mut durable, _) = DurableOnline::open(
        &durable_dir,
        &lake,
        &stores,
        &registry,
        Platform::IntelPurley,
        online_cfg,
        durable_cfg,
    )
    .expect("open durable engine");
    let t1 = Instant::now();
    for o in &outs {
        durable.push(*o).expect("wal push");
    }
    durable.finish(end).expect("wal finish");
    let wal_secs = t1.elapsed().as_secs_f64();
    let wal_alarms = durable.alarms();
    let wal_len = std::fs::metadata(durable_dir.join("wal.log")).map_or(0, |m| m.len());
    let overhead = wal_secs / seq_secs.max(1e-9);
    drop(durable);
    println!(
        "  durable: {:>9} outputs, {:>5} alarms in {wal_secs:>7.2}s ({overhead:.2}x bare, \
         compacted wal {wal_len} bytes)",
        outs.len(),
        wal_alarms.len(),
    );
    if wal_alarms != ref_alarms {
        eprintln!("FAIL: durable run diverged from the bare sequential baseline");
        std::process::exit(1);
    }

    // Full-coverage WAL for the crash gate (compaction off so every cut
    // offset exercises replay, not checkpoint restore alone).
    let full_dir = scratch("full");
    let full_stores = make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
    let nocompact = DurableConfig {
        batch,
        compact_every: u64::MAX,
        ..DurableConfig::default()
    };
    let (mut writer, _) = DurableOnline::open(
        &full_dir,
        &lake,
        &full_stores,
        &registry,
        Platform::IntelPurley,
        online_cfg,
        nocompact,
    )
    .expect("open full-wal engine");
    for o in &outs {
        writer.push(*o).expect("wal push");
    }
    writer.flush().expect("wal flush");
    drop(writer);
    let image = std::fs::read(full_dir.join("wal.log")).expect("read wal image");

    // Crash at `cuts` seed-derived offsets: recover, resume, compare.
    let mut rng = seed;
    let mut replay_secs: Vec<f64> = Vec::new();
    let mut replayed_total = 0u64;
    let mut identical = true;
    for k in 0..cuts {
        let cut = (splitmix(&mut rng) % (image.len() as u64 + 1)) as usize;
        let crash_dir = scratch(&format!("cut{k}"));
        std::fs::write(crash_dir.join("wal.log"), &image[..cut]).expect("write truncated wal");
        let crash_stores =
            make_stores(shards, ProblemConfig::default(), FaultThresholds::default());
        let t = Instant::now();
        let (mut resumed, report) = DurableOnline::open(
            &crash_dir,
            &lake,
            &crash_stores,
            &registry,
            Platform::IntelPurley,
            online_cfg,
            nocompact,
        )
        .expect("recover from truncated wal");
        let replay = t.elapsed().as_secs_f64();
        replay_secs.push(replay);
        replayed_total += report.outputs_replayed;
        let covered = resumed.applied() as usize;
        for o in &outs[covered..] {
            resumed.push(*o).expect("resume push");
        }
        resumed.finish(end).expect("resume finish");
        let ok = resumed.alarms() == ref_alarms;
        println!(
            "  cut {k}: offset {cut:>9} → {:>7} replayed, {:>5} torn bytes, \
             replay {replay:>6.3}s, identical {ok}",
            report.outputs_replayed, report.torn_tail_bytes,
        );
        identical &= ok;
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
    let _ = std::fs::remove_dir_all(&durable_dir);
    let _ = std::fs::remove_dir_all(&full_dir);

    let mean_replay = replay_secs.iter().sum::<f64>() / replay_secs.len().max(1) as f64;
    let max_replay = replay_secs.iter().cloned().fold(0.0f64, f64::max);
    let replay_outputs_per_sec = if mean_replay > 0.0 {
        (replayed_total as f64 / cuts.max(1) as f64) / mean_replay
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"bench\": \"wal_replay\",\n  \"dimms\": {},\n  \"events\": {},\n  \
         \"outputs\": {},\n  \"horizon_days\": {horizon_days},\n  \"seed\": {seed},\n  \
         \"shards\": {shards},\n  \"batch\": {batch},\n  \"compact_every\": {compact_every},\n  \
         \"config_hash\": \"{cfg_hash}\",\n  \"baseline\": {{\"wall_secs\": {}, \
         \"outputs_per_sec\": {}, \"alarms\": {}}},\n  \"durable\": {{\"wall_secs\": {}, \
         \"outputs_per_sec\": {}, \"overhead_x\": {}, \"compacted_wal_bytes\": {wal_len}}},\n  \
         \"recovery\": {{\"cuts\": {cuts}, \"wal_bytes\": {}, \"identical\": {identical}, \
         \"mean_replay_secs\": {}, \"max_replay_secs\": {}, \
         \"replay_outputs_per_sec\": {}}}\n}}\n",
        planned.dimm_count(),
        events.len(),
        outs.len(),
        num(seq_secs),
        num(outs.len() as f64 / seq_secs.max(1e-9)),
        ref_alarms.len(),
        num(wal_secs),
        num(outs.len() as f64 / wal_secs.max(1e-9)),
        num(overhead),
        image.len(),
        num(mean_replay),
        num(max_replay),
        num(replay_outputs_per_sec),
    );
    std::fs::write(&out, &json).expect("write baseline json");
    if !identical {
        eprintln!("FAIL: crash recovery diverged from the uncrashed baseline");
        std::process::exit(1);
    }
    println!("all {cuts} crash cuts recovered bit-identically; wrote {out}");
}
