//! Serving-scale benchmark for the sharded online engine
//! (`mfp_mlops::serve`): throughput and score latency across a
//! shard × worker matrix, with a bit-identity gate against the
//! sequential predictor on every cell and a machine-readable baseline
//! written to `BENCH_serve.json`.
//!
//! `cargo run --release -p mfp-bench --bin serve_scale -- \
//!     [--dimms 20000] [--matrix 1x1,2x2,4x4,8x4] \
//!     [--horizon-days 30] [--seed 23] [--out BENCH_serve.json]`
//!
//! The fleet is the calibrated Purley sub-population rescaled to
//! `--dimms` (the serving engine — like [`OnlinePredictor`] — is
//! single-platform; other platforms would run their own pipeline). The
//! sequential baseline drives one predictor through the same hardened
//! ingest path the pipeline uses, so every matrix cell is an
//! apples-to-apples comparison and must reproduce the baseline alarm
//! log bit-for-bit or the binary exits non-zero.
//!
//! Speedup numbers are only meaningful on a multi-core host — the JSON
//! records `cores` so a single-core CI value is never mistaken for a
//! regression. The identity check is the point on any host.

use mfp_bench::report::baseline::{config_hash, num};
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_sim::config::FleetConfig;
use mfp_sim::sharded::{ShardConfig, ShardedFleet};
use std::time::Instant;

/// The calibrated Purley sub-fleet rescaled to roughly `dimms` DIMMs.
fn purley_fleet(dimms: usize, horizon_days: u64, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1.0, seed);
    cfg.platforms.retain(|p| p.platform == Platform::IntelPurley);
    let total: usize = cfg
        .platforms
        .iter()
        .map(|p| p.dimms_with_ces + p.sudden_only_dimms)
        .sum();
    let ratio = dimms as f64 / total as f64;
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = ((pc.dimms_with_ces as f64 * ratio).round() as usize).max(1);
        pc.sudden_only_dimms = (pc.sudden_only_dimms as f64 * ratio).round() as usize;
    }
    cfg.horizon = SimDuration::days(horizon_days);
    cfg
}

struct CellReport {
    shards: usize,
    workers: usize,
    wall_secs: f64,
    events_per_sec: f64,
    speedup: f64,
    p50_score_us: f64,
    p99_score_us: f64,
    identical: bool,
}

fn main() {
    let mut dimms = 20_000usize;
    let mut matrix: Vec<(usize, usize)> = vec![(1, 1), (2, 2), (4, 4), (8, 4)];
    let mut horizon_days = 30u64;
    let mut seed = 23u64;
    let mut out = String::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--dimms" => dimms = value().parse().expect("--dimms takes an integer"),
            "--matrix" => {
                matrix = value()
                    .split(',')
                    .map(|cell| {
                        let (s, w) = cell
                            .trim()
                            .split_once('x')
                            .expect("--matrix takes SHARDSxWORKERS cells");
                        (
                            s.parse().expect("--matrix shard count"),
                            w.parse().expect("--matrix worker count"),
                        )
                    })
                    .collect();
            }
            "--horizon-days" => {
                horizon_days = value().parse().expect("--horizon-days takes an integer");
            }
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            "--out" => out = value(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fleet_cfg = purley_fleet(dimms, horizon_days, seed);
    let online_cfg = OnlineConfig::default();
    let ingest_cfg = IngestConfig::default();
    let cfg_hash = config_hash(&format!("{fleet_cfg:?}|{online_cfg:?}|{ingest_cfg:?}"));

    // One simulated event stream, shared by every run: the catalog comes
    // from the plan, the events from the deterministic sharded merge.
    let planned = ShardedFleet::plan(&fleet_cfg);
    let lake = DataLake::new();
    for (id, p, spec) in planned.catalog() {
        lake.register_dimm(id, p, spec);
    }
    let mut events: Vec<MemEvent> = Vec::new();
    planned.run_stream(&ShardConfig::default(), |e| events.push(e));
    let end = events
        .last()
        .map_or(SimTime::ZERO + fleet_cfg.horizon, |e| {
            SimTime::from_secs(e.time().as_secs()) + SimDuration::days(2)
        });
    println!(
        "serve_scale: {} dimms, {} events, {horizon_days}-day horizon, seed {seed} ({cores} cores available)",
        planned.dimm_count(),
        events.len(),
    );

    // The pattern model the paper deploys first: deterministic, so the
    // benchmark needs no training phase.
    let registry = ModelRegistry::new();
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);

    // Sequential baseline: one predictor behind the same hardened ingest
    // the pipeline uses.
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut seq =
        OnlinePredictor::new(&lake, &store, &registry, Platform::IntelPurley, online_cfg);
    let t0 = Instant::now();
    let seq_stats = ingest_bounded(
        &lake,
        ingest_cfg,
        4,
        256,
        |emit| {
            for e in &events {
                emit(*e);
            }
        },
        |out| match out {
            IngestOutput::Released(e) => {
                seq.observe(&e);
            }
            IngestOutput::Gap(g) => seq.note_gap(g.dimm),
        },
    );
    seq.finish(end);
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_alarms = seq.alarms().to_vec();
    let seq_eps = seq_stats.released as f64 / seq_secs.max(1e-9);
    println!(
        "  sequential: {:>9} released, {:>6} alarms in {seq_secs:>7.2}s ({:.0} events/s)",
        seq_stats.released,
        seq_alarms.len(),
        seq_eps,
    );

    println!(
        "  {:<8} {:<8} {:>9} {:>8} {:>11} {:>11} {:>10}",
        "shards", "workers", "secs", "speedup", "p50(us)", "p99(us)", "identical"
    );
    let mut cells: Vec<CellReport> = Vec::new();
    for &(shards, workers) in &matrix {
        let scfg = ServeConfig {
            online: online_cfg,
            ..ServeConfig::new(shards, workers)
        };
        let t = Instant::now();
        let outcome = serve_pipeline(
            &lake,
            &registry,
            Platform::IntelPurley,
            ProblemConfig::default(),
            FaultThresholds::default(),
            ingest_cfg,
            &scfg,
            end,
            |emit| {
                for e in &events {
                    emit(*e);
                }
            },
        );
        let secs = t.elapsed().as_secs_f64();
        let identical = outcome.alarms == seq_alarms
            && outcome.ingest.released == seq_stats.released;
        let cell = CellReport {
            shards,
            workers,
            wall_secs: secs,
            events_per_sec: outcome.ingest.released as f64 / secs.max(1e-9),
            speedup: seq_secs / secs.max(1e-9),
            p50_score_us: outcome.stats.p50_score_secs * 1e6,
            p99_score_us: outcome.stats.p99_score_secs * 1e6,
            identical,
        };
        println!(
            "  {:<8} {:<8} {:>9.2} {:>7.2}x {:>11.2} {:>11.2} {:>10}",
            cell.shards,
            cell.workers,
            cell.wall_secs,
            cell.speedup,
            cell.p50_score_us,
            cell.p99_score_us,
            cell.identical,
        );
        if !identical {
            eprintln!(
                "FAIL: sharded serving diverged from the sequential baseline at \
                 {shards} shards / {workers} workers"
            );
            std::process::exit(1);
        }
        cells.push(cell);
    }

    let runs: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"shards\": {}, \"workers\": {}, \"wall_secs\": {}, \
                 \"events_per_sec\": {}, \"speedup\": {}, \"p50_score_us\": {}, \
                 \"p99_score_us\": {}, \"identical\": {}}}",
                c.shards,
                c.workers,
                num(c.wall_secs),
                num(c.events_per_sec),
                num(c.speedup),
                num(c.p50_score_us),
                num(c.p99_score_us),
                c.identical,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_scale\",\n  \"dimms\": {},\n  \"events\": {},\n  \
         \"horizon_days\": {horizon_days},\n  \"seed\": {seed},\n  \"cores\": {cores},\n  \
         \"config_hash\": \"{cfg_hash}\",\n  \"baseline\": {{\"wall_secs\": {}, \
         \"events_per_sec\": {}, \"alarms\": {}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        planned.dimm_count(),
        events.len(),
        num(seq_secs),
        num(seq_eps),
        seq_alarms.len(),
        runs.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write baseline json");
    println!("all sharded runs bit-identical to the sequential baseline; wrote {out}");
}
