//! Quick calibration check: Table-I-shaped statistics from ground truth.
use mfp_dram::geometry::Platform;
use mfp_sim::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20.0);
    let cfg = FleetConfig::calibrated(scale, 42);
    let t0 = std::time::Instant::now();
    let fleet = mfp_sim::fleet::simulate_fleet(&cfg);
    eprintln!("simulated {} dimms, {} events in {:?}", fleet.dimms.len(), fleet.log.len(), t0.elapsed());
    for p in Platform::ALL {
        let dimms: Vec<_> = fleet.platform_dimms(p).collect();
        let with_ces = dimms.iter().filter(|d| d.has_ces()).count();
        let with_ue: Vec<_> = dimms.iter().filter(|d| d.first_ue().is_some()).collect();
        let predictable = with_ue.iter().filter(|d| d.outcome.logged_ces > 0).count();
        let sudden = with_ue.len() - predictable;
        println!(
            "{:<14} ce_dimms={:<6} ue_dimms={:<5} ue_rate={:.2}% predictable={:.0}% sudden={:.0}%",
            p.to_string(), with_ces, with_ue.len(),
            100.0 * with_ue.len() as f64 / with_ces.max(1) as f64,
            100.0 * predictable as f64 / with_ue.len().max(1) as f64,
            100.0 * sudden as f64 / with_ue.len().max(1) as f64,
        );
        // fault mode attribution among UE dimms with CEs
        use std::collections::BTreeMap;
        let mut modes: BTreeMap<String, usize> = BTreeMap::new();
        for d in &with_ue {
            for m in &d.fault_modes { *modes.entry(m.to_string()).or_default() += 1; }
        }
        println!("   UE dimm fault modes: {:?}", modes);
    }
}
