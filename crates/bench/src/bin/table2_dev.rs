//! Development harness for Table II: trains all four algorithms per
//! platform and prints DIMM-level precision/recall/F1/VIRR.
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::prelude::*;
use mfp_ml::prelude::*;
use mfp_sim::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20.0);
    let cfg = if scale == 0.0 { FleetConfig::experiment(42) } else { FleetConfig::calibrated(scale, 42) };
    let t0 = std::time::Instant::now();
    let fleet = mfp_sim::fleet::simulate_fleet(&cfg);
    eprintln!("fleet: {} events in {:?}", fleet.log.len(), t0.elapsed());

    let problem = ProblemConfig::default();
    let th = FaultThresholds::default();
    let t_fit = SimTime::ZERO + SimDuration::days(105);
    let t_val = SimTime::ZERO + SimDuration::days(188);

    for p in Platform::ALL {
        let t1 = std::time::Instant::now();
        let all = build_samples(&fleet, p, &problem, &th);
        let (fitval, test) = all.split_by_time(t_val);
        let (fit, val) = fitval.split_by_time(t_fit);
        let fit_ds = fit.downsample_negatives(8);
        eprintln!(
            "{p}: samples={} fit={} (pos {}) val={} test={} (pos dimm-lvl ...) built in {:?}",
            all.len(), fit_ds.len(), fit_ds.positives(), val.len(), test.len(), t1.elapsed()
        );
        for algo in Algorithm::ALL {
            if algo == Algorithm::FtTransformer && std::env::var("SKIP_FT").is_ok() { continue; }
            let tt = std::time::Instant::now();
            // FT gets a smaller training set for tractability.
            let train = if algo == Algorithm::FtTransformer {
                fit_ds.downsample_negatives(3)
            } else {
                fit_ds.clone()
            };
            let model = Model::train(algo, &train);
            let val_scores = model.predict_set(&val);
            let votes: usize = std::env::var("VOTES").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
            let threshold = best_vote_threshold(&val, &val_scores, votes);
            let test_scores = model.predict_set(&test);
            let (y_true, y_pred) = dimm_level_vote(&test, &test_scores, threshold, votes);
            let eval = Evaluation::from_confusion(
                Confusion::from_predictions(&y_true, &y_pred),
                threshold,
            );
            // FP breakdown by ground-truth category.
            use std::collections::BTreeMap;
            let mut fp_cats: BTreeMap<String, usize> = BTreeMap::new();
            {
                let mut dimm_ids: Vec<_> = test.dimms.clone();
                dimm_ids.sort_unstable();
                dimm_ids.dedup();
                for (k, id) in dimm_ids.iter().enumerate() {
                    if y_pred[k] && !y_true[k] {
                        if let Some(truth) = fleet.dimms.iter().find(|d| d.id == *id) {
                            let stalled = truth.category == DimmCategory::Degrading
                                && truth.first_ue().is_none();
                            let label = if stalled { "stalled".to_string() }
                                else { format!("{:?}", truth.category) };
                            *fp_cats.entry(label).or_default() += 1;
                        }
                    }
                }
            }
            println!(
                "{:<14} {:<22} P={:.2} R={:.2} F1={:.2} VIRR={:.2}  (th={:.3}, tp={} fp={} fn={}) fps={:?} [{:?}]",
                p.to_string(), algo.label(), eval.precision, eval.recall, eval.f1, eval.virr,
                threshold, eval.confusion.tp, eval.confusion.fp, eval.confusion.fn_, fp_cats, tt.elapsed()
            );
        }
    }
}
