//! Feature-importance report: which feature families drive the LightGBM
//! model per platform — the "feature importance" gauge the paper's
//! monitoring dashboards track (§VII), and indirect evidence for Finding 3
//! (error-bit features dominate on every platform, with platform-specific
//! members at the top).
//!
//! `cargo run --release -p mfp-bench --bin feature_importance [scale]`

use mfp_bench::report::print_table;
use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_ml::model::{Algorithm, Model};
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet (seed 42)...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 42));
    let cfg = ExperimentConfig::default();

    for platform in Platform::ALL {
        let splits = build_splits(&fleet, platform, &cfg);
        let model = Model::train_seeded(Algorithm::LightGbm, &splits.fit, cfg.seed);
        let imp = model.feature_importance().expect("gbdt has importance");
        let mut ranked: Vec<(String, f64)> = splits
            .fit
            .schema
            .iter()
            .cloned()
            .zip(imp.iter().copied())
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        let rows: Vec<Vec<String>> = ranked
            .iter()
            .take(10)
            .map(|(name, v)| {
                let family = FeatureFamily::ALL
                    .iter()
                    .find(|f| f.contains(name))
                    .map(|f| f.label())
                    .unwrap_or("?");
                vec![
                    name.clone(),
                    format!("{:.1}%", v * 100.0),
                    family.to_string(),
                    "#".repeat((v * 200.0).round() as usize),
                ]
            })
            .collect();
        print_table(
            &format!("Top-10 LightGBM features — {platform}"),
            &["feature", "gain share", "family", ""],
            &[24, 11, 12, 25],
            &rows,
        );

        // Family aggregation.
        let mut family_share = vec![0.0f64; FeatureFamily::ALL.len()];
        for (name, v) in &ranked {
            for (k, fam) in FeatureFamily::ALL.iter().enumerate() {
                if fam.contains(name) {
                    family_share[k] += v;
                }
            }
        }
        print!("  family shares:");
        for (fam, share) in FeatureFamily::ALL.iter().zip(&family_share) {
            print!("  {}={:.0}%", fam.label(), share * 100.0);
        }
        println!();
    }
}
