//! SIGKILL-chaos gate and benchmark for process-isolated serving
//! (`mfp_mlops::procserve`): simulates a Purley sub-fleet, runs one
//! worker **process** per shard behind the `MFP1` pipe protocol, and
//! subjects the fleet to seeded schedules of real `SIGKILL`s (with torn
//! WAL tails), hangs and injected apply panics. The merged alarms and
//! scores must reproduce the uncrashed sequential oracle bit-for-bit at
//! every shard count in {1, 2, 4}. Restart/kill/replay counts and
//! timings land in `BENCH_procfail.json`; any divergence exits
//! non-zero.
//!
//! This binary is also its own worker: when re-executed with
//! `--shard-worker` (or the `MFP_SHARD_WORKER` env marker) it becomes a
//! shard worker process instead of the gate driver.
//!
//! `cargo run --release -p mfp-bench --bin procfail_chaos -- \
//!     [--dimms 400] [--horizon-days 14] [--seed 31] [--schedules 2] \
//!     [--chaos-events 5] [--batch 32] [--out BENCH_procfail.json]`

use mfp_bench::report::baseline::{config_hash, num};
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_ml::risky_ce::RiskyCePattern;
use mfp_mlops::prelude::*;
use mfp_sim::config::FleetConfig;
use mfp_sim::sharded::{ShardConfig, ShardedFleet};
use std::path::PathBuf;
use std::time::Instant;

/// The calibrated Purley sub-fleet rescaled to roughly `dimms` DIMMs.
fn purley_fleet(dimms: usize, horizon_days: u64, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::calibrated(1.0, seed);
    cfg.platforms
        .retain(|p| p.platform == Platform::IntelPurley);
    let total: usize = cfg
        .platforms
        .iter()
        .map(|p| p.dimms_with_ces + p.sudden_only_dimms)
        .sum();
    let ratio = dimms as f64 / total as f64;
    for pc in &mut cfg.platforms {
        pc.dimms_with_ces = ((pc.dimms_with_ces as f64 * ratio).round() as usize).max(1);
        pc.sudden_only_dimms = (pc.sudden_only_dimms as f64 * ratio).round() as usize;
    }
    cfg.horizon = SimDuration::days(horizon_days);
    cfg
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mfp_procfail_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn main() {
    // Worker mode: the ProcSupervisor re-execs this binary for each
    // shard. Must run before any flag parsing.
    if std::env::var_os(WORKER_ENV).is_some()
        || std::env::args().nth(1).as_deref() == Some("--shard-worker")
    {
        std::process::exit(shard_worker_main());
    }

    let mut dimms = 400usize;
    let mut horizon_days = 14u64;
    let mut seed = 31u64;
    let mut schedules = 2usize;
    let mut chaos_events = 5usize;
    let mut batch = 32usize;
    let mut out = String::from("BENCH_procfail.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--dimms" => dimms = value().parse().expect("--dimms takes an integer"),
            "--horizon-days" => {
                horizon_days = value().parse().expect("--horizon-days takes an integer");
            }
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            "--schedules" => schedules = value().parse().expect("--schedules takes an integer"),
            "--chaos-events" => {
                chaos_events = value().parse().expect("--chaos-events takes an integer");
            }
            "--batch" => batch = value().parse().expect("--batch takes an integer"),
            "--out" => out = value(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let fleet_cfg = purley_fleet(dimms, horizon_days, seed);
    let online_cfg = OnlineConfig::default();
    let ingest_cfg = IngestConfig::default();
    // Score tracing on so the gate compares full traces, not just
    // alarms; compaction off keeps WAL replay (the recovery path this
    // gate measures) rather than checkpoint restore in the loop.
    let durable_cfg = DurableConfig {
        batch,
        compact_every: u64::MAX,
        record_scores: true,
        ..DurableConfig::default()
    };
    let proc_cfg = ProcConfig {
        batch,
        ..ProcConfig::default()
    };
    let cfg_hash = config_hash(&format!(
        "{fleet_cfg:?}|{online_cfg:?}|{ingest_cfg:?}|{durable_cfg:?}|{proc_cfg:?}|\
         schedules={schedules}|chaos_events={chaos_events}"
    ));

    // One simulated, hardened-ingested output stream shared by all runs.
    let planned = ShardedFleet::plan(&fleet_cfg);
    let lake = DataLake::new();
    let mut catalog: Vec<(DimmId, DimmSpec)> = Vec::new();
    for (id, p, spec) in planned.catalog() {
        lake.register_dimm(id, p, spec);
        catalog.push((id, spec));
    }
    let mut events: Vec<MemEvent> = Vec::new();
    planned.run_stream(&ShardConfig::default(), |e| events.push(e));
    let end = events
        .last()
        .map_or(SimTime::ZERO + fleet_cfg.horizon, |e| {
            SimTime::from_secs(e.time().as_secs()) + SimDuration::days(2)
        });
    let mut outs: Vec<IngestOutput> = Vec::new();
    ingest_bounded(
        &lake,
        ingest_cfg,
        4,
        256,
        |emit| {
            for e in &events {
                emit(*e);
            }
        },
        |o| outs.push(o),
    );
    println!(
        "procfail_chaos: {} dimms, {} events, {} ingest outputs, seed {seed}",
        planned.dimm_count(),
        events.len(),
        outs.len(),
    );

    let registry = ModelRegistry::new();
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);

    // The uncrashed sequential oracle.
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    let mut seq = OnlinePredictor::new(&lake, &store, &registry, Platform::IntelPurley, online_cfg);
    seq.set_score_trace(true);
    let t0 = Instant::now();
    for o in &outs {
        seq.apply(o);
    }
    seq.finish(end);
    let seq_secs = t0.elapsed().as_secs_f64();
    let ref_alarms = seq.alarms().to_vec();
    let ref_scores = seq.score_trace().to_vec();
    let ref_scored = seq.scored();
    println!(
        "  oracle:  {:>9} outputs, {:>5} alarms, {:>9} scored in {seq_secs:>7.2}s",
        outs.len(),
        ref_alarms.len(),
        ref_scored,
    );

    let command = WorkerCommand::current_exe().expect("resolve current binary");

    // The gate: {1, 2, 4} worker processes x `schedules` seeded chaos
    // schedules, each mixing real SIGKILLs (with torn WAL tails), hangs
    // and transient apply panics across the run. WAL replay is the
    // recovery path: `replayed_outputs` below counts outputs re-applied
    // from per-shard logs, and the per-run wall time includes every
    // spawn + replay + re-feed cycle — compare `mean_run_secs` against
    // `oracle.wall_secs` for the recovery overhead.
    let mut identical = true;
    let mut run_secs: Vec<f64> = Vec::new();
    let mut restarts = 0u64;
    let mut spawns = 0u64;
    let mut sigkills = 0u64;
    let mut heartbeat_misses = 0u64;
    let mut panics_caught = 0u64;
    let mut hangs_detected = 0u64;
    let mut kills_injected = 0u64;
    let mut replayed_outputs = 0u64;
    let mut quarantined = 0u64;
    let mut runs = 0usize;
    for &shards in &[1usize, 2, 4] {
        for k in 0..schedules {
            let chaos_seed = seed ^ ((shards as u64) << 32) ^ (k as u64);
            let plan = ChaosPlan::seeded(chaos_seed, shards, outs.len(), chaos_events, 2);
            let dir = scratch(&format!("s{shards}k{k}"));
            let sup = ProcSupervisor::new(
                &dir,
                command.clone(),
                shards,
                Platform::IntelPurley,
                online_cfg,
                durable_cfg,
                ProblemConfig::default(),
                FaultThresholds::default(),
                ModelSpec::default_risky_ce(),
                catalog.clone(),
                proc_cfg,
            )
            .expect("open proc supervisor");
            let t = Instant::now();
            let outcome = sup.run(&outs, end, &plan).expect("process-supervised run");
            let secs = t.elapsed().as_secs_f64();
            run_secs.push(secs);
            let ok = outcome.alarms == ref_alarms
                && outcome.scores == ref_scores
                && outcome.scored == ref_scored
                && outcome.live_shards == shards;
            println!(
                "  shards {shards} schedule {k}: {:>2} restarts, {:>2} sigkills, {:>2} hangs, \
                 {:>2} panics, {:>7} replayed in {secs:>6.2}s, identical {ok}",
                outcome.report.restarts,
                outcome.report.sigkills,
                outcome.report.hangs_detected,
                outcome.report.panics_caught,
                outcome.report.replayed_outputs,
            );
            identical &= ok;
            restarts += outcome.report.restarts;
            spawns += outcome.report.spawns;
            sigkills += outcome.report.sigkills;
            heartbeat_misses += outcome.report.heartbeat_misses;
            panics_caught += outcome.report.panics_caught;
            hangs_detected += outcome.report.hangs_detected;
            kills_injected += outcome.report.kills_injected;
            replayed_outputs += outcome.report.replayed_outputs;
            quarantined += outcome.report.quarantined.len() as u64;
            runs += 1;
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let mean_run = run_secs.iter().sum::<f64>() / run_secs.len().max(1) as f64;
    let max_run = run_secs.iter().cloned().fold(0.0f64, f64::max);
    let json = format!(
        "{{\n  \"bench\": \"procfail_chaos\",\n  \"dimms\": {},\n  \"events\": {},\n  \
         \"outputs\": {},\n  \"horizon_days\": {horizon_days},\n  \"seed\": {seed},\n  \
         \"schedules\": {schedules},\n  \"chaos_events\": {chaos_events},\n  \
         \"batch\": {batch},\n  \"config_hash\": \"{cfg_hash}\",\n  \
         \"oracle\": {{\"wall_secs\": {}, \"alarms\": {}, \"scored\": {ref_scored}}},\n  \
         \"chaos\": {{\"runs\": {runs}, \"identical\": {identical}, \"restarts\": {restarts}, \
         \"spawns\": {spawns}, \"sigkills\": {sigkills}, \"heartbeat_misses\": {heartbeat_misses}, \
         \"kills_injected\": {kills_injected}, \"hangs_detected\": {hangs_detected}, \
         \"panics_caught\": {panics_caught}, \"replayed_outputs\": {replayed_outputs}, \
         \"quarantined\": {quarantined}, \"mean_run_secs\": {}, \"max_run_secs\": {}}},\n  \
         \"note\": \"mean_run_secs includes every spawn + MFW2 WAL-replay + re-feed recovery \
cycle; compare against oracle.wall_secs for the process-supervision and replay overhead\"\n}}\n",
        planned.dimm_count(),
        events.len(),
        outs.len(),
        num(seq_secs),
        ref_alarms.len(),
        num(mean_run),
        num(max_run),
    );
    std::fs::write(&out, &json).expect("write baseline json");
    if !identical {
        eprintln!("FAIL: a process-supervised chaos run diverged from the uncrashed oracle");
        std::process::exit(1);
    }
    println!("all {runs} chaos schedules recovered bit-identically; wrote {out}");
}
