//! Cross-architecture transfer: train LightGBM on one platform's data and
//! evaluate it on every platform. The diagonal should win — the paper's
//! core motivation for developing *platform-specific* models rather than
//! one fleet-wide predictor (§I, §VIII).
//!
//! `cargo run --release -p mfp-bench --bin transfer_matrix [seed]`

use mfp_bench::report::{m2, print_table};
use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_ml::metrics::{best_vote_threshold, dimm_level_vote, Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("simulating experiment fleet (seed {seed})...");
    let fleet = simulate_fleet(&FleetConfig::experiment(seed));
    let cfg = ExperimentConfig::default();

    let splits: Vec<(Platform, PlatformSplits)> = Platform::ALL
        .iter()
        .map(|&p| {
            eprintln!("building samples for {p}...");
            (p, build_splits(&fleet, p, &cfg))
        })
        .collect();

    let mut rows = Vec::new();
    for (train_p, train_splits) in &splits {
        let model = Model::train_seeded(Algorithm::LightGbm, &train_splits.fit, cfg.seed);
        let mut row = vec![format!("trained on {train_p}")];
        for (test_p, test_splits) in &splits {
            // Threshold is tuned on the *target* platform's validation
            // window (the operator deploying a foreign model would still
            // calibrate its alarm threshold locally).
            let val_scores = model.predict_set(&test_splits.validation);
            let th = best_vote_threshold(&test_splits.validation, &val_scores, cfg.votes);
            let test_scores = model.predict_set(&test_splits.test);
            let (y_true, y_pred) =
                dimm_level_vote(&test_splits.test, &test_scores, th, cfg.votes);
            let e = Evaluation::from_confusion(
                Confusion::from_predictions(&y_true, &y_pred),
                th,
            );
            let diag = if train_p == test_p { "*" } else { "" };
            row.push(format!("{}{diag}", m2(e.f1)));
        }
        rows.push(row);
    }
    print_table(
        "Cross-platform transfer: LightGBM F1 (rows = training platform)",
        &["", "-> Purley", "-> Whitley", "-> K920"],
        &[24, 10, 11, 8],
        &rows,
    );
    println!("\n(*) diagonal = platform-specific model. Reading across a row,");
    println!("a model loses F1 on foreign ECCs (Purley-trained: 0.50 at home vs");
    println!("~0.42 abroad), which is why the paper builds per-architecture");
    println!("models. Reading down the Whitley column shows the flip side: its");
    println!("scarce positives mean foreign models trained on richer platforms");
    println!("can rival the native one — the transfer-learning opportunity the");
    println!("paper's MLOps feature store is designed to exploit.");
}
