//! Sample-level diagnostic: AUC + PR for RF vs GBDT on one platform.
use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::prelude::*;
use mfp_ml::prelude::*;
use mfp_ml::metrics::roc_auc;
use mfp_sim::prelude::*;


fn main() {
    let cfg = FleetConfig::calibrated(20.0, 42);
    let fleet = mfp_sim::fleet::simulate_fleet(&cfg);
    let problem = ProblemConfig::default();
    let th = FaultThresholds::default();
    let p = Platform::IntelPurley;
    let all = build_samples(&fleet, p, &problem, &th);
    let (fitval, test) = all.split_by_time(SimTime::ZERO + SimDuration::days(160));
    let (fit, _val) = fitval.split_by_time(SimTime::ZERO + SimDuration::days(120));
    let fit_ds = fit.downsample_negatives(8);
    eprintln!("fit {} pos {} | test {} pos {}", fit_ds.len(), fit_ds.positives(), test.len(), test.positives());
    for algo in [Algorithm::RandomForest, Algorithm::LightGbm] {
        let model = Model::train(algo, &fit_ds);
        let s_fit = model.predict_set(&fit_ds);
        let s_test = model.predict_set(&test);
        let th_s = best_f1_threshold(&test.labels, &s_test);
        let preds: Vec<bool> = s_test.iter().map(|&x| x >= th_s).collect();
        let c = Confusion::from_predictions(&test.labels, &preds);
        println!("{:<16} fitAUC={:.3} testAUC={:.3} | sample-best P={:.2} R={:.2} F1={:.2}",
            algo.label(), roc_auc(&fit_ds.labels, &s_fit), roc_auc(&test.labels, &s_test),
            c.precision(), c.recall(), c.f1());
    }
}
