//! RAS mitigation ablation (paper §II-C): reruns the fleet with page
//! offlining + PPR enabled and compares UE incidence and CE volume against
//! the unmitigated fleet — quantifying why sparing "limits universal
//! applicability" and failure prediction is still needed.
//!
//! `cargo run --release -p mfp-bench --bin ablation_ras [scale]`

use mfp_bench::report::print_table;
use mfp_dram::geometry::Platform;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use mfp_sim::ras::{AdddcPolicy, RasPolicy};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20.0);
    eprintln!("simulating 1:{scale:.0}-scale fleets with and without RAS...");
    let base_cfg = FleetConfig::calibrated(scale, 42);
    let mut ras_cfg = base_cfg.clone();
    ras_cfg.ras = Some(RasPolicy::default());
    let mut adddc_cfg = base_cfg.clone();
    adddc_cfg.ras = Some(RasPolicy {
        adddc: Some(AdddcPolicy::default()),
        ..Default::default()
    });

    let base = simulate_fleet(&base_cfg);
    let ras = simulate_fleet(&ras_cfg);
    let adddc = simulate_fleet(&adddc_cfg);

    let mut rows = Vec::new();
    for p in Platform::ALL {
        let stat = |fleet: &mfp_sim::fleet::FleetResult| {
            let dimms: Vec<_> = fleet.platform_dimms(p).collect();
            let ue = dimms.iter().filter(|d| d.first_ue().is_some()).count();
            let ces: u32 = dimms.iter().map(|d| d.outcome.logged_ces).sum();
            let repairs: u32 = dimms.iter().map(|d| d.outcome.ras.ppr_repairs).sum();
            let offlined: u32 = dimms.iter().map(|d| d.outcome.ras.pages_offlined).sum();
            let mitigated: u32 = dimms.iter().map(|d| d.outcome.ras.faults_mitigated).sum();
            (ue, ces, repairs, offlined, mitigated)
        };
        let (ue0, ce0, ..) = stat(&base);
        let (ue1, ce1, ppr, off, mit) = stat(&ras);
        let (ue2, _, ..) = stat(&adddc);
        let engaged = adddc
            .platform_dimms(p)
            .filter(|d| d.outcome.adddc_engaged)
            .count();
        rows.push(vec![
            p.to_string(),
            format!("{ue0} -> {ue1} -> {ue2}"),
            format!("{ce0} -> {ce1}"),
            ppr.to_string(),
            off.to_string(),
            mit.to_string(),
            engaged.to_string(),
        ]);
    }
    print_table(
        "RAS ablation: none -> +offline/PPR -> +ADDDC",
        &["platform", "UE DIMMs", "logged CEs", "PPR", "pages off", "faults killed", "ADDDC"],
        &[14, 18, 22, 6, 10, 13, 6],
        &rows,
    );
    println!("\nRow-confined faults get repaired or retired (CE volume drops),");
    println!("but column/bank/device faults — the dominant UE causes — survive");
    println!("page offlining. ADDDC virtual lockstep additionally absorbs");
    println!("single-chip degradation (strongest on Purley, whose weakened");
    println!("beats it restores), yet multi-device faults still get through:");
    println!("prediction remains necessary.");
}
