//! Regenerates Table II: precision / recall / F1 / VIRR of the four
//! algorithms on the three platforms, with the paper's numbers inline and
//! Finding 4 at the end.
//!
//! `cargo run --release -p mfp-bench --bin table2 [--skip-ft] [seed]`
//! Runtime: ~3 min without the FT-Transformer, ~10 min with it.

use mfp_bench::report::{m2, paper, print_table};
use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_ml::model::Algorithm;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let skip_ft = args.iter().any(|a| a == "--skip-ft");
    let seed: u64 = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    eprintln!("simulating experiment fleet (seed {seed})...");
    let fleet = simulate_fleet(&FleetConfig::experiment(seed));
    let cfg = ExperimentConfig::default();

    let mut best_f1: Vec<(Platform, f64)> = Vec::new();
    for platform in Platform::ALL {
        eprintln!("building samples for {platform}...");
        let splits = build_splits(&fleet, platform, &cfg);
        eprintln!(
            "  fit {} samples ({} pos) | val {} | test {}",
            splits.fit.len(),
            splits.fit.positives(),
            splits.validation.len(),
            splits.test.len()
        );
        let mut rows = Vec::new();
        let mut best = 0.0f64;
        for algo in Algorithm::ALL {
            if algo == Algorithm::FtTransformer && skip_ft {
                continue;
            }
            let t0 = std::time::Instant::now();
            let res = evaluate_algorithm(algo, &splits, platform, &cfg);
            let e = res.evaluation;
            best = best.max(e.f1);
            let paper_cell = paper::table2(algo, platform);
            let fmt_pair = |ours: f64, reference: Option<f64>| match reference {
                Some(r) => format!("{} / {}", m2(ours), m2(r)),
                None => format!("{} / X", m2(ours)),
            };
            rows.push(vec![
                algo.label().to_string(),
                fmt_pair(e.precision, paper_cell.map(|c| c.0)),
                fmt_pair(e.recall, paper_cell.map(|c| c.1)),
                fmt_pair(e.f1, paper_cell.map(|c| c.2)),
                fmt_pair(e.virr, paper_cell.map(|c| c.3)),
                format!("{:.0?}", t0.elapsed()),
            ]);
        }
        print_table(
            &format!("Table II — {platform} (measured / paper)"),
            &["algorithm", "precision", "recall", "F1", "VIRR", "train+eval"],
            &[22, 13, 13, 13, 13, 10],
            &rows,
        );
        best_f1.push((platform, best));
    }

    println!("\nFinding 4: prediction efficacy varies across platforms.");
    for (p, f1) in &best_f1 {
        println!("  best F1 on {p}: {f1:.2}");
    }
    println!("  (paper: Purley 0.64, Whitley 0.50, K920 0.54 — Whitley weakest)");

    // Where the time went: decode cache efficiency, per-algorithm train
    // and inference latency, sample-assembly throughput.
    println!("\n-- telemetry snapshot (JSON) --");
    println!("{}", mfp_obs::global().snapshot().to_json());
}
