//! Regenerates Fig. 4: relative % of UE per observed fault mode and
//! platform, with Finding 2 alongside.
//!
//! `cargo run --release -p mfp-bench --bin fig4 [scale]` (default 1:10).

use mfp_bench::report::print_table;
use mfp_core::study::relative_ue_by_fault_mode;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet (seed 42)...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 42));
    let rates = relative_ue_by_fault_mode(&fleet, &FaultThresholds::default());

    for platform_rates in &rates {
        let rows: Vec<Vec<String>> = platform_rates
            .rates
            .iter()
            .map(|(label, n, ue, pctv)| {
                vec![
                    label.clone(),
                    n.to_string(),
                    ue.to_string(),
                    format!("{pctv:.1}%"),
                    "#".repeat((pctv / 2.0).round() as usize),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 4 — {}: relative % of UE by fault mode", platform_rates.platform),
            &["fault mode", "DIMMs", "UE DIMMs", "UE rate", ""],
            &[15, 7, 9, 8, 30],
            &rows,
        );
    }

    // Finding 2: single- vs multi-device attribution of UEs.
    println!("\nFinding 2: UE attribution by device dimension (UE DIMM counts)");
    for platform_rates in &rates {
        let ue_of = |label: &str| {
            platform_rates
                .rates
                .iter()
                .find(|(l, ..)| l == label)
                .map(|&(_, _, ue, _)| ue)
                .unwrap_or(0)
        };
        println!(
            "  {:<14} single-device: {:<5} multi-device: {}",
            platform_rates.platform.to_string(),
            ue_of("single-device"),
            ue_of("multi-device")
        );
    }
    println!("  (paper: single-device dominates on Purley; multi-device on Whitley and K920)");
}
