//! Report formatting shared by the experiment binaries: fixed-width tables
//! and the paper's reference numbers for side-by-side comparison.

use mfp_dram::geometry::Platform;
use mfp_ml::model::Algorithm;

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], widths: &[usize], rows: &[Vec<String>]) {
    assert_eq!(headers.len(), widths.len());
    println!("\n== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(widths) {
        line.push_str(&format!("{h:<w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(widths) {
            out.push_str(&format!("{cell:<w$} ", w = w));
        }
        println!("{out}");
    }
}

/// Formats a ratio as a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{x:.0}%")
}

/// Formats a metric to two decimals.
pub fn m2(x: f64) -> String {
    format!("{x:.2}")
}

/// Machine-readable perf baselines (`BENCH_*.json` at the repo root).
///
/// The workspace deliberately has no JSON dependency, so the scale
/// binaries hand-roll their reports from these primitives; the config
/// hash lets a regression be split into "config drifted" vs "code got
/// slower".
pub mod baseline {
    /// FNV-1a over a config's `Debug` rendering: stable for a fixed
    /// config, cheap, and dependency-free. Not cryptographic — it only
    /// needs to *distinguish* configs across bench runs.
    pub fn config_hash(debug_repr: &str) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in debug_repr.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Formats an `f64` as a JSON number (non-finite values become
    /// `null`, which valid JSON has no number for).
    pub fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.6}")
        } else {
            "null".to_string()
        }
    }
}

/// Paper reference values for side-by-side "paper vs measured" rows.
pub mod paper {
    use super::*;

    /// Table I reference: `(platform, predictable %, sudden %)`.
    pub const TABLE1: [(Platform, f64, f64); 3] = [
        (Platform::IntelPurley, 73.0, 27.0),
        (Platform::IntelWhitley, 42.0, 58.0),
        (Platform::K920, 82.0, 18.0),
    ];

    /// Table II reference: precision, recall, F1, VIRR per cell; `None`
    /// entries are the paper's `X` cells.
    pub fn table2(algorithm: Algorithm, platform: Platform) -> Option<(f64, f64, f64, f64)> {
        use Algorithm::*;
        use Platform::*;
        match (algorithm, platform) {
            (RiskyCePattern, IntelPurley) => Some((0.53, 0.46, 0.49, 0.37)),
            (RiskyCePattern, _) => None,
            (RandomForest, IntelPurley) => Some((0.61, 0.62, 0.61, 0.52)),
            (RandomForest, IntelWhitley) => Some((0.34, 0.46, 0.39, 0.32)),
            (RandomForest, K920) => Some((0.44, 0.51, 0.47, 0.39)),
            (LightGbm, IntelPurley) => Some((0.54, 0.80, 0.64, 0.65)),
            (LightGbm, IntelWhitley) => Some((0.46, 0.54, 0.49, 0.45)),
            (LightGbm, K920) => Some((0.51, 0.57, 0.54, 0.46)),
            (FtTransformer, IntelPurley) => Some((0.49, 0.74, 0.59, 0.58)),
            (FtTransformer, IntelWhitley) => Some((0.53, 0.49, 0.50, 0.40)),
            (FtTransformer, K920) => Some((0.40, 0.54, 0.46, 0.41)),
        }
    }

    /// Fig. 5 headline: the risky signatures per platform.
    pub const FIG5_NOTES: [(&str, &str); 2] = [
        (
            "Intel Purley",
            "peak UE rate at 2 error DQs / 2 error beats / 4-beat interval",
        ),
        (
            "Intel Whitley",
            "peak UE rate at 4 error DQs / 5 error beats; intervals not significant",
        ),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_covers_all_ml_cells() {
        for algo in [
            Algorithm::RandomForest,
            Algorithm::LightGbm,
            Algorithm::FtTransformer,
        ] {
            for p in Platform::ALL {
                assert!(paper::table2(algo, p).is_some(), "{algo} {p}");
            }
        }
        assert!(paper::table2(Algorithm::RiskyCePattern, Platform::K920).is_none());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(73.2), "73%");
        assert_eq!(m2(0.615), "0.61");
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        let a = baseline::config_hash("FleetConfig { seed: 1 }");
        assert_eq!(a, baseline::config_hash("FleetConfig { seed: 1 }"));
        assert_ne!(a, baseline::config_hash("FleetConfig { seed: 2 }"));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn json_numbers_are_always_valid() {
        assert_eq!(baseline::num(1.5), "1.500000");
        assert_eq!(baseline::num(f64::NAN), "null");
        assert_eq!(baseline::num(f64::INFINITY), "null");
    }
}
