//! # mfp-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`table1`, `fig4`, `fig5`, `table2`, `virr_model`, `windows_sweep`,
//! `ablation_features`, `mlops_e2e`), plus Criterion micro-benchmarks in
//! `benches/`. Binaries print "paper vs measured" rows wherever the paper
//! reports a number.
pub mod report;
