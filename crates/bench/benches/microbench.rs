//! Criterion micro-benchmarks over the workspace's hot paths: ECC decode
//! throughput per scheme, fleet-simulation event throughput, feature
//! extraction, and model training/inference latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, Platform};
use mfp_ecc::prelude::*;
use mfp_features::prelude::*;
use mfp_ml::prelude::*;
use mfp_sim::prelude::*;
use std::hint::black_box;

fn ecc_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc_decode");
    let single_bit = ErrorTransfer::from_bits([(1, 21)]);
    let device_burst: ErrorTransfer =
        ErrorTransfer::from_bits((0..8u8).flat_map(|b| (20..24u8).map(move |q| (b, q))));
    let multi_device = {
        let mut t = ErrorTransfer::from_bits([(2, 0), (2, 1)]);
        t.set(2, 36);
        t
    };
    for (name, t) in [
        ("single_bit", &single_bit),
        ("whole_device", &device_burst),
        ("multi_device", &multi_device),
    ] {
        for p in Platform::ALL {
            let ecc = PlatformEcc::for_platform(p);
            g.bench_function(format!("{}/{name}", p.code()), |b| {
                b.iter(|| black_box(ecc.decode(black_box(t), DataWidth::X4)))
            });
            let cached = CachedPlatformEcc::for_platform(p);
            g.bench_function(format!("{}/{name}/cached", p.code()), |b| {
                b.iter(|| black_box(cached.decode(black_box(t), DataWidth::X4)))
            });
        }
    }
    g.finish();
}

fn secded_and_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codes");
    let hsiao = Hsiao7264::new();
    g.bench_function("hsiao_decode_double", |b| {
        b.iter(|| black_box(hsiao.decode_error(black_box(0b11 << 20))))
    });
    let rs = RsCode::new(&mfp_ecc::gf::GF256, 18, 16);
    let mut e = [0u8; 18];
    e[7] = 0x5A;
    g.bench_function("rs_decode_single_symbol", |b| {
        b.iter(|| black_box(rs.decode_error(black_box(&e))))
    });
    g.finish();
}

fn fleet_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("smoke_fleet", |b| {
        b.iter(|| black_box(simulate_fleet(&FleetConfig::smoke(7))))
    });
    g.finish();
}

fn features_and_models(c: &mut Criterion) {
    let fleet = simulate_fleet(&FleetConfig::smoke(7));
    let problem = ProblemConfig::default();
    let th = FaultThresholds::default();

    let mut g = c.benchmark_group("features");
    g.sample_size(10);
    g.bench_function("build_samples_purley", |b| {
        b.iter(|| {
            black_box(build_samples(
                &fleet,
                Platform::IntelPurley,
                &problem,
                &th,
            ))
        })
    });
    g.finish();

    let set = build_samples(&fleet, Platform::IntelPurley, &problem, &th)
        .downsample_negatives(8);
    let mut g = c.benchmark_group("models");
    g.sample_size(10);
    g.bench_function("train_random_forest", |b| {
        b.iter_batched(
            || set.clone(),
            |s| black_box(Model::train(Algorithm::RandomForest, &s)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("train_lightgbm", |b| {
        b.iter_batched(
            || set.clone(),
            |s| black_box(Model::train(Algorithm::LightGbm, &s)),
            BatchSize::LargeInput,
        )
    });
    let gbdt = Model::train(Algorithm::LightGbm, &set);
    let rf = Model::train(Algorithm::RandomForest, &set);
    let row = set.row(0).to_vec();
    g.bench_function("infer_lightgbm", |b| {
        b.iter(|| black_box(gbdt.predict_proba(black_box(&row))))
    });
    g.bench_function("infer_random_forest", |b| {
        b.iter(|| black_box(rf.predict_proba(black_box(&row))))
    });
    g.finish();
}

fn sample_assembly(c: &mut Criterion) {
    let fleet = simulate_fleet(&FleetConfig::smoke(7));
    let problem = ProblemConfig::default();
    let th = FaultThresholds::default();
    let by_dimm = fleet.log.by_dimm();

    let mut g = c.benchmark_group("sample_assembly");
    g.sample_size(10);

    // Per-DIMM extraction: batch rescans every window at every sample time;
    // streaming advances each window once. Same output, different cost.
    g.bench_function("extract_batch", |b| {
        b.iter(|| {
            for truth in fleet.platform_dimms(Platform::IntelPurley) {
                let Some(events) = by_dimm.get(&truth.id) else {
                    continue;
                };
                let history = DimmHistory::new(events);
                for t in problem.sample_times(&history, fleet.config.horizon) {
                    black_box(extract_features(&history, &truth.spec, t, &problem, &th));
                }
            }
        })
    });
    g.bench_function("extract_streaming", |b| {
        b.iter(|| {
            for truth in fleet.platform_dimms(Platform::IntelPurley) {
                let Some(events) = by_dimm.get(&truth.id) else {
                    continue;
                };
                let history = DimmHistory::new(events);
                let times = problem.sample_times(&history, fleet.config.horizon);
                let mut stream = FeatureStream::new(history, &truth.spec, &problem, &th);
                for t in times {
                    black_box(stream.features_at(t));
                }
            }
        })
    });
    // Same pass with per-DIMM buffers recycled through a StreamArena
    // instead of reallocated (the dataset-assembly configuration).
    g.bench_function("extract_streaming_arena", |b| {
        b.iter(|| {
            let mut arena = StreamArena::default();
            for truth in fleet.platform_dimms(Platform::IntelPurley) {
                let Some(events) = by_dimm.get(&truth.id) else {
                    continue;
                };
                let history = DimmHistory::new(events);
                let times = problem.sample_times(&history, fleet.config.horizon);
                let mut stream =
                    FeatureStream::with_arena(history, &truth.spec, &problem, &th, &mut arena);
                for t in times {
                    black_box(stream.features_at(t));
                }
                stream.recycle(&mut arena);
            }
        })
    });

    // Whole-fleet assembly at fixed worker counts (identical output).
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("build_samples_{workers}w"), |b| {
            b.iter(|| {
                black_box(build_samples_with_workers(
                    &fleet,
                    Platform::IntelPurley,
                    &problem,
                    &th,
                    workers,
                ))
            })
        });
    }

    // Telemetry overhead budget: the instrumented assembly path must cost
    // ≤2% over the same path with telemetry disabled (a handful of relaxed
    // atomic ops per whole-fleet call). Compare these two series.
    g.bench_function("build_samples_2w/telemetry_on", |b| {
        mfp_obs::set_enabled(true);
        b.iter(|| {
            black_box(build_samples_with_workers(
                &fleet,
                Platform::IntelPurley,
                &problem,
                &th,
                2,
            ))
        })
    });
    g.bench_function("build_samples_2w/telemetry_off", |b| {
        mfp_obs::set_enabled(false);
        b.iter(|| {
            black_box(build_samples_with_workers(
                &fleet,
                Platform::IntelPurley,
                &problem,
                &th,
                2,
            ))
        });
        mfp_obs::set_enabled(true);
    });
    g.finish();
}

fn fleet_scale(c: &mut Criterion) {
    // Sequential vs. sharded whole-fleet simulation at fixed shard and
    // worker counts. The default fleet is deliberately modest so the group
    // runs everywhere; set MFP_BENCH_FLEET_SCALE (a `calibrated` divisor,
    // e.g. 50) to benchmark a bigger fleet on a real multi-core host.
    let scale: f64 = std::env::var("MFP_BENCH_FLEET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200.0);
    let cfg = FleetConfig::calibrated(scale.max(1.0), 7);

    let mut g = c.benchmark_group("fleet_scale");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(simulate_fleet(black_box(&cfg))))
    });
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("sharded_8x{workers}w"), |b| {
            let scfg = ShardConfig::new(8, workers);
            b.iter(|| black_box(simulate_fleet_sharded(black_box(&cfg), &scfg)))
        });
    }
    // Streaming merge without materializing the result: the shape the
    // bounded-ingest bridge sees.
    g.bench_function("sharded_8x2w_stream", |b| {
        let planned = ShardedFleet::plan(&cfg);
        let scfg = ShardConfig::new(8, 2);
        b.iter(|| {
            let mut n = 0u64;
            planned.run_stream(&scfg, |e| {
                n += black_box(&e).is_ue() as u64;
            });
            black_box(n)
        })
    });
    // The event-driven engine over the same fleet: identical stream
    // (gated elsewhere), but quiet time is skipped instead of ticked.
    for workers in [1usize, 4] {
        g.bench_function(format!("event_8x{workers}w"), |b| {
            let scfg = ShardConfig::new(8, workers);
            b.iter(|| black_box(simulate_fleet_events(black_box(&cfg), &scfg)))
        });
    }
    g.bench_function("event_8x2w_stream", |b| {
        let planned = EventFleet::plan(&cfg);
        let scfg = ShardConfig::new(8, 2);
        b.iter(|| {
            let mut n = 0u64;
            planned.run_stream(&scfg, |e| {
                n += black_box(&e).is_ue() as u64;
            });
            black_box(n)
        })
    });
    g.finish();
}

fn online_score(c: &mut Criterion) {
    use mfp_dram::event::MemEvent;
    use mfp_dram::time::{SimDuration, SimTime};
    use mfp_ml::metrics::{Confusion, Evaluation};
    use mfp_ml::risky_ce::RiskyCePattern;
    use mfp_mlops::prelude::*;

    // Purley slice of the smoke fleet behind a promoted pattern model:
    // the serving hot path with no training phase in the way.
    let fleet = simulate_fleet(&FleetConfig::smoke(7));
    let lake = DataLake::new();
    for t in &fleet.dimms {
        lake.register_dimm(t.id, t.platform, t.spec);
    }
    let registry = ModelRegistry::new();
    let eval = Evaluation::from_confusion(
        Confusion {
            tp: 1,
            fp: 0,
            fn_: 0,
            tn: 1,
        },
        0.5,
    );
    let mid = registry.register(
        Algorithm::RiskyCePattern,
        Platform::IntelPurley,
        SimTime::ZERO,
        eval,
        0.5,
        Model::RiskyCe(RiskyCePattern::default()),
    );
    registry.promote(mid);
    let events: Vec<MemEvent> = fleet
        .log
        .events()
        .iter()
        .filter(|e| lake.dimm_info(e.dimm()).map(|(p, _)| p) == Some(Platform::IntelPurley))
        .copied()
        .collect();
    let end = SimTime::ZERO + fleet.config.horizon + SimDuration::days(2);
    let problem = ProblemConfig::default();
    let th = FaultThresholds::default();

    let mut g = c.benchmark_group("online_score");
    g.sample_size(10);
    // The sequential fold: one predictor over the whole stream. This is
    // the series that guards the tick hot path (no per-tick clones of the
    // active set or cached feature rows).
    g.bench_function("sequential_observe", |b| {
        b.iter(|| {
            let store = FeatureStore::new(problem, th);
            let mut p = OnlinePredictor::new(
                &lake,
                &store,
                &registry,
                Platform::IntelPurley,
                OnlineConfig::default(),
            );
            for e in &events {
                p.observe(e);
            }
            p.finish(end);
            black_box(p.alarms().len())
        })
    });
    // The same stream through the full pipelined engine (ingest →
    // route → score → merge); identical alarms, threaded execution.
    for (shards, workers) in [(4usize, 2usize), (8, 4)] {
        g.bench_function(format!("pipeline_{shards}x{workers}w"), |b| {
            b.iter(|| {
                let outcome = serve_pipeline(
                    &lake,
                    &registry,
                    Platform::IntelPurley,
                    problem,
                    th,
                    IngestConfig::default(),
                    &ServeConfig::new(shards, workers),
                    end,
                    |emit| {
                        for e in &events {
                            emit(*e);
                        }
                    },
                );
                black_box(outcome.alarms.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ecc_decode,
    secded_and_rs,
    fleet_sim,
    features_and_models,
    sample_assembly,
    fleet_scale,
    online_score
);
criterion_main!(benches);
