//! The end-to-end façade: simulate a fleet, analyze it, train a predictor
//! and evaluate it — the five-line entry point of the README quickstart.

use crate::experiment::{build_splits, evaluate_algorithm, AlgoResult, ExperimentConfig};
use crate::study::{dataset_summary, DatasetRow};
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimDuration;
use mfp_ml::model::Algorithm;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::{simulate_fleet, FleetResult};

/// A configured memory-failure-prediction study.
///
/// # Examples
///
/// ```no_run
/// use mfp_core::pipeline::Study;
/// use mfp_dram::geometry::Platform;
/// use mfp_ml::model::Algorithm;
///
/// let study = Study::smoke(42);
/// let result = study.evaluate(Platform::IntelPurley, Algorithm::LightGbm);
/// println!("F1 = {:.2}", result.evaluation.f1);
/// ```
#[derive(Debug)]
pub struct Study {
    fleet: FleetResult,
    config: ExperimentConfig,
}

impl Study {
    /// Simulates a fleet with the given configuration.
    pub fn new(fleet_config: &FleetConfig, experiment: ExperimentConfig) -> Self {
        Study {
            fleet: simulate_fleet(fleet_config),
            config: experiment,
        }
    }

    /// A small, fast study for demos and tests.
    pub fn smoke(seed: u64) -> Self {
        let fleet_cfg = FleetConfig::smoke(seed);
        // The smoke fleet runs 120 days: shrink the protocol windows.
        let cfg = ExperimentConfig {
            fit_until: mfp_dram::time::SimTime::ZERO + SimDuration::days(50),
            validate_until: mfp_dram::time::SimTime::ZERO + SimDuration::days(80),
            ..Default::default()
        };
        Study::new(&fleet_cfg, cfg)
    }

    /// The paper-scale experiment study (per-platform scaled fleet).
    pub fn experiment(seed: u64) -> Self {
        Study::new(&FleetConfig::experiment(seed), ExperimentConfig::default())
    }

    /// The simulated fleet.
    pub fn fleet(&self) -> &FleetResult {
        &self.fleet
    }

    /// The experiment protocol.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Table I over this fleet.
    pub fn dataset_summary(&self) -> Vec<DatasetRow> {
        dataset_summary(&self.fleet, self.config.problem.lead)
    }

    /// Trains and evaluates one algorithm on one platform.
    pub fn evaluate(&self, platform: Platform, algorithm: Algorithm) -> AlgoResult {
        let splits = build_splits(&self.fleet, platform, &self.config);
        evaluate_algorithm(algorithm, &splits, platform, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_end_to_end() {
        let study = Study::smoke(21);
        let table1 = study.dataset_summary();
        assert_eq!(table1.len(), 3);
        let res = study.evaluate(Platform::IntelPurley, Algorithm::RiskyCePattern);
        assert_eq!(res.platform, Platform::IntelPurley);
        assert!(res.evaluation.f1 >= 0.0);
    }
}
