//! The paper's empirical analyses, computed from BMC logs alone (ground
//! truth is never consulted): Table I, Fig. 4 and Fig. 5.

use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::{DataWidth, Platform};
use mfp_dram::time::SimDuration;
use mfp_features::errorbits::ErrorBitStats;
use mfp_features::fault_analysis::{classify_ces, FaultThresholds, ObservedFaults};
use mfp_sim::fleet::FleetResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-platform Table I row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetRow {
    /// Platform.
    pub platform: Platform,
    /// DIMMs that logged at least one CE.
    pub dimms_with_ces: usize,
    /// DIMMs that logged a UE.
    pub dimms_with_ues: usize,
    /// Share of UE DIMMs with a CE at least `lead` before the UE.
    pub predictable_pct: f64,
    /// Share of UE DIMMs without such warning.
    pub sudden_pct: f64,
}

/// Computes Table I from the fleet's logs.
///
/// A UE is *predictable* when the DIMM logged at least one CE no later
/// than `lead` before the UE (default lead 3 h), matching the paper's
/// definition of UEs that "initially appear as CEs".
pub fn dataset_summary(fleet: &FleetResult, lead: SimDuration) -> Vec<DatasetRow> {
    let by_dimm = fleet.log.by_dimm();
    let platform_of: BTreeMap<DimmId, Platform> = fleet
        .dimms
        .iter()
        .map(|d| (d.id, d.platform))
        .collect();

    let mut rows: BTreeMap<Platform, (usize, usize, usize)> = Platform::ALL
        .iter()
        .map(|&p| (p, (0usize, 0usize, 0usize)))
        .collect();

    for (dimm, events) in &by_dimm {
        let Some(&platform) = platform_of.get(dimm) else {
            continue;
        };
        let entry = rows.get_mut(&platform).expect("platform row");
        let first_ue = events.iter().find(|e| e.is_ue()).map(|e| e.time());
        let has_ce = events.iter().any(|e| e.as_ce().is_some());
        if has_ce {
            entry.0 += 1;
        }
        if let Some(ue) = first_ue {
            entry.1 += 1;
            let warned = events
                .iter()
                .filter_map(|e| e.as_ce())
                .any(|ce| ce.time + lead <= ue);
            if warned {
                entry.2 += 1;
            }
        }
    }

    Platform::ALL
        .iter()
        .map(|&platform| {
            let (ces, ues, predictable) = rows[&platform];
            let p_pct = if ues > 0 {
                100.0 * predictable as f64 / ues as f64
            } else {
                0.0
            };
            DatasetRow {
                platform,
                dimms_with_ces: ces,
                dimms_with_ues: ues,
                predictable_pct: p_pct,
                sudden_pct: if ues > 0 { 100.0 - p_pct } else { 0.0 },
            }
        })
        .collect()
}

/// Fig. 4: relative UE rate per observed fault mode, one row per platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModeUeRates {
    /// Platform.
    pub platform: Platform,
    /// `(label, dimms classified, UE dimms among them, relative UE %)`,
    /// in [`ObservedFaults::LABELS`] order.
    pub rates: Vec<(String, usize, usize, f64)>,
}

/// Computes Fig. 4 from logs: classify every CE DIMM's fault modes from
/// its pre-UE CE history, then measure the share of each class that went
/// on to log a UE.
pub fn relative_ue_by_fault_mode(
    fleet: &FleetResult,
    thresholds: &FaultThresholds,
) -> Vec<FaultModeUeRates> {
    let by_dimm = fleet.log.by_dimm();
    let info: BTreeMap<DimmId, (Platform, DataWidth)> = fleet
        .dimms
        .iter()
        .map(|d| (d.id, (d.platform, d.spec.width)))
        .collect();

    let mut counts: BTreeMap<Platform, Vec<(usize, usize)>> = Platform::ALL
        .iter()
        .map(|&p| (p, vec![(0usize, 0usize); ObservedFaults::LABELS.len()]))
        .collect();

    for (dimm, events) in &by_dimm {
        let Some(&(platform, width)) = info.get(dimm) else {
            continue;
        };
        let first_ue = events.iter().find(|e| e.is_ue()).map(|e| e.time());
        let pre_ue_ces = events.iter().filter_map(|e| e.as_ce()).filter(|ce| {
            first_ue.is_none_or(|ue| ce.time < ue)
        });
        let faults = classify_ces(pre_ue_ces, width, thresholds);
        let flags = faults.flags();
        let has_ue = first_ue.is_some();
        let platform_counts = counts.get_mut(&platform).expect("platform");
        for (k, &flag) in flags.iter().enumerate() {
            if flag {
                platform_counts[k].0 += 1;
                if has_ue {
                    platform_counts[k].1 += 1;
                }
            }
        }
    }

    Platform::ALL
        .iter()
        .map(|&platform| {
            let rates = ObservedFaults::LABELS
                .iter()
                .zip(&counts[&platform])
                .map(|(label, &(n, ue))| {
                    let pct = if n > 0 { 100.0 * ue as f64 / n as f64 } else { 0.0 };
                    (label.to_string(), n, ue, pct)
                })
                .collect();
            FaultModeUeRates { platform, rates }
        })
        .collect()
}

/// One Fig. 5 panel: UE rate bucketed by an error-bit statistic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBitPanel {
    /// Platform.
    pub platform: Platform,
    /// Statistic name (e.g. `"error DQ count"`).
    pub statistic: String,
    /// `(bucket value, dimms, UE dimms, UE %)` ascending by bucket.
    pub buckets: Vec<(u32, usize, usize, f64)>,
}

/// Computes the four Fig. 5 panels (DQ count / DQ interval / beat count /
/// beat interval) for one platform's x4 DIMMs, from pre-UE CE history.
pub fn error_bit_analysis(
    fleet: &FleetResult,
    platform: Platform,
) -> Vec<ErrorBitPanel> {
    let by_dimm = fleet.log.by_dimm();
    let info: BTreeMap<DimmId, (Platform, DataWidth)> = fleet
        .dimms
        .iter()
        .map(|d| (d.id, (d.platform, d.spec.width)))
        .collect();

    // (dq count, dq interval, beat count, beat interval) -> (n, ue)
    let mut panels: [BTreeMap<u32, (usize, usize)>; 4] = Default::default();

    for (dimm, events) in &by_dimm {
        let Some(&(p, width)) = info.get(dimm) else {
            continue;
        };
        if p != platform || width != DataWidth::X4 {
            continue;
        }
        let first_ue = events.iter().find(|e| e.is_ue()).map(|e| e.time());
        let pre_ue_ces: Vec<_> = events
            .iter()
            .filter_map(|e| e.as_ce())
            .filter(|ce| first_ue.is_none_or(|ue| ce.time < ue))
            .collect();
        if pre_ue_ces.is_empty() {
            continue;
        }
        let stats = ErrorBitStats::from_ces(pre_ue_ces.iter().copied(), width);
        let has_ue = first_ue.is_some();
        // Bucket by the accumulated per-device footprint (the union view
        // matches how [7] and the paper build per-DIMM patterns).
        let keys = [
            stats.union_dev_dq,
            stats.union_dev_dq_interval,
            stats.union_dev_beats,
            stats.union_dev_beat_interval,
        ];
        for (panel, &key) in panels.iter_mut().zip(&keys) {
            let e = panel.entry(key).or_insert((0, 0));
            e.0 += 1;
            if has_ue {
                e.1 += 1;
            }
        }
    }

    let names = [
        "error DQ count",
        "DQ interval",
        "error beat count",
        "beat interval",
    ];
    panels
        .into_iter()
        .zip(names)
        .map(|(panel, name)| ErrorBitPanel {
            platform,
            statistic: name.to_string(),
            buckets: panel
                .into_iter()
                .map(|(k, (n, ue))| {
                    let pct = if n > 0 { 100.0 * ue as f64 / n as f64 } else { 0.0 };
                    (k, n, ue, pct)
                })
                .collect(),
        })
        .collect()
}

/// Returns the CE events of `events` (helper shared by analyses).
pub fn ces_of<'a>(events: &'a [&'a MemEvent]) -> impl Iterator<Item = &'a mfp_dram::event::CeEvent> {
    events.iter().filter_map(|e| e.as_ce())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_sim::config::FleetConfig;
    use mfp_sim::fleet::simulate_fleet;

    fn fleet() -> FleetResult {
        simulate_fleet(&FleetConfig::smoke(11))
    }

    #[test]
    fn table1_shape_matches_paper() {
        let f = fleet();
        let rows = dataset_summary(&f, SimDuration::hours(3));
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.dimms_with_ces > 0, "{}: no CE dimms", r.platform);
            assert!(
                r.dimms_with_ues < r.dimms_with_ces,
                "{}: UE dimms must be the minority",
                r.platform
            );
            assert!((r.predictable_pct + r.sudden_pct - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig4_rates_are_percentages() {
        let f = fleet();
        let rates = relative_ue_by_fault_mode(&f, &FaultThresholds::default());
        assert_eq!(rates.len(), 3);
        for platform_rates in &rates {
            assert_eq!(platform_rates.rates.len(), 6);
            for (label, n, ue, pct) in &platform_rates.rates {
                assert!(*pct >= 0.0 && *pct <= 100.0, "{label}: {pct}");
                assert!(ue <= n, "{label}");
            }
        }
    }

    #[test]
    fn fig5_panels_cover_statistics() {
        let f = fleet();
        let panels = error_bit_analysis(&f, Platform::IntelPurley);
        assert_eq!(panels.len(), 4);
        for p in &panels {
            assert!(!p.buckets.is_empty(), "{} empty", p.statistic);
            let total: usize = p.buckets.iter().map(|b| b.1).sum();
            assert!(total > 0);
        }
    }

    #[test]
    fn purley_single_device_dominates_ue_attribution() {
        // Finding 2 on a smoke fleet: among Purley UE DIMMs the
        // single-device share exceeds the multi-device share.
        let f = simulate_fleet(&FleetConfig::calibrated(100.0, 9));
        let rates = relative_ue_by_fault_mode(&f, &FaultThresholds::default());
        let purley = &rates[0];
        assert_eq!(purley.platform, Platform::IntelPurley);
        let ue_of = |label: &str| {
            purley
                .rates
                .iter()
                .find(|(l, ..)| l == label)
                .map(|&(_, _, ue, _)| ue)
                .unwrap()
        };
        assert!(
            ue_of("single-device") >= ue_of("multi-device"),
            "single {} vs multi {}",
            ue_of("single-device"),
            ue_of("multi-device")
        );
    }
}
