//! # mfp-core
//!
//! The unified API of the `memfault` workspace — everything needed to
//! reproduce *"Investigating Memory Failure Prediction Across CPU
//! Architectures"* (DSN 2024):
//!
//! * [`study`] — the empirical analyses computed from BMC logs: dataset
//!   summary (Table I), relative UE rate per fault mode (Fig. 4), and
//!   error-bit pattern analysis (Fig. 5).
//! * [`experiment`] — the prediction protocol behind Table II: time-based
//!   splits, DIMM-level alarm evaluation, and feature-family ablations.
//! * [`pipeline`] — the [`pipeline::Study`] façade tying simulation,
//!   analysis and prediction together.
//!
//! # Examples
//!
//! ```no_run
//! use mfp_core::prelude::*;
//! use mfp_dram::geometry::Platform;
//! use mfp_ml::model::Algorithm;
//!
//! let study = Study::smoke(42);
//! for row in study.dataset_summary() {
//!     println!("{}: {} CE DIMMs, {:.0}% predictable UEs",
//!              row.platform, row.dimms_with_ces, row.predictable_pct);
//! }
//! let r = study.evaluate(Platform::IntelPurley, Algorithm::LightGbm);
//! println!("LightGBM F1 on Purley: {:.2}", r.evaluation.f1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod pipeline;
pub mod study;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::experiment::{
        ablate_family, build_splits, evaluate_algorithm, run_table2, AlgoResult,
        ExperimentConfig, FeatureFamily, PlatformSplits,
    };
    pub use crate::pipeline::Study;
    pub use crate::study::{
        dataset_summary, error_bit_analysis, relative_ue_by_fault_mode, DatasetRow,
        ErrorBitPanel, FaultModeUeRates,
    };
}
