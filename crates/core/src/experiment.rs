//! The prediction experiment driver: the protocol behind Table II and the
//! ablation studies.

use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::dataset::{build_samples, build_samples_with_workers, SampleSet};
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_ml::metrics::{best_vote_threshold, dimm_level_vote, Confusion, Evaluation};
use mfp_ml::model::{Algorithm, Model};
use mfp_sim::fleet::FleetResult;
use serde::{Deserialize, Serialize};

/// Experiment protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Problem formulation (windows, lead time, sample grid).
    pub problem: ProblemConfig,
    /// Fault-classification thresholds.
    pub thresholds: FaultThresholds,
    /// End of the model-fitting period.
    pub fit_until: SimTime,
    /// End of the threshold-tuning (validation) period; test follows.
    pub validate_until: SimTime,
    /// Keep every `negative_keep`-th negative sample when fitting.
    pub negative_keep: usize,
    /// Extra negative thinning for the FT-Transformer (compute budget).
    pub ft_extra_keep: usize,
    /// Consecutive above-threshold scores required for a DIMM alarm.
    pub votes: usize,
    /// Training seed.
    pub seed: u64,
    /// Worker threads for sample assembly; 0 = one per available core.
    /// Output is bit-identical for every setting.
    #[serde(default)]
    pub assembly_workers: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            problem: ProblemConfig::default(),
            thresholds: FaultThresholds::default(),
            fit_until: SimTime::ZERO + SimDuration::days(105),
            validate_until: SimTime::ZERO + SimDuration::days(188),
            negative_keep: 8,
            ft_extra_keep: 3,
            votes: 2,
            seed: 17,
            assembly_workers: 0,
        }
    }
}

/// One Table II cell group: an algorithm's evaluation on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoResult {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Platform evaluated on.
    pub platform: Platform,
    /// DIMM-level evaluation on the test period.
    pub evaluation: Evaluation,
    /// Whether the paper reports this combination (`X` entries are absent
    /// for the rule-based baseline outside Purley).
    pub reported_in_paper: bool,
}

/// The materialized splits of one platform's data.
#[derive(Debug, Clone)]
pub struct PlatformSplits {
    /// Samples for model fitting (negatives downsampled).
    pub fit: SampleSet,
    /// Threshold-tuning window (full density).
    pub validation: SampleSet,
    /// Held-out test window (full density).
    pub test: SampleSet,
}

/// Builds fit/validation/test splits for one platform.
pub fn build_splits(
    fleet: &FleetResult,
    platform: Platform,
    cfg: &ExperimentConfig,
) -> PlatformSplits {
    let all = if cfg.assembly_workers == 0 {
        build_samples(fleet, platform, &cfg.problem, &cfg.thresholds)
    } else {
        build_samples_with_workers(
            fleet,
            platform,
            &cfg.problem,
            &cfg.thresholds,
            cfg.assembly_workers,
        )
    };
    let (fitval, test) = all.split_by_time(cfg.validate_until);
    let (fit_full, validation) = fitval.split_by_time(cfg.fit_until);
    PlatformSplits {
        fit: fit_full.downsample_negatives(cfg.negative_keep),
        validation,
        test,
    }
}

/// Trains one algorithm on prepared splits and evaluates it DIMM-level.
pub fn evaluate_algorithm(
    algorithm: Algorithm,
    splits: &PlatformSplits,
    platform: Platform,
    cfg: &ExperimentConfig,
) -> AlgoResult {
    let train = if algorithm == Algorithm::FtTransformer {
        splits.fit.downsample_negatives(cfg.ft_extra_keep)
    } else {
        splits.fit.clone()
    };
    let model = Model::train_seeded(algorithm, &train, cfg.seed);
    let val_scores = model.predict_set(&splits.validation);
    let threshold = best_vote_threshold(&splits.validation, &val_scores, cfg.votes);
    let test_scores = model.predict_set(&splits.test);
    let (y_true, y_pred) = dimm_level_vote(&splits.test, &test_scores, threshold, cfg.votes);
    let evaluation =
        Evaluation::from_confusion(Confusion::from_predictions(&y_true, &y_pred), threshold);
    AlgoResult {
        algorithm,
        platform,
        evaluation,
        reported_in_paper: algorithm != Algorithm::RiskyCePattern
            || platform == Platform::IntelPurley,
    }
}

/// Runs the full Table II protocol over all platforms and algorithms.
pub fn run_table2(
    fleet: &FleetResult,
    algorithms: &[Algorithm],
    cfg: &ExperimentConfig,
) -> Vec<AlgoResult> {
    let mut out = Vec::new();
    for &platform in &Platform::ALL {
        let splits = build_splits(fleet, platform, cfg);
        for &algorithm in algorithms {
            out.push(evaluate_algorithm(algorithm, &splits, platform, cfg));
        }
    }
    out
}

/// Feature families for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureFamily {
    /// Temporal CE counts / recency.
    Temporal,
    /// Spatial dispersion in the DRAM hierarchy.
    Spatial,
    /// Fault-mode flags.
    FaultModes,
    /// Error-bit (DQ/beat) statistics, per-event and accumulated.
    ErrorBits,
    /// Static DIMM configuration.
    Static,
}

impl FeatureFamily {
    /// All families.
    pub const ALL: [FeatureFamily; 5] = [
        FeatureFamily::Temporal,
        FeatureFamily::Spatial,
        FeatureFamily::FaultModes,
        FeatureFamily::ErrorBits,
        FeatureFamily::Static,
    ];

    /// Whether a feature (by schema name) belongs to the family.
    pub fn contains(self, name: &str) -> bool {
        match self {
            FeatureFamily::Temporal => {
                name.starts_with("ce_")
                    || name.starts_with("storms_")
                    || name.contains("since")
            }
            FeatureFamily::Spatial => {
                name.ends_with("_5d")
                    && (name.starts_with("banks")
                        || name.starts_with("rows")
                        || name.starts_with("cols")
                        || name.starts_with("cells")
                        || name.starts_with("max_cell"))
            }
            FeatureFamily::FaultModes => name.starts_with("fault_"),
            FeatureFamily::ErrorBits => name.starts_with("eb") || name.starts_with("trend_"),
            FeatureFamily::Static => {
                name.starts_with("mfr_")
                    || name.starts_with("process_")
                    || name == "width_x8"
                    || name == "freq_norm"
                    || name == "capacity_norm"
                    || name == "ranks"
            }
        }
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            FeatureFamily::Temporal => "temporal",
            FeatureFamily::Spatial => "spatial",
            FeatureFamily::FaultModes => "fault-modes",
            FeatureFamily::ErrorBits => "error-bits",
            FeatureFamily::Static => "static",
        }
    }
}

/// Returns a copy of `set` with one feature family zeroed out.
pub fn ablate_family(set: &SampleSet, family: FeatureFamily) -> SampleSet {
    let mut out = set.clone();
    let cols: Vec<usize> = set
        .schema
        .iter()
        .enumerate()
        .filter(|(_, n)| family.contains(n))
        .map(|(i, _)| i)
        .collect();
    let d = set.dim();
    for i in 0..out.len() {
        for &c in &cols {
            out.features[i * d + c] = 0.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_features::extract::feature_names;
    use mfp_sim::config::FleetConfig;
    use mfp_sim::fleet::simulate_fleet;

    #[test]
    fn every_feature_belongs_to_exactly_one_family() {
        for name in feature_names() {
            let n = FeatureFamily::ALL
                .iter()
                .filter(|f| f.contains(&name))
                .count();
            assert_eq!(n, 1, "{name} is in {n} families");
        }
    }

    #[test]
    fn ablation_zeroes_only_family_columns() {
        let fleet = simulate_fleet(&FleetConfig::smoke(3));
        let cfg = ExperimentConfig {
            fit_until: SimTime::ZERO + SimDuration::days(50),
            validate_until: SimTime::ZERO + SimDuration::days(80),
            ..Default::default()
        };
        let splits = build_splits(&fleet, Platform::IntelPurley, &cfg);
        let ablated = ablate_family(&splits.fit, FeatureFamily::Static);
        assert_eq!(ablated.len(), splits.fit.len());
        let d = splits.fit.dim();
        let names = feature_names();
        #[allow(clippy::needless_range_loop)]
        for i in 0..ablated.len().min(20) {
            for c in 0..d {
                if FeatureFamily::Static.contains(&names[c]) {
                    assert_eq!(ablated.features[i * d + c], 0.0);
                } else {
                    assert_eq!(ablated.features[i * d + c], splits.fit.features[i * d + c]);
                }
            }
        }
    }

    #[test]
    fn splits_partition_by_time() {
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let cfg = ExperimentConfig {
            fit_until: SimTime::ZERO + SimDuration::days(50),
            validate_until: SimTime::ZERO + SimDuration::days(80),
            ..Default::default()
        };
        let splits = build_splits(&fleet, Platform::IntelPurley, &cfg);
        assert!(splits.fit.times.iter().all(|&t| t < cfg.fit_until));
        assert!(splits
            .validation
            .times
            .iter()
            .all(|&t| t >= cfg.fit_until && t < cfg.validate_until));
        assert!(splits.test.times.iter().all(|&t| t >= cfg.validate_until));
    }

    #[test]
    fn assembly_worker_count_does_not_change_splits() {
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let base = ExperimentConfig {
            fit_until: SimTime::ZERO + SimDuration::days(50),
            validate_until: SimTime::ZERO + SimDuration::days(80),
            ..Default::default()
        };
        let one = build_splits(
            &fleet,
            Platform::IntelPurley,
            &ExperimentConfig {
                assembly_workers: 1,
                ..base
            },
        );
        let many = build_splits(
            &fleet,
            Platform::IntelPurley,
            &ExperimentConfig {
                assembly_workers: 3,
                ..base
            },
        );
        assert_eq!(one.fit.features, many.fit.features);
        assert_eq!(one.validation.features, many.validation.features);
        assert_eq!(one.test.features, many.test.features);
        assert_eq!(one.test.labels, many.test.labels);
    }

    #[test]
    fn baseline_evaluates_on_smoke_fleet() {
        let fleet = simulate_fleet(&FleetConfig::smoke(7));
        let cfg = ExperimentConfig {
            fit_until: SimTime::ZERO + SimDuration::days(50),
            validate_until: SimTime::ZERO + SimDuration::days(80),
            ..Default::default()
        };
        let splits = build_splits(&fleet, Platform::IntelPurley, &cfg);
        let res = evaluate_algorithm(
            Algorithm::RiskyCePattern,
            &splits,
            Platform::IntelPurley,
            &cfg,
        );
        assert!(res.reported_in_paper);
        assert!(res.evaluation.precision >= 0.0 && res.evaluation.precision <= 1.0);
    }

    #[test]
    fn risky_ce_only_reported_on_purley() {
        let fleet = simulate_fleet(&FleetConfig::smoke(7));
        let cfg = ExperimentConfig {
            fit_until: SimTime::ZERO + SimDuration::days(50),
            validate_until: SimTime::ZERO + SimDuration::days(80),
            ..Default::default()
        };
        let splits = build_splits(&fleet, Platform::K920, &cfg);
        let res =
            evaluate_algorithm(Algorithm::RiskyCePattern, &splits, Platform::K920, &cfg);
        assert!(!res.reported_in_paper);
    }
}
