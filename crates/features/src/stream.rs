//! Streaming feature extraction: one forward pass per DIMM instead of a
//! rescan per evaluation time.
//!
//! [`extract_features`](crate::extract::extract_features) re-reads every
//! overlapping 15m/1h/6h/1d/observation window from scratch at each
//! evaluation time, making dataset assembly O(samples x window events).
//! [`FeatureStream`] instead advances two-pointer [`WindowCursor`]s through
//! the DIMM's time-sorted events exactly once, maintaining rolling state per
//! window — CE/storm prefix counts, an incremental spatial-dispersion
//! multiset, an incremental fault-mode classifier, and incremental
//! error-bit accumulators with per-device union masks — so each successive
//! evaluation time costs O(events entering or leaving windows).
//!
//! # Invariants
//!
//! * **Oracle equivalence.** For any evaluation time, [`FeatureStream::
//!   features_at`] returns a vector bit-identical to the batch extractor:
//!   both paths reduce to the same integer aggregates and share
//!   [`assemble_features`](crate::extract::assemble_features) for all f32
//!   arithmetic. `tests/prop_features.rs` asserts this on random histories.
//! * **Monotonic queries are O(events) total.** Evaluation times should be
//!   non-decreasing; a query earlier than its predecessor transparently
//!   rewinds (rebuilds rolling state from the window start), which is
//!   correct but costs a fresh pass.
//! * **Determinism.** The stream holds no RNG and no ambient state; output
//!   depends only on `(events, spec, cfg, thresholds, t)`. This is what
//!   lets [`build_samples`](crate::dataset::build_samples) fan DIMMs out
//!   across worker threads and still produce a bit-identical `SampleSet`.

use crate::errorbits::{CeBitProfile, RollingErrorBitStats, RollingMax};
use crate::extract::{assemble_features, FeatureInputs};
use crate::fault_analysis::{FaultThresholds, RollingFaultClassifier};
use crate::history::{DimmHistory, WindowCursor};
use crate::labeling::ProblemConfig;
use mfp_dram::address::CellAddr;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Incremental spatial-dispersion state over the observation window:
/// multiset counts per bank / row / column / cell with eviction, plus a
/// rolling maximum of per-cell repeat counts.
#[derive(Debug, Clone, Default)]
struct SpatialWindow {
    banks: HashMap<(u8, u8), u32>,
    rows: HashMap<(u8, u8, u32), u32>,
    cols: HashMap<(u8, u8, u16), u32>,
    cells: HashMap<(u8, u8, u32, u16), u32>,
    repeat: RollingMax,
}

impl SpatialWindow {
    fn insert(&mut self, a: CellAddr) {
        *self.banks.entry((a.rank, a.bank)).or_insert(0) += 1;
        *self.rows.entry((a.rank, a.bank, a.row)).or_insert(0) += 1;
        *self.cols.entry((a.rank, a.bank, a.col)).or_insert(0) += 1;
        let c = self.cells.entry((a.rank, a.bank, a.row, a.col)).or_insert(0);
        if *c > 0 {
            self.repeat.remove(*c);
        }
        *c += 1;
        self.repeat.insert(*c);
    }

    fn remove(&mut self, a: CellAddr) {
        decrement(&mut self.banks, (a.rank, a.bank));
        decrement(&mut self.rows, (a.rank, a.bank, a.row));
        decrement(&mut self.cols, (a.rank, a.bank, a.col));
        let key = (a.rank, a.bank, a.row, a.col);
        let c = self.cells.get_mut(&key).expect("cell count present");
        self.repeat.remove(*c);
        *c -= 1;
        if *c == 0 {
            self.cells.remove(&key);
        } else {
            self.repeat.insert(*c);
        }
    }
}

/// Decrements a multiset count, dropping the key at zero.
fn decrement<K: std::hash::Hash + Eq>(map: &mut HashMap<K, u32>, key: K) {
    let c = map.get_mut(&key).expect("multiset count present");
    *c -= 1;
    if *c == 0 {
        map.remove(&key);
    }
}

/// Reusable allocation pool for [`FeatureStream`] construction.
///
/// Building a stream allocates three per-DIMM vectors (CE/storm prefix
/// counts and per-event bit profiles). Dataset assembly constructs one
/// stream per DIMM, so a worker that processes thousands of DIMMs pays
/// thousands of allocate/free cycles for buffers of similar size. An
/// arena lets the caller recycle those buffers across DIMMs:
/// [`FeatureStream::with_arena`] steals the arena's vectors (cleared, with
/// capacity retained) and [`FeatureStream::recycle`] hands them back.
///
/// Reuse is a pure allocation optimisation: the vectors are cleared and
/// rebuilt from scratch per DIMM, so the features are bit-identical to
/// streams built with [`FeatureStream::new`] (asserted in the unit tests).
#[derive(Debug, Default)]
pub struct StreamArena {
    ce_prefix: Vec<u32>,
    storm_prefix: Vec<u32>,
    profiles: Vec<Option<CeBitProfile>>,
}

/// A streaming feature extractor for one DIMM.
///
/// Construct once per DIMM, then call [`Self::features_at`] at
/// non-decreasing evaluation times. See the module docs for the invariants.
///
/// # Examples
///
/// ```
/// use mfp_features::prelude::*;
/// use mfp_dram::prelude::*;
///
/// let events = vec![MemEvent::Ce(CeEvent {
///     time: SimTime::from_secs(100),
///     dimm: DimmId::new(0, 0),
///     addr: CellAddr::new(0, 0, 1, 1),
///     transfer: ErrorTransfer::from_bits([(0, 0)]),
/// })];
/// let refs: Vec<&MemEvent> = events.iter().collect();
/// let history = DimmHistory::new(&refs);
/// let spec = DimmSpec::default();
/// let cfg = ProblemConfig::default();
/// let th = FaultThresholds::default();
/// let mut stream = FeatureStream::new(history.clone(), &spec, &cfg, &th);
/// let t = SimTime::from_secs(200);
/// assert_eq!(
///     stream.features_at(t),
///     extract_features(&history, &spec, t, &cfg, &th),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FeatureStream<'a> {
    history: DimmHistory<'a>,
    spec: &'a DimmSpec,
    cfg: &'a ProblemConfig,
    thresholds: &'a FaultThresholds,

    // Precomputed once per DIMM, index-aligned with `history.events()`.
    ce_prefix: Vec<u32>,
    storm_prefix: Vec<u32>,
    profiles: Vec<Option<CeBitProfile>>,
    first_ce: Option<SimTime>,

    // Rolling window state, advanced monotonically by `features_at`.
    cur_15m: WindowCursor,
    cur_1h: WindowCursor,
    cur_6h: WindowCursor,
    cur_1d: WindowCursor,
    cur_obs: WindowCursor,
    cur_fault: WindowCursor,
    cur_total: WindowCursor,
    last_ce_idx: Option<usize>,
    spatial: SpatialWindow,
    eb_obs: RollingErrorBitStats,
    eb_1d: RollingErrorBitStats,
    faults: RollingFaultClassifier,
    last_t: Option<SimTime>,
}

impl<'a> FeatureStream<'a> {
    /// Prepares the stream: one O(events) pass precomputing CE/storm prefix
    /// counts and per-event bit profiles.
    pub fn new(
        history: DimmHistory<'a>,
        spec: &'a DimmSpec,
        cfg: &'a ProblemConfig,
        thresholds: &'a FaultThresholds,
    ) -> Self {
        FeatureStream::with_arena(history, spec, cfg, thresholds, &mut StreamArena::default())
    }

    /// [`Self::new`] reusing the allocations held in `arena`.
    ///
    /// The arena's buffers are taken (leaving it empty but ready for the
    /// next recycle), cleared, and rebuilt for this DIMM; capacity from
    /// previous DIMMs is retained. Pair with [`Self::recycle`] to return
    /// them once the stream is done.
    pub fn with_arena(
        history: DimmHistory<'a>,
        spec: &'a DimmSpec,
        cfg: &'a ProblemConfig,
        thresholds: &'a FaultThresholds,
        arena: &mut StreamArena,
    ) -> Self {
        let events = history.events();
        let mut ce_prefix = std::mem::take(&mut arena.ce_prefix);
        let mut storm_prefix = std::mem::take(&mut arena.storm_prefix);
        let mut profiles = std::mem::take(&mut arena.profiles);
        ce_prefix.clear();
        storm_prefix.clear();
        profiles.clear();
        ce_prefix.reserve(events.len() + 1);
        storm_prefix.reserve(events.len() + 1);
        profiles.reserve(events.len());
        ce_prefix.push(0);
        storm_prefix.push(0);
        for e in events {
            let ce = e.as_ce();
            ce_prefix.push(ce_prefix.last().unwrap() + u32::from(ce.is_some()));
            storm_prefix.push(storm_prefix.last().unwrap() + u32::from(e.as_storm().is_some()));
            profiles.push(ce.map(|c| CeBitProfile::of(&c.transfer, spec.width)));
        }
        let first_ce = history.first_ce();
        FeatureStream {
            history,
            spec,
            cfg,
            thresholds,
            ce_prefix,
            storm_prefix,
            profiles,
            first_ce,
            cur_15m: WindowCursor::new(),
            cur_1h: WindowCursor::new(),
            cur_6h: WindowCursor::new(),
            cur_1d: WindowCursor::new(),
            cur_obs: WindowCursor::new(),
            cur_fault: WindowCursor::new(),
            cur_total: WindowCursor::new(),
            last_ce_idx: None,
            spatial: SpatialWindow::default(),
            eb_obs: RollingErrorBitStats::new(spec.width),
            eb_1d: RollingErrorBitStats::new(spec.width),
            faults: RollingFaultClassifier::new(*thresholds),
            last_t: None,
        }
    }

    /// The wrapped history.
    pub fn history(&self) -> &DimmHistory<'a> {
        &self.history
    }

    /// Consumes the stream, returning its per-DIMM buffers to `arena` so
    /// the next [`Self::with_arena`] call reuses their capacity.
    pub fn recycle(self, arena: &mut StreamArena) {
        arena.ce_prefix = self.ce_prefix;
        arena.storm_prefix = self.storm_prefix;
        arena.profiles = self.profiles;
    }

    /// Extracts the feature vector at evaluation time `t`, bit-identical to
    /// the batch [`extract_features`](crate::extract::extract_features).
    ///
    /// Amortized O(events entering/leaving windows) when `t` is
    /// non-decreasing across calls; an out-of-order `t` rewinds the rolling
    /// state and replays, which is correct but not incremental.
    pub fn features_at(&mut self, t: SimTime) -> Vec<f32> {
        if self.last_t.is_some_and(|prev| t < prev) {
            // Rare (monotone callers never rewind), so resolving the
            // telemetry handle here keeps the hot path untouched.
            mfp_obs::counter("features_stream_rewinds", &[]).incr();
            self.rewind();
        }
        self.last_t = Some(t);
        let events = self.history.events();

        // Count-only windows: prefix sums over the cursor range.
        self.cur_15m
            .advance(events, t.saturating_sub(SimDuration::minutes(15)), t);
        self.cur_1h
            .advance(events, t.saturating_sub(SimDuration::hours(1)), t);
        self.cur_6h
            .advance(events, t.saturating_sub(SimDuration::hours(6)), t);

        // Whole-history cursor: CE total and last-CE recency.
        let (entered, _) = self.cur_total.advance(events, SimTime::ZERO, t);
        for i in entered {
            if events[i].as_ce().is_some() {
                self.last_ce_idx = Some(i);
            }
        }

        // One-day window: CE/storm counts plus rolling error-bit state.
        let (entered, left) = self
            .cur_1d
            .advance(events, t.saturating_sub(SimDuration::days(1)), t);
        for i in entered {
            if let Some(p) = self.profiles[i].as_ref() {
                self.eb_1d.insert(p);
            }
        }
        for i in left {
            if let Some(p) = self.profiles[i].as_ref() {
                self.eb_1d.remove(p);
            }
        }

        // Observation window: spatial dispersion and error-bit state.
        let (entered, left) =
            self.cur_obs
                .advance(events, t.saturating_sub(self.cfg.observation), t);
        for i in entered {
            if let Some(ce) = events[i].as_ce() {
                self.spatial.insert(ce.addr);
                self.eb_obs.insert(self.profiles[i].as_ref().expect("CE profile"));
            }
        }
        for i in left {
            if let Some(ce) = events[i].as_ce() {
                self.spatial.remove(ce.addr);
                self.eb_obs.remove(self.profiles[i].as_ref().expect("CE profile"));
            }
        }

        // 30-day fault-mode lookback.
        let (entered, left) =
            self.cur_fault
                .advance(events, t.saturating_sub(SimDuration::days(30)), t);
        for i in entered {
            if let Some(ce) = events[i].as_ce() {
                let mask = self.profiles[i].as_ref().expect("CE profile").device_mask;
                self.faults.insert(ce.addr, mask);
            }
        }
        for i in left {
            if let Some(ce) = events[i].as_ce() {
                let mask = self.profiles[i].as_ref().expect("CE profile").device_mask;
                self.faults.remove(ce.addr, mask);
            }
        }

        let inputs = FeatureInputs {
            ce_15m: self.ces_in(&self.cur_15m),
            ce_1h: self.ces_in(&self.cur_1h),
            ce_6h: self.ces_in(&self.cur_6h),
            ce_1d: self.ces_in(&self.cur_1d),
            ce_obs: self.ces_in(&self.cur_obs),
            storms_1d: self.storms_in(&self.cur_1d),
            storms_obs: self.storms_in(&self.cur_obs),
            ce_total: self.ces_in(&self.cur_total),
            first_ce: self.first_ce,
            last_ce: self.last_ce_idx.map(|i| events[i].time()),
            banks: self.spatial.banks.len() as u32,
            rows: self.spatial.rows.len() as u32,
            cols: self.spatial.cols.len() as u32,
            cells: self.spatial.cells.len() as u32,
            max_cell_repeat: self.spatial.repeat.max(),
            faults: self.faults.classify(),
            eb: self.eb_obs.stats(),
            eb1: self.eb_1d.stats(),
        };
        assemble_features(&inputs, self.spec, t, self.cfg)
    }

    /// CEs inside a cursor's current range, via the prefix counts.
    fn ces_in(&self, cur: &WindowCursor) -> u32 {
        let r = cur.range();
        self.ce_prefix[r.end] - self.ce_prefix[r.start]
    }

    /// Storm events inside a cursor's current range.
    fn storms_in(&self, cur: &WindowCursor) -> u32 {
        let r = cur.range();
        self.storm_prefix[r.end] - self.storm_prefix[r.start]
    }

    /// Drops all rolling state so an out-of-order query can replay from the
    /// start of the history. Precomputed prefixes and profiles are kept.
    fn rewind(&mut self) {
        self.cur_15m = WindowCursor::new();
        self.cur_1h = WindowCursor::new();
        self.cur_6h = WindowCursor::new();
        self.cur_1d = WindowCursor::new();
        self.cur_obs = WindowCursor::new();
        self.cur_fault = WindowCursor::new();
        self.cur_total = WindowCursor::new();
        self.last_ce_idx = None;
        self.spatial = SpatialWindow::default();
        self.eb_obs = RollingErrorBitStats::new(self.spec.width);
        self.eb_1d = RollingErrorBitStats::new(self.spec.width);
        self.faults = RollingFaultClassifier::new(*self.thresholds);
        self.last_t = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_features;
    use mfp_dram::address::DimmId;
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeEvent, CeStormEvent, MemEvent, UeEvent};
    use mfp_dram::geometry::{DataWidth, Platform};
    use mfp_sim::config::FleetConfig;
    use mfp_sim::fleet::simulate_fleet;

    fn ce(t: u64, bank: u8, row: u32, col: u16, bits: &[(u8, u8)]) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, bank, row, col),
            transfer: ErrorTransfer::from_bits(bits.iter().copied()),
        })
    }

    fn storm(t: u64) -> MemEvent {
        MemEvent::Storm(CeStormEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            count: 12,
        })
    }

    fn ue(t: u64) -> MemEvent {
        MemEvent::Ue(UeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0), (0, 1)]),
        })
    }

    fn mixed_history() -> Vec<MemEvent> {
        let day = 86_400u64;
        vec![
            ce(100, 0, 5, 5, &[(0, 0)]),
            ce(day, 0, 5, 5, &[(1, 20), (5, 21)]),
            storm(day + 50),
            ce(day + 100, 2, 1, 1, &[(0, 63), (2, 71)]),
            ce(2 * day, 2, 2, 2, &[(2, 8), (2, 9), (2, 10), (2, 11), (6, 8)]),
            ce(2 * day + 10, 2, 3, 3, &[(3, 40), (3, 41), (7, 40)]),
            storm(4 * day),
            ce(6 * day, 0, 5, 7, &[(0, 0), (1, 1), (2, 2)]),
            ue(40 * day),
            ce(40 * day + 100, 1, 9, 9, &[(4, 30)]),
        ]
    }

    fn assert_stream_matches_batch(events: &[MemEvent], spec: &DimmSpec, times: &[u64]) {
        let refs: Vec<&MemEvent> = events.iter().collect();
        let history = DimmHistory::new(&refs);
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let mut stream = FeatureStream::new(history.clone(), spec, &cfg, &th);
        for &secs in times {
            let t = SimTime::from_secs(secs);
            assert_eq!(
                stream.features_at(t),
                extract_features(&history, spec, t, &cfg, &th),
                "diverged at t = {secs}s"
            );
        }
    }

    #[test]
    fn matches_batch_on_mixed_history() {
        let day = 86_400u64;
        let times: Vec<u64> = (0..50).map(|k| 200 + k * day).collect();
        assert_stream_matches_batch(&mixed_history(), &DimmSpec::default(), &times);
    }

    #[test]
    fn matches_batch_at_fine_granularity() {
        // Sub-window steps: events enter/leave the 15m/1h windows one by one.
        let times: Vec<u64> = (0..300).map(|k| k * 600).collect();
        assert_stream_matches_batch(&mixed_history(), &DimmSpec::default(), &times);
    }

    #[test]
    fn matches_batch_for_x8_devices() {
        let spec = DimmSpec {
            width: DataWidth::X8,
            ..Default::default()
        };
        let day = 86_400u64;
        let times: Vec<u64> = (0..50).map(|k| 200 + k * day).collect();
        assert_stream_matches_batch(&mixed_history(), &spec, &times);
    }

    #[test]
    fn out_of_order_query_rewinds_correctly() {
        let events = mixed_history();
        let refs: Vec<&MemEvent> = events.iter().collect();
        let history = DimmHistory::new(&refs);
        let spec = DimmSpec::default();
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let mut stream = FeatureStream::new(history.clone(), &spec, &cfg, &th);
        let day = 86_400u64;
        for secs in [10 * day, 45 * day, 3 * day, 7 * day] {
            let t = SimTime::from_secs(secs);
            assert_eq!(
                stream.features_at(t),
                extract_features(&history, &spec, t, &cfg, &th),
                "diverged at t = {secs}s"
            );
        }
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_streams() {
        let fleet = simulate_fleet(&FleetConfig::smoke(11));
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let by_dimm = fleet.log.by_dimm();
        let mut arena = StreamArena::default();
        let mut dimms_checked = 0;
        for truth in fleet.platform_dimms(Platform::IntelPurley) {
            let Some(events) = by_dimm.get(&truth.id) else {
                continue;
            };
            let history = DimmHistory::new(events);
            let times = cfg.sample_times(&history, fleet.config.horizon);
            if times.is_empty() {
                continue;
            }
            let mut fresh = FeatureStream::new(history.clone(), &truth.spec, &cfg, &th);
            let mut reused =
                FeatureStream::with_arena(history, &truth.spec, &cfg, &th, &mut arena);
            for t in times {
                assert_eq!(
                    reused.features_at(t),
                    fresh.features_at(t),
                    "arena stream diverged on {:?} at {t}",
                    truth.id
                );
            }
            reused.recycle(&mut arena);
            dimms_checked += 1;
        }
        assert!(dimms_checked > 1, "must exercise arena reuse across DIMMs");
    }

    #[test]
    fn matches_batch_across_a_simulated_fleet() {
        let fleet = simulate_fleet(&FleetConfig::smoke(11));
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let by_dimm = fleet.log.by_dimm();
        let mut dimms_checked = 0;
        for truth in fleet.platform_dimms(Platform::IntelPurley) {
            let Some(events) = by_dimm.get(&truth.id) else {
                continue;
            };
            let history = DimmHistory::new(events);
            let times = cfg.sample_times(&history, fleet.config.horizon);
            if times.is_empty() {
                continue;
            }
            let mut stream = FeatureStream::new(history.clone(), &truth.spec, &cfg, &th);
            for t in times {
                assert_eq!(
                    stream.features_at(t),
                    extract_features(&history, &truth.spec, t, &cfg, &th),
                    "diverged on {:?} at {t}",
                    truth.id
                );
            }
            dimms_checked += 1;
        }
        assert!(dimms_checked > 0, "smoke fleet must exercise some DIMMs");
    }
}
