//! Sample-set assembly: from a fleet's BMC log to labelled feature matrices.

use crate::extract::{extract_features, feature_names};
use crate::fault_analysis::FaultThresholds;
use crate::history::DimmHistory;
use crate::labeling::ProblemConfig;
use mfp_dram::address::DimmId;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimTime;
use mfp_sim::fleet::FleetResult;
use serde::{Deserialize, Serialize};

/// A labelled tabular dataset of prediction samples.
///
/// Features are stored row-major (`n x d`, `d =`
/// [`FEATURE_DIM`](crate::extract::FEATURE_DIM)); each row keeps its DIMM
/// and evaluation time so results can be aggregated to DIMM level.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    /// Feature names (length `d`).
    pub schema: Vec<String>,
    /// Row-major feature matrix (`n * d` values).
    pub features: Vec<f32>,
    /// Per-sample labels (true = UE within the prediction window).
    pub labels: Vec<bool>,
    /// Per-sample DIMM identity.
    pub dimms: Vec<DimmId>,
    /// Per-sample evaluation time.
    pub times: Vec<SimTime>,
}

impl SampleSet {
    /// Creates an empty set with the standard schema.
    pub fn new() -> Self {
        SampleSet {
            schema: feature_names(),
            ..Default::default()
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.schema.len()
    }

    /// The `i`-th feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim()..(i + 1) * self.dim()]
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the schema length.
    pub fn push(&mut self, row: Vec<f32>, label: bool, dimm: DimmId, time: SimTime) {
        assert_eq!(row.len(), self.dim(), "feature row has wrong length");
        self.features.extend(row);
        self.labels.push(label);
        self.dimms.push(dimm);
        self.times.push(time);
    }

    /// Number of positive samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Splits into (train, test) by evaluation time: samples strictly
    /// before `t` train, the rest test.
    pub fn split_by_time(&self, t: SimTime) -> (SampleSet, SampleSet) {
        let mut train = SampleSet::new();
        let mut test = SampleSet::new();
        for i in 0..self.len() {
            let target = if self.times[i] < t { &mut train } else { &mut test };
            target.push(
                self.row(i).to_vec(),
                self.labels[i],
                self.dimms[i],
                self.times[i],
            );
        }
        (train, test)
    }

    /// Retains every positive sample but only each `keep_every`-th negative
    /// (class rebalancing for training).
    pub fn downsample_negatives(&self, keep_every: usize) -> SampleSet {
        assert!(keep_every >= 1);
        let mut out = SampleSet::new();
        let mut neg_seen = 0usize;
        for i in 0..self.len() {
            if self.labels[i] {
                out.push(self.row(i).to_vec(), true, self.dimms[i], self.times[i]);
            } else {
                if neg_seen.is_multiple_of(keep_every) {
                    out.push(self.row(i).to_vec(), false, self.dimms[i], self.times[i]);
                }
                neg_seen += 1;
            }
        }
        out
    }
}

/// Builds the labelled sample set for one platform from a simulated fleet.
///
/// Only DIMMs with CE history produce samples; sudden-UE DIMMs contribute
/// none (the paper omits them for lack of predictive data).
pub fn build_samples(
    fleet: &FleetResult,
    platform: Platform,
    cfg: &ProblemConfig,
    thresholds: &FaultThresholds,
) -> SampleSet {
    let by_dimm = fleet.log.by_dimm();
    let mut set = SampleSet::new();
    for truth in fleet.platform_dimms(platform) {
        let Some(events) = by_dimm.get(&truth.id) else {
            continue;
        };
        let history = DimmHistory::new(events);
        for t in cfg.sample_times(&history, fleet.config.horizon) {
            let Some(label) = cfg.label_at(t, history.first_ue()) else {
                continue;
            };
            let row = extract_features(&history, &truth.spec, t, cfg, thresholds);
            set.push(row, label, truth.id, t);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::FEATURE_DIM;
    use mfp_sim::config::FleetConfig;
    use mfp_sim::fleet::simulate_fleet;

    fn smoke_samples() -> (FleetResult, SampleSet) {
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let set = build_samples(
            &fleet,
            Platform::IntelPurley,
            &ProblemConfig::default(),
            &FaultThresholds::default(),
        );
        (fleet, set)
    }

    #[test]
    fn build_produces_consistent_matrix() {
        let (_, set) = smoke_samples();
        assert!(!set.is_empty());
        assert_eq!(set.dim(), FEATURE_DIM);
        assert_eq!(set.features.len(), set.len() * set.dim());
        assert_eq!(set.dimms.len(), set.len());
        assert_eq!(set.times.len(), set.len());
    }

    #[test]
    fn has_both_classes() {
        let (_, set) = smoke_samples();
        let pos = set.positives();
        assert!(pos > 0, "need positive samples");
        assert!(pos < set.len(), "need negative samples");
    }

    #[test]
    fn split_by_time_partitions() {
        let (fleet, set) = smoke_samples();
        let mid = SimTime::ZERO
            + mfp_dram::time::SimDuration::secs(fleet.config.horizon.as_secs() / 2);
        let (train, test) = set.split_by_time(mid);
        assert_eq!(train.len() + test.len(), set.len());
        assert!(train.times.iter().all(|&t| t < mid));
        assert!(test.times.iter().all(|&t| t >= mid));
    }

    #[test]
    fn downsampling_keeps_positives() {
        let (_, set) = smoke_samples();
        let down = set.downsample_negatives(10);
        assert_eq!(down.positives(), set.positives());
        assert!(down.len() < set.len());
    }

    #[test]
    fn rows_are_views_into_matrix() {
        let (_, set) = smoke_samples();
        let r0 = set.row(0).to_vec();
        assert_eq!(r0.len(), set.dim());
        assert_eq!(&set.features[..set.dim()], r0.as_slice());
    }
}
