//! Sample-set assembly: from a fleet's BMC log to labelled feature matrices.
//!
//! Assembly streams each DIMM's history once through a
//! [`FeatureStream`](crate::stream::FeatureStream) and fans DIMMs out across
//! worker threads; the merged [`SampleSet`] is bit-identical regardless of
//! worker count because DIMMs are chunked and merged in fleet generation
//! order and each per-DIMM extraction is deterministic.

use crate::fault_analysis::FaultThresholds;
use crate::history::DimmHistory;
use crate::labeling::ProblemConfig;
use crate::stream::{FeatureStream, StreamArena};
use mfp_dram::address::DimmId;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_sim::fleet::FleetResult;
use serde::{Deserialize, Serialize};

/// A labelled tabular dataset of prediction samples.
///
/// Features are stored row-major (`n x d`, `d =`
/// [`FEATURE_DIM`](crate::extract::FEATURE_DIM)); each row keeps its DIMM
/// and evaluation time so results can be aggregated to DIMM level.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    /// Feature names (length `d`).
    pub schema: Vec<String>,
    /// Row-major feature matrix (`n * d` values).
    pub features: Vec<f32>,
    /// Per-sample labels (true = UE within the prediction window).
    pub labels: Vec<bool>,
    /// Per-sample DIMM identity.
    pub dimms: Vec<DimmId>,
    /// Per-sample evaluation time.
    pub times: Vec<SimTime>,
}

impl SampleSet {
    /// Creates an empty set with the standard schema.
    pub fn new() -> Self {
        SampleSet {
            schema: crate::extract::feature_names(),
            ..Default::default()
        }
    }

    /// Creates an empty set with room for `samples` rows, avoiding
    /// reallocation during assembly.
    pub fn with_capacity(samples: usize) -> Self {
        let mut set = SampleSet::new();
        set.reserve(samples);
        set
    }

    /// Reserves room for at least `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.features.reserve(additional * self.dim());
        self.labels.reserve(additional);
        self.dimms.reserve(additional);
        self.times.reserve(additional);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.schema.len()
    }

    /// The `i`-th feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim()..(i + 1) * self.dim()]
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the schema length.
    pub fn push(&mut self, row: Vec<f32>, label: bool, dimm: DimmId, time: SimTime) {
        assert_eq!(row.len(), self.dim(), "feature row has wrong length");
        self.features.extend(row);
        self.labels.push(label);
        self.dimms.push(dimm);
        self.times.push(time);
    }

    /// Copies sample `i` of `src` onto the end of this set.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ or `i` is out of range.
    pub fn push_from(&mut self, src: &SampleSet, i: usize) {
        assert_eq!(self.schema, src.schema, "schema mismatch");
        self.features.extend_from_slice(src.row(i));
        self.labels.push(src.labels[i]);
        self.dimms.push(src.dimms[i]);
        self.times.push(src.times[i]);
    }

    /// Moves all samples of `other` onto the end of this set.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn append(&mut self, other: &mut SampleSet) {
        assert_eq!(self.schema, other.schema, "schema mismatch");
        self.features.append(&mut other.features);
        self.labels.append(&mut other.labels);
        self.dimms.append(&mut other.dimms);
        self.times.append(&mut other.times);
    }

    /// Number of positive samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Splits into (train, test) by evaluation time: samples strictly
    /// before `t` train, the rest test.
    pub fn split_by_time(&self, t: SimTime) -> (SampleSet, SampleSet) {
        let n_train = self.times.iter().filter(|&&s| s < t).count();
        let mut train = SampleSet::with_capacity(n_train);
        let mut test = SampleSet::with_capacity(self.len() - n_train);
        for i in 0..self.len() {
            let target = if self.times[i] < t { &mut train } else { &mut test };
            target.push_from(self, i);
        }
        (train, test)
    }

    /// Retains every positive sample but only each `keep_every`-th negative
    /// (class rebalancing for training).
    pub fn downsample_negatives(&self, keep_every: usize) -> SampleSet {
        assert!(keep_every >= 1);
        let negatives = self.len() - self.positives();
        let kept = self.positives() + negatives.div_ceil(keep_every);
        let mut out = SampleSet::with_capacity(kept);
        let mut neg_seen = 0usize;
        for i in 0..self.len() {
            if self.labels[i] || neg_seen.is_multiple_of(keep_every) {
                out.push_from(self, i);
            }
            if !self.labels[i] {
                neg_seen += 1;
            }
        }
        out
    }
}

/// Streams one DIMM's history into samples appended onto `set`.
#[allow(clippy::too_many_arguments)]
fn stream_dimm_samples(
    set: &mut SampleSet,
    id: DimmId,
    spec: &DimmSpec,
    events: &[&MemEvent],
    horizon: SimDuration,
    cfg: &ProblemConfig,
    thresholds: &FaultThresholds,
    arena: &mut StreamArena,
) {
    let history = DimmHistory::new(events);
    let times = cfg.sample_times(&history, horizon);
    if times.is_empty() {
        return;
    }
    let first_ue = history.first_ue();
    let mut stream = FeatureStream::with_arena(history, spec, cfg, thresholds, arena);
    set.reserve(times.len());
    for t in times {
        let Some(label) = cfg.label_at(t, first_ue) else {
            continue;
        };
        let row = stream.features_at(t);
        set.push(row, label, id, t);
    }
    stream.recycle(arena);
}

/// Builds the labelled sample set for one platform from a simulated fleet.
///
/// Only DIMMs with CE history produce samples; sudden-UE DIMMs contribute
/// none (the paper omits them for lack of predictive data). Uses all
/// available cores; see [`build_samples_with_workers`] for the guarantees.
pub fn build_samples(
    fleet: &FleetResult,
    platform: Platform,
    cfg: &ProblemConfig,
    thresholds: &FaultThresholds,
) -> SampleSet {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    build_samples_with_workers(fleet, platform, cfg, thresholds, workers)
}

/// [`build_samples`] with an explicit worker count.
///
/// DIMMs are chunked in fleet generation order across `workers` scoped
/// threads, each streaming its chunk with a
/// [`FeatureStream`](crate::stream::FeatureStream); partial sets are merged
/// back in chunk order. The result is bit-identical for every worker count
/// (and to the batch extractor — see `tests/prop_features.rs`).
pub fn build_samples_with_workers(
    fleet: &FleetResult,
    platform: Platform,
    cfg: &ProblemConfig,
    thresholds: &FaultThresholds,
    workers: usize,
) -> SampleSet {
    let by_dimm = fleet.log.by_dimm();
    let dimms: Vec<_> = fleet
        .platform_dimms(platform)
        .filter_map(|truth| by_dimm.get(&truth.id).map(|events| (truth, events)))
        .collect();

    let workers = workers.max(1);
    let chunk = dimms.len().div_ceil(workers).max(1);
    let horizon = fleet.config.horizon;
    let assembly_span = mfp_obs::latency("features_assembly_seconds", &[]).time();
    // Handles resolved once and cloned into the workers: recording is a
    // relaxed atomic op, so the threads never contend on the registry.
    let worker_seconds = mfp_obs::latency("features_worker_seconds", &[]);
    let partials = crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for slice in dimms.chunks(chunk) {
            let worker_seconds = worker_seconds.clone();
            handles.push(s.spawn(move |_| {
                let _span = worker_seconds.time();
                let mut part = SampleSet::new();
                // One arena per worker: per-DIMM prefix/profile buffers are
                // recycled across the chunk instead of reallocated.
                let mut arena = StreamArena::default();
                for (truth, events) in slice {
                    stream_dimm_samples(
                        &mut part,
                        truth.id,
                        &truth.spec,
                        events.as_slice(),
                        horizon,
                        cfg,
                        thresholds,
                        &mut arena,
                    );
                }
                part
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sample worker"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope");

    let total = partials.iter().map(SampleSet::len).sum();
    let mut set = SampleSet::with_capacity(total);
    for mut part in partials {
        set.append(&mut part);
    }
    let p = platform.to_string();
    mfp_obs::counter("features_samples_assembled", &[("platform", p.as_str())])
        .add(set.len() as u64);
    assembly_span.stop();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_features, FEATURE_DIM};
    use mfp_sim::config::FleetConfig;
    use mfp_sim::fleet::simulate_fleet;

    fn smoke_samples() -> (FleetResult, SampleSet) {
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let set = build_samples(
            &fleet,
            Platform::IntelPurley,
            &ProblemConfig::default(),
            &FaultThresholds::default(),
        );
        (fleet, set)
    }

    /// The pre-streaming assembly loop, kept as an oracle: batch-extracts
    /// every sample independently.
    fn build_samples_batch(
        fleet: &FleetResult,
        platform: Platform,
        cfg: &ProblemConfig,
        thresholds: &FaultThresholds,
    ) -> SampleSet {
        let by_dimm = fleet.log.by_dimm();
        let mut set = SampleSet::new();
        for truth in fleet.platform_dimms(platform) {
            let Some(events) = by_dimm.get(&truth.id) else {
                continue;
            };
            let history = DimmHistory::new(events);
            for t in cfg.sample_times(&history, fleet.config.horizon) {
                let Some(label) = cfg.label_at(t, history.first_ue()) else {
                    continue;
                };
                let row = extract_features(&history, &truth.spec, t, cfg, thresholds);
                set.push(row, label, truth.id, t);
            }
        }
        set
    }

    fn assert_sets_identical(a: &SampleSet, b: &SampleSet) {
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.dimms, b.dimms);
        assert_eq!(a.times, b.times);
        assert_eq!(a.features, b.features, "feature matrices must be bit-identical");
    }

    #[test]
    fn build_produces_consistent_matrix() {
        let (_, set) = smoke_samples();
        assert!(!set.is_empty());
        assert_eq!(set.dim(), FEATURE_DIM);
        assert_eq!(set.features.len(), set.len() * set.dim());
        assert_eq!(set.dimms.len(), set.len());
        assert_eq!(set.times.len(), set.len());
    }

    #[test]
    fn has_both_classes() {
        let (_, set) = smoke_samples();
        let pos = set.positives();
        assert!(pos > 0, "need positive samples");
        assert!(pos < set.len(), "need negative samples");
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let one = build_samples_with_workers(&fleet, Platform::IntelPurley, &cfg, &th, 1);
        for workers in [2, 4, 7] {
            let many =
                build_samples_with_workers(&fleet, Platform::IntelPurley, &cfg, &th, workers);
            assert_sets_identical(&one, &many);
        }
    }

    #[test]
    fn streaming_assembly_matches_batch_oracle() {
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        for platform in [Platform::IntelPurley, Platform::IntelWhitley, Platform::K920] {
            let streamed = build_samples_with_workers(&fleet, platform, &cfg, &th, 3);
            let batch = build_samples_batch(&fleet, platform, &cfg, &th);
            assert_sets_identical(&streamed, &batch);
        }
    }

    #[test]
    fn telemetry_toggle_does_not_change_output() {
        // The mfp-obs determinism invariant: metrics are write-only for
        // the measured code, so disabling them must not perturb a single
        // bit of the assembled set at any worker count.
        let fleet = simulate_fleet(&FleetConfig::smoke(5));
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        for workers in [1, 2, 4] {
            let on = build_samples_with_workers(&fleet, Platform::IntelPurley, &cfg, &th, workers);
            mfp_obs::set_enabled(false);
            let off = build_samples_with_workers(&fleet, Platform::IntelPurley, &cfg, &th, workers);
            mfp_obs::set_enabled(true);
            assert_sets_identical(&on, &off);
        }
    }

    #[test]
    fn split_by_time_partitions() {
        let (fleet, set) = smoke_samples();
        let mid = SimTime::ZERO
            + mfp_dram::time::SimDuration::secs(fleet.config.horizon.as_secs() / 2);
        let (train, test) = set.split_by_time(mid);
        assert_eq!(train.len() + test.len(), set.len());
        assert!(train.times.iter().all(|&t| t < mid));
        assert!(test.times.iter().all(|&t| t >= mid));
    }

    #[test]
    fn downsampling_keeps_positives() {
        let (_, set) = smoke_samples();
        let down = set.downsample_negatives(10);
        assert_eq!(down.positives(), set.positives());
        assert!(down.len() < set.len());
    }

    #[test]
    fn downsampling_capacity_estimate_is_exact() {
        let (_, set) = smoke_samples();
        for keep_every in [1, 2, 10] {
            let down = set.downsample_negatives(keep_every);
            let negatives = set.len() - set.positives();
            assert_eq!(
                down.len(),
                set.positives() + negatives.div_ceil(keep_every)
            );
        }
    }

    #[test]
    fn append_moves_all_samples() {
        let (_, set) = smoke_samples();
        let mut a = SampleSet::new();
        let mut b = set.clone();
        a.append(&mut b);
        assert!(b.is_empty());
        assert_sets_identical(&a, &set);
    }

    #[test]
    fn rows_are_views_into_matrix() {
        let (_, set) = smoke_samples();
        let r0 = set.row(0).to_vec();
        assert_eq!(r0.len(), set.dim());
        assert_eq!(&set.features[..set.dim()], r0.as_slice());
    }
}
