//! # mfp-features
//!
//! Feature engineering for memory-failure prediction: turns raw BMC logs
//! into the labelled tabular samples the ML layer consumes.
//!
//! * [`history`] — per-DIMM event timelines with windowed queries.
//! * [`fault_analysis`] — threshold-based fault-mode classification from
//!   observed CEs (cell / row / column / bank, single vs multi device), as
//!   in the paper's §V.
//! * [`errorbits`] — DQ/beat count and interval statistics (Fig. 5).
//! * [`labeling`] — the §IV problem formulation: observation window,
//!   lead time, prediction window, sample grid.
//! * [`extract`] — the fixed 48-feature schema.
//! * [`stream`] — incremental sliding-window extraction: one forward pass
//!   per DIMM, bit-identical to [`extract`].
//! * [`dataset`] — assembly of [`dataset::SampleSet`]s from a simulated
//!   fleet, with time-based splits, negative downsampling, and parallel
//!   per-DIMM sample building.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod errorbits;
pub mod extract;
pub mod fault_analysis;
pub mod history;
pub mod labeling;
pub mod stream;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::dataset::{build_samples, build_samples_with_workers, SampleSet};
    pub use crate::errorbits::ErrorBitStats;
    pub use crate::extract::{extract_features, feature_names, FEATURE_DIM};
    pub use crate::fault_analysis::{classify_ces, FaultThresholds, ObservedFaults};
    pub use crate::history::{DimmHistory, WindowCursor};
    pub use crate::labeling::ProblemConfig;
    pub use crate::stream::{FeatureStream, StreamArena};
}
